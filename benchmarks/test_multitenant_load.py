"""Multi-tenant gateway under a thousands-of-clients load (DESIGN.md §12).

The gateway's pitch is that one BlobSeer store can serve many tenants
*as a service* without giving up the paper's throughput-under-heavy-
concurrency headline.  This bench drives four phases over identically
configured stores and proves the two halves of that claim:

1. **overhead** — 1024 client sessions across 8 tenants pushing fresh
   files through the gateway sustain >= 0.8x the aggregate append
   throughput of the same op mix against a bare BSFS (fig5-style
   grouped store: group commit + overlapped publish + parallel I/O);
2. **fairness** — with one *greedy* tenant hammering the store under a
   bytes/s cap, the greedy tenant is actually held to its token-bucket
   rate while the polite cohort's pooled p99 latency stays within 2x
   of its solo run.

Per-tenant counters (ops, bytes, throttle waits, rejections) land in
the benchmark JSON artifact via ``extra_info`` so CI records who was
paced alongside the wall-clock numbers.
"""

import math
import threading
import time

from conftest import emit

from repro.blob import StoreConfig
from repro.bsfs.filesystem import BSFSFileSystem
from repro.gateway import Gateway, TenantPolicy

BLOCK = 4 * 1024
#: Two blocks per client file: every op exercises scatter + publish.
PAYLOAD = 2 * BLOCK
TENANTS = 8
CLIENTS_PER_TENANT = 128
SESSIONS = TENANTS * CLIENTS_PER_TENANT  # 1024 simulated clients
WORKERS = 32
#: The greedy tenant's data-plane cap and bucket depth.
GREEDY_BPS = 256 * 1024
GREEDY_BURST_S = 0.25

#: Same store recipe as the fig5 grouped pipeline, scaled-down vman
#: latency so four phases stay inside a CI-friendly wall clock.
STORE = dict(
    data_providers=8,
    metadata_providers=4,
    block_size=BLOCK,
    io_workers=8,
    vman_latency=0.002,
    group_commit=True,
    publish_window=0.002,
    overlap_publish=True,
)


def _p99(latencies: list[float]) -> float:
    ordered = sorted(latencies)
    return ordered[max(0, math.ceil(0.99 * len(ordered)) - 1)]


def _run_sessions(jobs: list, workers: int = WORKERS) -> float:
    """Run callables over a fixed thread pool; returns elapsed seconds."""
    errors: list[Exception] = []
    cursor = iter(range(len(jobs)))
    lock = threading.Lock()

    def worker():
        while True:
            with lock:
                index = next(cursor, None)
            if index is None:
                return
            try:
                jobs[index]()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(workers)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    assert not errors, errors[:3]
    return elapsed


def _direct_baseline() -> float:
    """Aggregate MB/s of the same op mix against a bare BSFS."""
    fs = BSFSFileSystem(config=StoreConfig(**STORE))
    try:
        payload = b"d" * PAYLOAD

        def one_write(i):
            return lambda: fs.write_file(f"/c{i:04d}", payload)

        elapsed = _run_sessions([one_write(i) for i in range(SESSIONS)])
        return SESSIONS * PAYLOAD / elapsed / 2**20
    finally:
        fs.store.close()


def _gateway_aggregate() -> tuple[float, dict]:
    """Aggregate MB/s of 1024 gateway sessions across 8 uncapped tenants."""
    with Gateway(config=StoreConfig(**STORE)) as gw:
        sessions = []
        for t in range(TENANTS):
            token = gw.register_tenant(f"tenant-{t}")
            sessions += [
                (gw.connect(f"tenant-{t}", token), c)
                for c in range(CLIENTS_PER_TENANT)
            ]
        payload = b"g" * PAYLOAD

        def one_write(client, c):
            return lambda: client.write_file(f"/f{c:04d}", payload)

        elapsed = _run_sessions([one_write(cl, c) for cl, c in sessions])
        stats = gw.tenant_stats()
        assert sum(s["ops"]["append"] for s in stats.values()) == SESSIONS
        return SESSIONS * PAYLOAD / elapsed / 2**20, stats


def _solo_polite() -> float:
    """Pooled p99 append latency of one polite tenant running alone."""
    with Gateway(config=StoreConfig(**STORE)) as gw:
        token = gw.register_tenant("solo")
        clients = [gw.connect("solo", token) for _ in range(CLIENTS_PER_TENANT)]
        payload = b"s" * PAYLOAD
        latencies: list[float] = []
        lock = threading.Lock()

        def one_write(client, c):
            def job():
                start = time.perf_counter()
                client.write_file(f"/f{c:04d}", payload)
                sample = time.perf_counter() - start
                with lock:
                    latencies.append(sample)

            return job

        _run_sessions([one_write(cl, c) for c, cl in enumerate(clients)])
        return _p99(latencies)


def _mixed_with_greedy() -> dict:
    """7 polite tenants + 1 bytes/s-capped greedy tenant, 1024 sessions."""
    with Gateway(config=StoreConfig(**STORE)) as gw:
        polite_sessions = []
        for t in range(TENANTS - 1):
            token = gw.register_tenant(f"polite-{t}")
            polite_sessions += [
                (gw.connect(f"polite-{t}", token), c)
                for c in range(CLIENTS_PER_TENANT)
            ]
        greedy_policy = TenantPolicy(
            bytes_per_sec=GREEDY_BPS, burst_seconds=GREEDY_BURST_S
        )
        greedy_token = gw.register_tenant("greedy", greedy_policy)
        greedy_clients = [
            gw.connect("greedy", greedy_token) for _ in range(CLIENTS_PER_TENANT)
        ]

        payload = b"p" * PAYLOAD
        latencies: list[float] = []
        lock = threading.Lock()
        stop = threading.Event()
        greedy_done = [0]

        def polite_write(client, c):
            def job():
                start = time.perf_counter()
                client.write_file(f"/f{c:04d}", payload)
                sample = time.perf_counter() - start
                with lock:
                    latencies.append(sample)

            return job

        def greedy_worker(shard: int):
            # Each thread round-robins its shard of the greedy tenant's
            # sessions, writing flat out until the polite cohort is done.
            mine = greedy_clients[shard::4]
            count = 0
            while not stop.is_set():
                client = mine[count % len(mine)]
                client.write_file(f"/s{shard}n{count}", payload)
                count += 1
            with lock:
                greedy_done[0] += count

        greedy_threads = [
            threading.Thread(target=greedy_worker, args=(k,)) for k in range(4)
        ]
        start = time.perf_counter()
        for t in greedy_threads:
            t.start()
        _run_sessions([polite_write(cl, c) for cl, c in polite_sessions])
        stop.set()
        for t in greedy_threads:
            t.join()
        elapsed = time.perf_counter() - start

        stats = gw.tenant_stats()
        greedy = stats["greedy"]
        return {
            "elapsed_s": elapsed,
            "polite_p99_s": _p99(latencies),
            "polite_ops": len(latencies),
            "greedy_ops": greedy_done[0],
            "greedy_bytes": greedy["bytes_in"],
            "greedy_bps": greedy["bytes_in"] / elapsed,
            "greedy_wait_s": greedy["throttle_wait_s"],
            "stats": stats,
        }


def test_fig5_multitenant_gateway_load(benchmark):
    def run():
        return {
            "direct_mb_s": _direct_baseline(),
            "gateway": _gateway_aggregate(),
            "solo_p99_s": _solo_polite(),
            "mixed": _mixed_with_greedy(),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    direct = out["direct_mb_s"]
    gateway_mb_s, agg_stats = out["gateway"]
    solo_p99 = out["solo_p99_s"]
    mixed = out["mixed"]

    benchmark.extra_info["tenants"] = TENANTS
    benchmark.extra_info["client_sessions"] = SESSIONS
    benchmark.extra_info["direct_mb_s"] = round(direct, 2)
    benchmark.extra_info["gateway_mb_s"] = round(gateway_mb_s, 2)
    benchmark.extra_info["gateway_vs_direct"] = round(gateway_mb_s / direct, 3)
    benchmark.extra_info["solo_p99_ms"] = round(solo_p99 * 1e3, 2)
    benchmark.extra_info["mixed_polite_p99_ms"] = round(
        mixed["polite_p99_s"] * 1e3, 2
    )
    benchmark.extra_info["greedy_cap_bps"] = GREEDY_BPS
    benchmark.extra_info["greedy_observed_bps"] = round(mixed["greedy_bps"])
    benchmark.extra_info["greedy_throttle_wait_s"] = round(
        mixed["greedy_wait_s"], 3
    )
    benchmark.extra_info["per_tenant"] = {
        tid: {
            "appends": s["ops"]["append"],
            "bytes_in": s["bytes_in"],
            "throttle_wait_s": s["throttle_wait_s"],
            "rejections": s["admission_rejections"],
        }
        for tid, s in mixed["stats"].items()
    }

    emit(
        "fig5-style multi-tenant gateway load "
        f"({TENANTS} tenants x {CLIENTS_PER_TENANT} = {SESSIONS} client "
        f"sessions, {PAYLOAD // 1024} KB per append):\n"
        f"  direct-store aggregate   {direct:8.2f} MB/s\n"
        f"  gateway aggregate        {gateway_mb_s:8.2f} MB/s  "
        f"({gateway_mb_s / direct:.2f}x direct)\n"
        f"  polite p99 solo/mixed    {solo_p99 * 1e3:8.2f} / "
        f"{mixed['polite_p99_s'] * 1e3:.2f} ms  "
        f"({mixed['polite_ops']} polite ops)\n"
        f"  greedy tenant            {mixed['greedy_bps'] / 1024:8.1f} KB/s "
        f"observed vs {GREEDY_BPS / 1024:.0f} KB/s cap "
        f"({mixed['greedy_ops']} ops, waited {mixed['greedy_wait_s']:.2f}s)"
    )

    # Every tenant moved its full share through the uncapped run.
    for tid, s in agg_stats.items():
        assert s["ops"]["append"] == CLIENTS_PER_TENANT, (tid, s)
        assert s["bytes_in"] == CLIENTS_PER_TENANT * PAYLOAD

    # The front door costs <= 20% of the direct-store aggregate rate.
    assert gateway_mb_s >= 0.8 * direct, (
        f"gateway aggregate {gateway_mb_s:.2f} MB/s fell below 0.8x the "
        f"direct-store baseline {direct:.2f} MB/s"
    )

    # Admission control held the greedy tenant to its bucket: observed
    # rate <= cap plus the one-time burst allowance, and it actually
    # spent time parked in the bucket.
    burst_allowance = GREEDY_BPS * GREEDY_BURST_S / mixed["elapsed_s"]
    assert mixed["greedy_bps"] <= 1.25 * (GREEDY_BPS + burst_allowance), (
        f"greedy tenant ran at {mixed['greedy_bps']:.0f} B/s, past its "
        f"{GREEDY_BPS} B/s token-bucket cap"
    )
    assert mixed["greedy_wait_s"] > 0

    # The greedy tenant's backlog stayed its own: the polite cohort's
    # pooled p99 is within 2x of its solo run.
    assert mixed["polite_p99_s"] <= 2 * solo_p99, (
        f"polite p99 degraded {mixed['polite_p99_s'] / solo_p99:.2f}x "
        f"(solo {solo_p99 * 1e3:.2f} ms, mixed "
        f"{mixed['polite_p99_s'] * 1e3:.2f} ms)"
    )
