"""Ablation: replication level (paper §VI-B).

A write fans each block out to ``replication`` providers, so write cost
grows with the level while reads keep their throughput (and gain
availability).  Measured on the simulated deployment.
"""

from conftest import emit

from repro.deploy.deployment import deploy_microbench
from repro.deploy.platform import DEFAULT_CALIBRATION

NODES = 60
BLOCKS = 12


def _write_time(replication: int) -> float:
    deployment = deploy_microbench("bsfs", total_nodes=NODES)
    engine = deployment.cluster.engine
    storage = deployment.storage
    cal = DEFAULT_CALIBRATION

    def scenario():
        yield from storage.create(deployment.dedicated_client, "f", replication=replication)
        t0 = engine.now
        for _ in range(BLOCKS):
            yield from storage.append(
                deployment.dedicated_client, "f", cal.block_size,
                produce_rate=cal.client_stream_cap,
                replication=replication,
            )
        return engine.now - t0

    return engine.run(engine.process(scenario()))


def test_ablation_replication_write_cost(benchmark):
    def run():
        return {r: _write_time(r) for r in (1, 2, 3)}

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    throughput = {r: BLOCKS * 64 / t for r, t in times.items()}
    emit(
        "Ablation — single-writer throughput (MB/s) by replication level:\n"
        + "\n".join(f"  r={r}: {v:6.1f}" for r, v in throughput.items())
    )
    # More replicas -> more client egress traffic -> slower writes.
    assert times[1] < times[2] < times[3]
    # But not catastrophically: replicas fan out in parallel.
    assert times[3] < 3.2 * times[1]
