"""Ablations: distributed metadata and the version-manager bottleneck.

Two design choices the paper calls out:

* metadata decentralization "avoids the bottleneck created by
  concurrent accesses ... in the case of a centralized metadata
  server" (§III-A.3) — we shrink the metadata-provider pool to 1 and
  watch concurrent read latency climb;
* version assignment is the single serialized step (§III-A.4) — we
  inflate its service time and watch aggregate append throughput bend.
"""

from conftest import emit

from repro.deploy.deployment import deploy_microbench
from repro.deploy.platform import Calibration
from repro.harness.scenarios import concurrent_appenders
from repro.util.bytesize import MB

NODES = 80
CLIENTS = 32


def _read_makespan(metadata_providers: int, mdp_service: float) -> float:
    cal = Calibration(mdp_service=mdp_service)
    deployment = deploy_microbench(
        "bsfs", total_nodes=NODES, metadata_providers=metadata_providers,
        calibration=cal,
    )
    engine = deployment.cluster.engine
    storage = deployment.storage

    def scenario():
        yield from storage.create(deployment.dedicated_client, "f")
        for _ in range(CLIENTS):
            yield from storage.append(
                deployment.dedicated_client, "f", cal.block_size,
                produce_rate=cal.client_stream_cap,
            )
        t0 = engine.now
        readers = deployment.storage_nodes[:CLIENTS]

        def reader(i, node):
            yield from storage.read(
                node, "f", offset=i * cal.block_size, size=cal.block_size,
                consume_rate=cal.client_stream_cap,
            )

        procs = [engine.process(reader(i, n)) for i, n in enumerate(readers)]
        yield engine.all_of(procs)
        return engine.now - t0

    return engine.run(engine.process(scenario()))


def test_ablation_metadata_decentralization(benchmark):
    """1 metadata provider vs 20, with a heavier per-lookup cost so the
    metadata path is visible next to the 64 MB transfers."""
    service = 2e-3  # 2 ms per tree-node op

    def run():
        return {
            "centralized(1 mdp)": _read_makespan(1, service),
            "distributed(20 mdp)": _read_makespan(20, service),
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — concurrent-read makespan (s) by metadata deployment:\n"
        + "\n".join(f"  {k:>20}: {v:7.3f}" for k, v in times.items())
    )
    assert times["distributed(20 mdp)"] < times["centralized(1 mdp)"]


def test_ablation_version_manager_serialization(benchmark):
    """Aggregate append throughput vs version-manager service time."""

    def run():
        out = {}
        for service in (3e-4, 5e-3, 2e-2):
            cal = Calibration(vm_service=service)
            result = concurrent_appenders(
                "bsfs", n_clients=CLIENTS, total_nodes=NODES, calibration=cal
            )
            out[service] = result.aggregate_throughput / MB
        return out

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — aggregate append throughput (MB/s) vs VM service time:\n"
        + "\n".join(f"  {k * 1e3:6.1f} ms: {v:9.1f}" for k, v in rates.items())
    )
    values = list(rates.values())
    # Heavier serialization point -> lower aggregate throughput.
    assert values[0] > values[1] > values[2]
    # At the paper's sub-millisecond service time the serialization is
    # nearly invisible (that is the design's point).
    assert values[0] > 0.8 * CLIENTS * 64  # >= 80% of perfect scaling
