"""Parallel I/O engine scaling: fig4/fig5-style aggregate throughput.

The paper's core claim is throughput under heavy concurrency: many
clients striping blocks over many data providers at once, with the
version manager as the only serialization point.  This bench gives
every data provider a simulated per-operation service latency (so
transfer time, not Python loop overhead, dominates — as in the real
deployment) and measures aggregate client throughput for concurrent
whole-file reads (fig 4) and concurrent appends (fig 5) as the store's
``io_workers`` grows.  Expectation: monotonic scaling from inline
(``io_workers=0``) to 8 workers.
"""

import threading
import time

from conftest import emit

from repro.blob import LocalBlobStore, StoreConfig

BLOCK = 4 * 1024
BLOCKS_PER_OP = 12
CLIENTS = 2
ROUNDS = 4
# 3 ms simulated provider service time per block op: large enough that
# each worker step changes aggregate wall time by tens of milliseconds,
# so scheduler jitter on a loaded CI runner cannot invert the ordering.
LATENCY = 0.003
WORKER_SWEEP = (0, 2, 4, 8)


def _make_store(io_workers: int) -> LocalBlobStore:
    return LocalBlobStore(config=StoreConfig(
        data_providers=8,
        metadata_providers=3,
        block_size=BLOCK,
        io_workers=io_workers,
        provider_latency=LATENCY,
    ))


def _run_clients(worker_fn, n_clients: int) -> float:
    """Run *worker_fn* on *n_clients* threads; return elapsed seconds."""
    errors = []

    def body(tid):
        try:
            worker_fn(tid)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=body, args=(t,)) for t in range(n_clients)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    assert not errors, errors
    return elapsed


def _append_throughput(io_workers: int) -> float:
    """Aggregate MB/s of CLIENTS threads appending concurrently."""
    with _make_store(io_workers) as store:
        blob = store.create()
        payload = b"a" * (BLOCKS_PER_OP * BLOCK)

        def appender(tid):
            for _ in range(ROUNDS):
                store.append(blob, payload)

        elapsed = _run_clients(appender, CLIENTS)
        total = CLIENTS * ROUNDS * len(payload)
        assert store.latest_version(blob) == CLIENTS * ROUNDS
    return total / elapsed / 2**20


def _read_throughput(io_workers: int) -> float:
    """Aggregate MB/s of CLIENTS threads reading the same file."""
    with _make_store(io_workers) as store:
        blob = store.create()
        data = b"r" * (BLOCKS_PER_OP * BLOCK)
        store.append(blob, data)
        version = store.latest_version(blob)

        def reader(tid):
            for _ in range(ROUNDS):
                assert len(store.read(blob, version=version)) == len(data)

        elapsed = _run_clients(reader, CLIENTS)
        total = CLIENTS * ROUNDS * len(data)
    return total / elapsed / 2**20


def _render(title: str, rates: dict[int, float]) -> str:
    lines = [f"{title} (providers=8, latency={LATENCY * 1e3:.0f}ms/op, "
             f"clients={CLIENTS}, {BLOCKS_PER_OP} blocks/op)"]
    for workers, rate in rates.items():
        lines.append(f"  io_workers={workers:<2d}  {rate:8.2f} MB/s")
    return "\n".join(lines)


def _is_monotonic(rates: dict[int, float]) -> bool:
    sweep = list(rates)
    return all(rates[hi] > rates[lo] for lo, hi in zip(sweep, sweep[1:]))


def _assert_monotonic(rates: dict[int, float]) -> None:
    sweep = list(rates)
    for lo, hi in zip(sweep, sweep[1:]):
        assert rates[hi] > rates[lo], (
            f"throughput must scale with io_workers: "
            f"{rates[hi]:.2f} MB/s @ {hi} workers <= {rates[lo]:.2f} MB/s @ {lo}"
        )


def _measure_sweep(measure) -> dict[int, float]:
    """One throughput sweep; re-measured once if a scheduler hiccup on
    a loaded CI runner inverted an adjacent step (the expected per-step
    gap is ~1.5x, so a genuine regression fails both attempts)."""
    rates = {w: measure(w) for w in WORKER_SWEEP}
    if not _is_monotonic(rates):
        rates = {w: measure(w) for w in WORKER_SWEEP}
    return rates


def test_parallel_io_concurrent_appends_scale_with_workers():
    rates = _measure_sweep(_append_throughput)
    emit(_render("fig5-style concurrent appends", rates))
    _assert_monotonic(rates)


def test_parallel_io_concurrent_reads_scale_with_workers():
    rates = _measure_sweep(_read_throughput)
    emit(_render("fig4-style concurrent reads", rates))
    _assert_monotonic(rates)
