"""Parallel I/O engine scaling: fig4/fig5-style aggregate throughput.

The paper's core claim is throughput under heavy concurrency: many
clients striping blocks over many data providers at once, with the
version manager as the only serialization point.  This bench gives
every data provider a simulated per-operation service latency (so
transfer time, not Python loop overhead, dominates — as in the real
deployment) and measures aggregate client throughput for concurrent
whole-file reads (fig 4) and concurrent appends (fig 5) as the store's
``io_workers`` grows.  Expectation: monotonic scaling from inline
(``io_workers=0``) to 8 workers.

The high-fan-out case pits the two schedulers against each other where
thread pools stop scaling: one gather of thousands of latency-bound
block reads.  The coroutine engine (DESIGN.md §13) must match or beat
the 8-worker pool while its :class:`~repro.blob.io_engine.EngineStats`
prove it never grew past a handful of OS threads — both numbers land
in the benchmark JSON via ``extra_info``.
"""

import threading
import time

from conftest import emit

from repro.blob import LocalBlobStore, StoreConfig

BLOCK = 4 * 1024
BLOCKS_PER_OP = 12
CLIENTS = 2
ROUNDS = 4
# 3 ms simulated provider service time per block op: large enough that
# each worker step changes aggregate wall time by tens of milliseconds,
# so scheduler jitter on a loaded CI runner cannot invert the ordering.
LATENCY = 0.003
WORKER_SWEEP = (0, 2, 4, 8)


def _make_store(io_workers: int) -> LocalBlobStore:
    return LocalBlobStore(config=StoreConfig(
        data_providers=8,
        metadata_providers=3,
        block_size=BLOCK,
        io_workers=io_workers,
        provider_latency=LATENCY,
    ))


def _run_clients(worker_fn, n_clients: int) -> float:
    """Run *worker_fn* on *n_clients* threads; return elapsed seconds."""
    errors = []

    def body(tid):
        try:
            worker_fn(tid)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=body, args=(t,)) for t in range(n_clients)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    assert not errors, errors
    return elapsed


def _append_throughput(io_workers: int) -> float:
    """Aggregate MB/s of CLIENTS threads appending concurrently."""
    with _make_store(io_workers) as store:
        blob = store.create()
        payload = b"a" * (BLOCKS_PER_OP * BLOCK)

        def appender(tid):
            for _ in range(ROUNDS):
                store.append(blob, payload)

        elapsed = _run_clients(appender, CLIENTS)
        total = CLIENTS * ROUNDS * len(payload)
        assert store.latest_version(blob) == CLIENTS * ROUNDS
    return total / elapsed / 2**20


def _read_throughput(io_workers: int) -> float:
    """Aggregate MB/s of CLIENTS threads reading the same file."""
    with _make_store(io_workers) as store:
        blob = store.create()
        data = b"r" * (BLOCKS_PER_OP * BLOCK)
        store.append(blob, data)
        version = store.latest_version(blob)

        def reader(tid):
            for _ in range(ROUNDS):
                assert len(store.read(blob, version=version)) == len(data)

        elapsed = _run_clients(reader, CLIENTS)
        total = CLIENTS * ROUNDS * len(data)
    return total / elapsed / 2**20


def _render(title: str, rates: dict[int, float]) -> str:
    lines = [f"{title} (providers=8, latency={LATENCY * 1e3:.0f}ms/op, "
             f"clients={CLIENTS}, {BLOCKS_PER_OP} blocks/op)"]
    for workers, rate in rates.items():
        lines.append(f"  io_workers={workers:<2d}  {rate:8.2f} MB/s")
    return "\n".join(lines)


def _is_monotonic(rates: dict[int, float]) -> bool:
    sweep = list(rates)
    return all(rates[hi] > rates[lo] for lo, hi in zip(sweep, sweep[1:]))


def _assert_monotonic(rates: dict[int, float]) -> None:
    sweep = list(rates)
    for lo, hi in zip(sweep, sweep[1:]):
        assert rates[hi] > rates[lo], (
            f"throughput must scale with io_workers: "
            f"{rates[hi]:.2f} MB/s @ {hi} workers <= {rates[lo]:.2f} MB/s @ {lo}"
        )


def _measure_sweep(measure) -> dict[int, float]:
    """One throughput sweep; re-measured once if a scheduler hiccup on
    a loaded CI runner inverted an adjacent step (the expected per-step
    gap is ~1.5x, so a genuine regression fails both attempts)."""
    rates = {w: measure(w) for w in WORKER_SWEEP}
    if not _is_monotonic(rates):
        rates = {w: measure(w) for w in WORKER_SWEEP}
    return rates


def test_parallel_io_concurrent_appends_scale_with_workers():
    rates = _measure_sweep(_append_throughput)
    emit(_render("fig5-style concurrent appends", rates))
    _assert_monotonic(rates)


def test_parallel_io_concurrent_reads_scale_with_workers():
    rates = _measure_sweep(_read_throughput)
    emit(_render("fig4-style concurrent reads", rates))
    _assert_monotonic(rates)


# --- fig4-style high fan-out: the coroutine scheduler vs the pool ----

FANOUT_BLOCKS = 4096
FANOUT_BLOCK = 2048
FANOUT_PROVIDERS = 16
# 2 ms per block op: a 4096-block gather is ~8 s of provider service
# time, so whichever scheduler overlaps more of it wins by seconds,
# not by jitter.
FANOUT_LATENCY = 0.002


def _fanout_read(**engine) -> tuple[float, dict]:
    """One whole-file gather of FANOUT_BLOCKS blocks: (MB/s, stats)."""
    with LocalBlobStore(config=StoreConfig(
        data_providers=FANOUT_PROVIDERS,
        metadata_providers=4,
        block_size=FANOUT_BLOCK,
        provider_latency=FANOUT_LATENCY,
        **engine,
    )) as store:
        blob = store.create()
        data = b"f" * (FANOUT_BLOCKS * FANOUT_BLOCK)
        store.append(blob, data)
        version = store.latest_version(blob)
        store.io_engine.stats.reset()
        start = time.perf_counter()
        assert len(store.read(blob, version=version)) == len(data)
        elapsed = time.perf_counter() - start
        stats = store.io_engine.stats.snapshot()
    return len(data) / elapsed / 2**20, stats


def _measure_fanout() -> dict:
    threads_rate, threads_stats = _fanout_read(io_workers=8)
    coro = dict(io_scheduler="async", max_in_flight=2 * FANOUT_BLOCKS)
    async_rate, async_stats = _fanout_read(**coro)
    if async_rate < threads_rate:
        # One re-measure: a scheduler hiccup on a loaded CI runner can
        # dent one run, but a genuine regression fails both attempts.
        async_rate, async_stats = _fanout_read(**coro)
    return {
        "threads": {"rate": threads_rate, "stats": threads_stats},
        "async": {"rate": async_rate, "stats": async_stats},
    }


def test_fig4_async_high_fanout_gather(benchmark):
    out = benchmark.pedantic(_measure_fanout, rounds=1, iterations=1)
    pool, coro = out["threads"], out["async"]
    benchmark.extra_info["threads_mb_per_s"] = round(pool["rate"], 2)
    benchmark.extra_info["async_mb_per_s"] = round(coro["rate"], 2)
    benchmark.extra_info["async_threads_started"] = coro["stats"]["threads_started"]
    benchmark.extra_info["async_in_flight_hwm"] = coro["stats"]["in_flight_hwm"]
    benchmark.extra_info["threads_in_flight_hwm"] = pool["stats"]["in_flight_hwm"]
    lines = [
        f"fig4-style high-fan-out gather ({FANOUT_BLOCKS} x "
        f"{FANOUT_BLOCK}B blocks, {FANOUT_PROVIDERS} providers, "
        f"{FANOUT_LATENCY * 1e3:.0f}ms/op)",
        f"  {'backend':<24}{'MB/s':>9}{'threads':>9}{'in-flight hwm':>15}",
    ]
    for label, side in (("threads io_workers=8", pool), ("async coroutines", coro)):
        lines.append(
            f"  {label:<24}{side['rate']:>9.2f}"
            f"{side['stats']['threads_started']:>9}"
            f"{side['stats']['in_flight_hwm']:>15}"
        )
    emit("\n".join(lines))
    # The scheduler's acceptance bar: thousands of concurrent block
    # reads on a handful of OS threads, at >= thread-pool throughput.
    assert coro["stats"]["threads_started"] <= 8, (
        f"async gather grew {coro['stats']['threads_started']} OS threads"
    )
    assert coro["stats"]["in_flight_hwm"] > 8, (
        "async gather never went wider than a thread pool"
    )
    assert coro["rate"] >= pool["rate"], (
        f"coroutines {coro['rate']:.2f} MB/s under the 8-worker pool's "
        f"{pool['rate']:.2f} MB/s"
    )
