"""Figure 6(a): RandomTextWriter job completion time.

Paper: with total output fixed, BSFS completes the job 7% (many small
mappers) to 11% (one big mapper) faster than HDFS.  Criteria: BSFS
faster at every point, single-digit-to-low-teens gain, gain growing as
mappers get fewer/larger.
"""

from conftest import emit

from repro.harness import figure_6a, render_figure


def test_fig6a_random_text_writer(benchmark, scale):
    result = benchmark.pedantic(figure_6a, args=(scale,), rounds=1, iterations=1)
    emit(render_figure(result))

    bsfs, hdfs = result.ys("BSFS"), result.ys("HDFS")
    gains = [(h - b) / h for b, h in zip(bsfs, hdfs)]
    assert all(g > 0.02 for g in gains)  # BSFS meaningfully faster
    assert all(g < 0.20 for g in gains)  # computation dominates (§V-G)
    assert gains[-1] > gains[0]  # gap widens as mappers get larger
    # Completion time grows with per-mapper data (fixed cluster).
    assert bsfs[-1] > bsfs[0]
    assert hdfs[-1] > hdfs[0]
