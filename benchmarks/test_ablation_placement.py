"""Ablation: block-placement policy (the design choice behind Figs 3/4).

The paper attributes BSFS's single-writer and concurrent-reader wins to
BlobSeer's balanced round-robin placement.  Swapping the policy inside
the *same* BlobSeer deployment isolates that choice: with HDFS-style
random placement, BlobSeer's own read concurrency degrades too — the
advantage is the policy, not an accident of the rest of the stack.
"""

from conftest import emit

from repro.harness.scenarios import concurrent_readers, single_writer
from repro.util.bytesize import MB

NODES = 100
CLIENTS = 80  # close to the provider count: collisions become visible


def _with_placement(placement: str):
    """Reader scenario against a BlobSeer deployment using *placement*."""
    from repro.deploy.deployment import deploy_microbench
    from repro.deploy.platform import DEFAULT_CALIBRATION

    deployment = deploy_microbench(
        "bsfs", total_nodes=NODES, placement=placement, seed=7
    )
    engine = deployment.cluster.engine
    cal = DEFAULT_CALIBRATION
    storage = deployment.storage

    def boot_and_read():
        yield from storage.create(deployment.dedicated_client, "f")
        for _ in range(CLIENTS):
            yield from storage.append(
                deployment.dedicated_client, "f", cal.block_size,
                produce_rate=cal.client_stream_cap,
            )
        readers = deployment.storage_nodes[:CLIENTS]
        durations = {}

        def reader(i, node):
            t0 = engine.now
            yield from storage.read(
                node, "f", offset=i * cal.block_size, size=cal.block_size,
                consume_rate=cal.client_stream_cap,
            )
            durations[i] = engine.now - t0

        procs = [engine.process(reader(i, n)) for i, n in enumerate(readers)]
        yield engine.all_of(procs)
        return sum(cal.block_size / d for d in durations.values()) / len(durations)

    return engine.run(engine.process(boot_and_read()))


def test_ablation_placement_policies(benchmark):
    rates = benchmark.pedantic(
        lambda: {
            policy: _with_placement(policy) / MB
            for policy in ("round_robin", "least_loaded", "random")
        },
        rounds=1,
        iterations=1,
    )
    emit(
        "Ablation — per-client read throughput (MB/s) by placement policy:\n"
        + "\n".join(f"  {k:>12}: {v:7.1f}" for k, v in rates.items())
    )
    # Balanced policies sustain ~the single-client rate (70 MB/s)...
    assert rates["round_robin"] > 66.0
    assert rates["least_loaded"] > 66.0
    # ...while independent-uniform placement already loses measurably to
    # reader collisions.  (HDFS's much larger Figure 4 losses need its
    # *skewed* placement on top — see test_ablation_skew.)
    assert rates["random"] < 0.93 * rates["round_robin"]


def test_ablation_writer_insensitive_to_policy(benchmark):
    """The single writer is stream-bound: placement barely moves it
    (the unbalance, not the writer throughput, is what random ruins)."""
    def run():
        return {
            "round_robin": single_writer("bsfs", 24, total_nodes=60).throughput,
            "reader_side": concurrent_readers("bsfs", 24, total_nodes=60).mean_client_throughput,
        }

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rates["round_robin"] > 55 * MB
    assert rates["reader_side"] > 55 * MB
