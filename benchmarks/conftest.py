"""Benchmark configuration.

Scale selection: set ``REPRO_SCALE=full`` to regenerate every figure at
the paper's deployment sizes (270 nodes, 250 clients, 12.8 GB inputs);
the default ``bench`` scale uses mid-size deployments that preserve
every shape while keeping the whole suite to a few minutes.

Each figure bench prints its regenerated table (compare against the
paper per EXPERIMENTS.md) and asserts the shape criteria of DESIGN.md.
"""

import os

import pytest

from repro.harness.experiments import FULL, Scale

#: Mid-size sweeps: every mechanism active, minutes not hours.
BENCH = Scale(
    name="bench",
    total_nodes=140,
    fig3_blocks=(8, 32, 64, 128),
    fig4_clients=(1, 25, 50, 100),
    fig5_clients=(1, 25, 50, 100),
    fig6a_mapper_mb=(128, 320, 800, 1600, 3200),
    fig6a_total_mb=3200,
    fig6a_workers=25,
    fig6b_input_gb=(3.2, 4.8, 6.4),
    fig6b_workers=75,
)


@pytest.fixture(scope="session")
def scale() -> Scale:
    """The sweep scale for this benchmark session."""
    name = os.environ.get("REPRO_SCALE", "bench").lower()
    if name == "full":
        return FULL
    if name == "bench":
        return BENCH
    raise ValueError(f"REPRO_SCALE must be 'bench' or 'full', got {name!r}")


def emit(text: str) -> None:
    """Print a figure report so it lands in the benchmark log."""
    print()
    print(text)
