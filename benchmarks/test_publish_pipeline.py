"""Group-commit publish pipeline: fig5-style append scaling (DESIGN.md §10).

The paper's §III-B/§III-D design rests on version assignment being the
*only* serialized step of a write — yet the per-writer protocol still
pays one version-manager interaction per writer per phase (assign,
then commit), so under fig5-style heavy append concurrency the version
manager becomes a per-writer RPC hotspot exactly as the metadata layer
was before the batched descent.  This bench gives the version manager
a per-interaction service latency and measures aggregate
concurrent-append throughput through both publish paths.  Expectation:
the group-commit pipeline (batched assign/commit, scatter overlapped
with metadata weaving) beats the per-writer baseline by a wide margin,
and the VmanStats counter proves its round trips scale with batches,
not writers.

Round-trip counts and the largest coalesced batch land in the
benchmark JSON artifact via ``extra_info``, so CI records the batching
win alongside the wall-clock numbers.
"""

import threading
import time

from conftest import emit

from repro.blob import LocalBlobStore, StoreConfig

BLOCK = 4 * 1024
BLOCKS_PER_OP = 4
CLIENTS = 16
ROUNDS = 2
TOTAL_OPS = CLIENTS * ROUNDS
#: 5 ms simulated version-manager service time per serialized
#: interaction: the per-writer path pays it 2x per append *serially*
#: (assign + commit through the concurrency-1 version manager), the
#: pipeline once per batch — a gap scheduler jitter cannot invert.
VMAN_LATENCY = 0.005
#: Window the group-commit leader waits for more writers to join.
WINDOW = 0.003


def _measure(group_commit: bool) -> dict:
    """Aggregate MB/s of CLIENTS threads appending to one BLOB, plus
    the version-manager round-trip count of the whole workload."""
    store = LocalBlobStore(config=StoreConfig(
        data_providers=8,
        metadata_providers=4,
        block_size=BLOCK,
        io_workers=8,
        vman_latency=VMAN_LATENCY,
        group_commit=group_commit,
        publish_window=WINDOW if group_commit else 0.0,
        overlap_publish=group_commit,
    ))
    try:
        blob = store.create()
        payload = b"a" * (BLOCKS_PER_OP * BLOCK)
        store.vman_stats.reset()
        barrier = threading.Barrier(CLIENTS)
        errors = []

        def appender():
            try:
                barrier.wait()
                for _ in range(ROUNDS):
                    store.append(blob, payload)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=appender) for _ in range(CLIENTS)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
        assert not errors, errors
        stats = store.vman_stats.snapshot()
        assert store.latest_version(blob) == TOTAL_OPS
        return {
            "mb_per_s": TOTAL_OPS * len(payload) / elapsed / 2**20,
            "vman_round_trips": stats["vman_round_trips"],
            "max_commit_batch": stats["vman_max_commit_batch"],
        }
    finally:
        store.close()


def test_fig5_publish_pipeline_appends(benchmark):
    def run():
        return {
            "per_writer": _measure(group_commit=False),
            "grouped": _measure(group_commit=True),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    per, grp = out["per_writer"], out["grouped"]
    benchmark.extra_info["per_writer_vman_round_trips"] = per["vman_round_trips"]
    benchmark.extra_info["grouped_vman_round_trips"] = grp["vman_round_trips"]
    benchmark.extra_info["grouped_max_commit_batch"] = grp["max_commit_batch"]
    benchmark.extra_info["speedup"] = round(grp["mb_per_s"] / per["mb_per_s"], 2)
    emit(
        "fig5-style concurrent appends vs publish pipeline "
        f"(writers={CLIENTS}, {ROUNDS} appends each, "
        f"{VMAN_LATENCY * 1e3:.1f}ms/vman interaction):\n"
        f"  per-writer commits       {per['mb_per_s']:8.2f} MB/s  "
        f"({per['vman_round_trips']} vman round trips)\n"
        f"  group-commit pipeline    {grp['mb_per_s']:8.2f} MB/s  "
        f"({grp['vman_round_trips']} vman round trips, "
        f"largest batch {grp['max_commit_batch']})"
    )
    # The counter bound: O(batches) vs O(writers) serialized vman
    # interactions for the same {TOTAL_OPS}-append workload ...
    assert per["vman_round_trips"] >= 2 * TOTAL_OPS
    assert grp["vman_round_trips"] <= TOTAL_OPS // 2
    assert grp["max_commit_batch"] >= 2
    # ... and the >= 5x throughput win it buys under vman latency.
    assert grp["mb_per_s"] > 5 * per["mb_per_s"], (
        f"group commit must clearly beat the per-writer baseline: "
        f"{grp['mb_per_s']:.2f} vs {per['mb_per_s']:.2f} MB/s"
    )
