"""Figure 3(b): degree of unbalance (Manhattan distance to ideal layout).

Paper: HDFS's layout distance grows steadily with file size (to ~450
at 16 GB over ~267 datanodes); BSFS remains near-balanced (< 50).
Criteria: HDFS grows, BSFS stays small and far below HDFS.
"""

from conftest import emit

from repro.harness import figure_3b, render_figure


def test_fig3b_load_balance(benchmark, scale):
    result = benchmark.pedantic(figure_3b, args=(scale,), rounds=1, iterations=1)
    emit(render_figure(result))

    bsfs, hdfs = result.ys("BSFS"), result.ys("HDFS")
    # HDFS unbalance grows with the number of chunks.
    assert hdfs[-1] > hdfs[0]
    assert hdfs[-1] > 2 * bsfs[-1]
    # BSFS round-robin keeps per-provider spread within one block, so
    # its distance stays below the provider count at any size.
    assert all(b <= scale.total_nodes for b in bsfs)
