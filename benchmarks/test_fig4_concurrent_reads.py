"""Figure 4: concurrent readers of a shared file — per-client throughput.

Paper: BSFS "is able to deliver the same throughput even when the
number of clients increases" (flat near the single-client rate); HDFS
degrades because readers pile onto the datanodes its skewed layout
favoured.  Criteria: BSFS flat, HDFS clearly degrading, BSFS ahead at
high concurrency.
"""

from conftest import emit

from repro.harness import figure_4, render_figure


def test_fig4_concurrent_reads(benchmark, scale):
    result = benchmark.pedantic(figure_4, args=(scale,), rounds=1, iterations=1)
    emit(render_figure(result))

    bsfs, hdfs = result.ys("BSFS"), result.ys("HDFS")
    # BSFS: flat within 10% of its single-client rate.
    assert min(bsfs) > 0.9 * max(bsfs)
    # HDFS: degrades visibly as concurrency grows.
    assert hdfs[-1] < 0.8 * hdfs[0]
    # BSFS clearly ahead under heavy concurrency.
    assert bsfs[-1] > 1.4 * hdfs[-1]
    # Single-client rates are comparable (the gap is a concurrency
    # phenomenon, not a constant offset).
    assert abs(bsfs[0] - hdfs[0]) / bsfs[0] < 0.15
