"""Zero-copy data plane: fig4-style read throughput with byte accounting.

The paper's fig4 measures aggregate read throughput as clients scale —
the regime where the pre-refactor reproduction partly benchmarked
``bytes()`` materialization instead of the architecture: every block
hop (provider get → slice → ``b"".join`` reassembly → user bytes)
re-copied the payload, ~3-4x per byte read.  The refactor (DESIGN.md
§11) gathers every block into ONE preallocated buffer via disjoint
``memoryview`` windows, so an N-byte read materializes at most N bytes
client-side — and the shared :class:`~repro.blob.block.CopyStats`
counters prove it here, landing in the benchmark JSON artifact via
``extra_info`` so CI records the copy budget alongside the wall-clock
numbers.
"""

import threading
import time

from conftest import emit

from repro.blob import LocalBlobStore, StoreConfig

BLOCK = 64 * 1024
BLOCKS = 48
CLIENTS = 4
ROUNDS = 3


def _measure() -> dict:
    store = LocalBlobStore(config=StoreConfig(
        data_providers=8,
        metadata_providers=6,
        block_size=BLOCK,
        io_workers=8,
    ))
    try:
        blob = store.create()
        size = BLOCKS * BLOCK
        data = bytes(bytearray(range(256))) * (size // 256)

        store.copy_stats.reset()
        store.append(blob, data)
        write = store.copy_stats.snapshot()

        store.copy_stats.reset()
        errors = []

        def reader():
            try:
                for _ in range(ROUNDS):
                    assert len(store.read(blob)) == size
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(CLIENTS)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
        assert not errors, errors
        read = store.copy_stats.snapshot()
        return {
            "mb_per_s": CLIENTS * ROUNDS * size / elapsed / 2**20,
            "size": size,
            "reads": CLIENTS * ROUNDS,
            "write": write,
            "read": read,
        }
    finally:
        store.close()


def test_fig4_zero_copy_read_throughput(benchmark):
    out = benchmark.pedantic(_measure, rounds=1, iterations=1)
    size, reads = out["size"], out["reads"]
    write, read = out["write"], out["read"]
    benchmark.extra_info["bytes_copied_per_read"] = read["bytes_copied"] // reads
    benchmark.extra_info["bytes_transferred_per_read"] = (
        read["bytes_transferred"] // reads
    )
    benchmark.extra_info["write_bytes_copied"] = write["bytes_copied"]
    benchmark.extra_info["copy_ratio"] = round(read["bytes_copied"] / (reads * size), 3)
    emit(
        "fig4-style zero-copy reads "
        f"(clients={CLIENTS}, {BLOCKS} x {BLOCK // 1024}KB blocks):\n"
        f"  aggregate throughput     {out['mb_per_s']:8.2f} MB/s\n"
        f"  copied/read              {read['bytes_copied'] // reads:>10,} B "
        f"(payload {size:,} B -> {read['bytes_copied'] / (reads * size):.2f}x)\n"
        f"  transferred/read         {read['bytes_transferred'] // reads:>10,} B\n"
        f"  append client copies     {write['bytes_copied']:>10,} B"
    )
    # The zero-copy budget (DESIGN.md §11): ONE gather per read, so an
    # N-byte read materializes <= N bytes client-side (the pre-refactor
    # path paid ~3-4x), and appending immutable bytes copies nothing.
    assert read["bytes_copied"] <= reads * size, (
        f"reads materialized {read['bytes_copied']:,}B for {reads} x {size:,}B, "
        "over the 1x zero-copy budget"
    )
    assert read["bytes_result"] == reads * size
    assert write["bytes_copied"] == 0, (
        f"append of immutable bytes copied {write['bytes_copied']:,}B client-side"
    )
    assert write["bytes_transferred"] == size
