"""Figure 6(b): distributed grep job completion time.

Paper: BSFS outperforms HDFS by 35% at 6.4 GB, growing to 38% at
12.8 GB.  Our mechanistic model reproduces the *direction* and the
*trend* (gap grows with input size as HDFS's layout skew concentrates
more blocks on hot nodes) but under-reproduces the magnitude — the
authors' measured layout skew (their Figure 3(b)) explains part but
evidently not all of their gap; see EXPERIMENTS.md and the
``test_ablation_skew`` bench, which shows the gap scaling with skew.

Criteria: BSFS never slower and strictly faster at every input size;
completion time grows with input on both systems.
"""

from conftest import emit

from repro.harness import figure_6b, render_figure


def test_fig6b_grep(benchmark, scale):
    result = benchmark.pedantic(figure_6b, args=(scale,), rounds=1, iterations=1)
    emit(render_figure(result))

    bsfs, hdfs = result.ys("BSFS"), result.ys("HDFS")
    for b, h in zip(bsfs, hdfs):
        assert b <= h * 1.01  # never meaningfully slower
    gains = [(h - b) / h for b, h in zip(bsfs, hdfs)]
    assert gains[-1] > 0.02  # clear win at the largest input
    assert max(gains) > 0.04  # and a solid win somewhere in the sweep
    # Completion grows with input on both systems.
    assert bsfs[-1] > bsfs[0]
    assert hdfs[-1] > hdfs[0]
