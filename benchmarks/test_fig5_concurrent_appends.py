"""Figure 5: concurrent appenders to one file — aggregate throughput.

Paper: BSFS's aggregated append throughput scales near-linearly with
the number of clients (to ~10 GB/s at 250); HDFS cannot run the
scenario at all.  Criteria: monotone growth, >= 75% parallel
efficiency at the largest client count, HDFS refused.
"""

import pytest
from conftest import emit

from repro.errors import AppendNotSupported
from repro.harness import concurrent_appenders, figure_5, render_figure


def test_fig5_concurrent_appends(benchmark, scale):
    result = benchmark.pedantic(figure_5, args=(scale,), rounds=1, iterations=1)
    emit(render_figure(result))

    points = sorted(result.series["BSFS"])
    ys = [y for _, y in points]
    assert all(b > a for a, b in zip(ys, ys[1:]))  # monotone growth
    (x0, y0), (xn, yn) = points[0], points[-1]
    assert (yn / xn) > 0.75 * (y0 / x0)  # near-linear scaling

    # The HDFS side of the figure is its absence.
    with pytest.raises(AppendNotSupported):
        concurrent_appenders("hdfs", n_clients=2, total_nodes=30)
