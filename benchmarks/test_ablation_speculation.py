"""Ablation: speculative execution on a heterogeneous cluster.

The paper's reference [17] (Zaharia et al., "Improving MapReduce
performance in heterogeneous environments") motivates Hadoop's
straggler mitigation.  One degraded-NIC tasktracker turns its remote
maps into stragglers; with speculation on, idle healthy nodes duplicate
them and the job's makespan recovers.
"""

from conftest import emit

from repro.deploy import JobProfile, deploy_mapreduce
from repro.util.bytesize import MB

BS = 64 * MB


def _grep_time(speculative: bool) -> tuple[float, int]:
    profile = JobProfile(
        jvm_start=0.5,
        heartbeat=1.0,
        job_init=1.0,
        reduce_time=0.5,
        speculative=speculative,
        speculative_slowdown=1.3,
    )
    dep = deploy_mapreduce("hdfs", workers=24, profile=profile, seed=6)
    dep.cluster.network.set_node_rates("worker-000", ingress=8 * MB)
    engine = dep.cluster.engine
    cal = dep.calibration

    def scenario():
        yield from dep.storage.write_file(
            dep.dedicated_client, "/input", 36 * BS,
            produce_rate=cal.client_stream_cap,
        )
        elapsed = yield from dep.hadoop.run_scan_job("/input", scan_rate=50 * MB)
        return elapsed

    elapsed = engine.run(engine.process(scenario()))
    return elapsed, dep.hadoop.last_speculative


def test_ablation_speculation(benchmark):
    def run():
        plain, _ = _grep_time(speculative=False)
        spec, twins = _grep_time(speculative=True)
        return {"off": plain, "on": spec, "twins": twins}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — grep makespan with one degraded tracker:\n"
        f"  speculation off: {result['off']:6.2f} s\n"
        f"  speculation on:  {result['on']:6.2f} s "
        f"({result['twins']} duplicate attempts)"
    )
    assert result["twins"] > 0
    assert result["on"] < result["off"]