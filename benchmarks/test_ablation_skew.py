"""Ablation: the grep gap as a function of HDFS layout skew.

Figure 6(b)'s mechanism: grep's concurrent shared-file reads hammer the
datanodes that HDFS's placement favoured.  Sweeping the calibrated
``hdfs_target_reuse`` (1 = independent uniform, larger = longer runs of
chunks on one node) shows the job-completion gap growing with skew —
evidence that the under-reproduced magnitude of our Figure 6(b) traces
to layout skew, the one quantity the authors' testbed controlled and we
can only calibrate from their Figure 3(b).
"""

from conftest import emit

from repro.deploy.deployment import deploy_mapreduce
from repro.deploy.platform import Calibration
from repro.harness.experiments import GREP_SCAN_RATE

WORKERS = 75
INPUT_BLOCKS = 100


def _grep_time(backend: str, target_reuse: int) -> float:
    cal = Calibration(hdfs_target_reuse=target_reuse)
    deployment = deploy_mapreduce(
        backend, workers=WORKERS, metadata_providers=10, calibration=cal, seed=9
    )
    engine = deployment.cluster.engine
    storage = deployment.storage
    client = deployment.dedicated_client

    def scenario():
        if backend == "bsfs":
            yield from storage.create(client, "input")
            for _ in range(INPUT_BLOCKS):
                yield from storage.append(
                    client, "input", cal.block_size,
                    produce_rate=cal.client_stream_cap,
                )
            handle = "input"
        else:
            yield from storage.write_file(
                client, "/input", INPUT_BLOCKS * cal.block_size,
                produce_rate=cal.client_stream_cap,
            )
            handle = "/input"
        elapsed = yield from deployment.hadoop.run_scan_job(
            handle, scan_rate=GREP_SCAN_RATE
        )
        return elapsed

    return engine.run(engine.process(scenario()))


def test_ablation_grep_gap_vs_layout_skew(benchmark):
    def run():
        bsfs = _grep_time("bsfs", 1)  # reuse is an HDFS-only knob
        gaps = {}
        for reuse in (1, 3, 8, 16):
            hdfs = _grep_time("hdfs", reuse)
            gaps[reuse] = (hdfs - bsfs) / hdfs
        return gaps

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — grep completion gap (BSFS vs HDFS) by layout skew:\n"
        + "\n".join(
            f"  target_reuse={k:>2}: BSFS faster by {v:6.1%}" for k, v in gaps.items()
        )
    )
    # The gap grows with skew; heavy skew produces paper-magnitude gaps.
    assert gaps[16] > gaps[3] >= gaps[1] - 0.02
    assert gaps[16] > 0.15
