"""Ablation: the §IV-B client cache (whole-block prefetch, write-behind).

Hadoop touches data 4 KB at a time; without the cache every touch would
be a backend round trip.  Measured on the functional layer: backend
operations per 4 KB-pattern scan, with and without batching.
"""

from conftest import emit

from repro.blob import LocalBlobStore, StoreConfig
from repro.bsfs import BSFSFileSystem

BS = 64 * 1024  # 64 KB blocks, 4 KB client I/O -> 16 touches per block
TOUCH = 4 * 1024


def make_fs():
    return BSFSFileSystem(
        store=LocalBlobStore(config=StoreConfig(data_providers=4, metadata_providers=2, block_size=BS))
    )


def test_ablation_read_prefetch(benchmark):
    fs = make_fs()
    fs.write_file("/f", bytes(8 * BS))

    def scan_with_cache():
        stream = fs.open("/f")
        while stream.read(TOUCH):
            pass
        return stream.prefetches

    fetches = benchmark(scan_with_cache)
    touches = 8 * BS // TOUCH
    emit(
        f"Ablation — 4 KB scan of 8 blocks: {fetches} backend fetches for "
        f"{touches} client reads (prefetch amortizes {touches // fetches}x)"
    )
    assert fetches == 8  # exactly one fetch per block, not per touch


def test_ablation_write_behind(benchmark):
    def write_with_batching():
        fs = make_fs()
        stream = fs.create("/out")
        for _ in range(8 * BS // TOUCH):
            stream.write(b"x" * TOUCH)
        stream.close()
        return fs.store.latest_version(fs.blob_of("/out"))

    commits = benchmark(write_with_batching)
    emit(
        f"Ablation — 4 KB writes into 8 blocks: {commits} backend commits "
        f"for {8 * BS // TOUCH} client writes"
    )
    assert commits == 8  # one commit per filled block (write-behind)
