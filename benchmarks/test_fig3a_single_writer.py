"""Figure 3(a): single writer, single file — throughput vs file size.

Paper: BSFS sustains ~60-70 MB/s as the file grows to 16 GB; HDFS stays
around 40-47 MB/s.  Criteria: BSFS wins at every size by ~1.4-1.8x and
both curves are flat (no collapse with file size).
"""

from conftest import emit

from repro.harness import figure_3a, render_figure


def test_fig3a_single_writer(benchmark, scale):
    result = benchmark.pedantic(figure_3a, args=(scale,), rounds=1, iterations=1)
    emit(render_figure(result))

    bsfs, hdfs = result.ys("BSFS"), result.ys("HDFS")
    # BSFS wins everywhere, within the paper's factor band.
    for b, h in zip(bsfs, hdfs):
        assert b > h
        assert 1.3 < b / h < 2.2
    # Sustained throughput: neither system collapses with file size.
    assert min(bsfs) > 0.85 * max(bsfs)
    assert min(hdfs) > 0.85 * max(hdfs)
    # Absolute bands (calibrated): BSFS ~60-70, HDFS ~40-47.
    assert 55 < bsfs[-1] < 75
    assert 35 < hdfs[-1] < 50
