"""Core data-structure microbenchmarks (pytest-benchmark timings).

Not figures from the paper — these time the hot paths of the
implementation itself: segment-tree weaving and descent, version
assignment, DHT lookups, placement, and the max-min fair solver.
"""


from repro.blob import (
    BlockDescriptor,
    LocalBlobStore,
    NodeKey,
    ProviderManagerCore,
    StoreConfig,
    VersionManagerCore,
    build_patch,
    collect_blocks,
)
from repro.dht import HashRing
from repro.simulation import Engine, FlowNetwork

BS = 64


def _descriptor(version, nonce):
    def make(index):
        return BlockDescriptor(
            blob_id="bench",
            version=version,
            index=index,
            size=BS,
            providers=("p",),
            nonce=nonce,
            seq=index,
        )

    return make


class TestSegmentTree:
    def test_build_patch_256_blocks(self, benchmark):
        benchmark(
            build_patch,
            "bench", 1, 0, 256, 256, [], _descriptor(1, 1),
        )

    def test_build_patch_deep_history(self, benchmark):
        history = [(v, v % 200, v % 200 + 4) for v in range(1, 250)]

        def weave():
            return build_patch(
                "bench", 250, 100, 104, 256, history, _descriptor(250, 250)
            )

        benchmark(weave)

    def test_descent_single_block_of_256(self, benchmark):
        nodes = {}
        for node in build_patch("bench", 1, 0, 256, 256, [], _descriptor(1, 1)):
            nodes[node.key] = node
        root = NodeKey("bench", 1, 0, 256)
        benchmark(collect_blocks, nodes.__getitem__, root, 100, 101)


class TestVersionManager:
    def test_append_assignment_throughput(self, benchmark):
        def assign_batch():
            vm = VersionManagerCore()
            vm.create_blob("b", block_size=BS)
            for _ in range(500):
                ticket = vm.assign_append("b", BS)
                vm.commit("b", ticket.version)

        benchmark(assign_batch)


class TestDht:
    def test_ring_lookup(self, benchmark):
        ring = HashRing([f"mdp-{i}" for i in range(20)])
        keys = [("blob", v, o, 1) for v in range(20) for o in range(50)]
        benchmark(lambda: [ring.lookup(k) for k in keys])

    def test_ring_replicas(self, benchmark):
        ring = HashRing([f"mdp-{i}" for i in range(20)])
        benchmark(lambda: [ring.replicas(i, 3) for i in range(500)])


class TestPlacement:
    def test_round_robin_allocation(self, benchmark):
        def allocate():
            pm = ProviderManagerCore(policy="round_robin")
            for i in range(200):
                pm.register(f"p{i}")
            pm.allocate(1000, [BS] * 1000)

        benchmark(allocate)


class TestStoreEndToEnd:
    def test_write_read_cycle(self, benchmark):
        def cycle():
            store = LocalBlobStore(config=StoreConfig(
                data_providers=8, metadata_providers=3, block_size=BS
            ))
            blob = store.create()
            for i in range(16):
                store.append(blob, bytes([i]) * BS)
            return store.read(blob)

        result = benchmark(cycle)
        assert len(result) == 16 * BS


class TestFairShareSolver:
    def test_recompute_200_flows(self, benchmark):
        """Progressive filling with 200 concurrent flows (the Fig 4/5
        solver load at high client counts)."""

        def run_network():
            engine = Engine()
            net = FlowNetwork(engine, latency=0.0)
            for i in range(100):
                net.add_node(f"n{i}", egress=100.0, ingress=100.0)
            events = [
                net.transfer(f"n{i % 100}", f"n{(i * 37 + 1) % 100}", 50.0 + i)
                for i in range(200)
            ]
            engine.run(engine.all_of(events))
            return engine.now

        benchmark(run_network)
