"""Batched metadata pipeline: fig5-style read scaling (DESIGN.md §9).

The paper's read path sends its metadata requests "asynchronously",
processed "in parallel by the metadata providers" (§III-C) — the
pre-refactor reproduction instead descended the segment tree with one
blocking round trip per node, so with any simulated metadata service
latency the metadata layer (not the data layer) capped read
throughput.  This bench gives every metadata bucket a per-request
service latency and measures aggregate concurrent-read throughput
through both pipelines.  Expectation: the batched descent (O(tree
depth) round trips, level fan-out over the I/O engine, immutable node
cache) beats the sequential per-node baseline by a wide margin.

The per-pipeline round-trip counts and the cache hit rate land in the
benchmark JSON artifact via ``extra_info``, so CI records the batching
win alongside the wall-clock numbers.
"""

import threading
import time

from conftest import emit

from repro.blob import LocalBlobStore, StoreConfig

BLOCK = 4 * 1024
BLOCKS = 48
CLIENTS = 4
ROUNDS = 3
#: 1.5 ms simulated metadata service time per bucket request: the
#: sequential descent pays it ~2N times per read, the batched pipeline
#: ~tree-depth times — a gap scheduler jitter cannot invert.
META_LATENCY = 0.0015


def _measure(batched: bool) -> dict:
    """Aggregate MB/s of CLIENTS threads reading the same BLOB, plus
    the metadata round-trip count of one cold read."""
    store = LocalBlobStore(config=StoreConfig(
        data_providers=8,
        metadata_providers=6,
        block_size=BLOCK,
        io_workers=8,
        metadata_latency=META_LATENCY,
        metadata_batching=batched,
        metadata_cache_nodes=1024 if batched else 0,
    ))
    try:
        blob = store.create()
        data = b"m" * (BLOCKS * BLOCK)
        store.append(blob, data)
        stats = store.metadata.store.stats
        stats.reset()
        assert store.read(blob) == data  # the cold descent
        cold_round_trips = stats.snapshot()["round_trips"]

        errors = []

        def reader():
            try:
                for _ in range(ROUNDS):
                    assert len(store.read(blob)) == len(data)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(CLIENTS)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
        assert not errors, errors
        cache = store.metadata.cache
        return {
            "mb_per_s": CLIENTS * ROUNDS * len(data) / elapsed / 2**20,
            "cold_round_trips": cold_round_trips,
            "cache_hit_rate": round(cache.hit_rate, 4) if cache else 0.0,
        }
    finally:
        store.close()


def test_meta_batching_read_throughput(benchmark):
    def run():
        return {
            "sequential": _measure(batched=False),
            "batched": _measure(batched=True),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    seq, bat = out["sequential"], out["batched"]
    benchmark.extra_info["sequential_cold_round_trips"] = seq["cold_round_trips"]
    benchmark.extra_info["batched_cold_round_trips"] = bat["cold_round_trips"]
    benchmark.extra_info["batched_cache_hit_rate"] = bat["cache_hit_rate"]
    benchmark.extra_info["speedup"] = round(bat["mb_per_s"] / seq["mb_per_s"], 2)
    emit(
        "fig5-style concurrent reads vs metadata pipeline "
        f"(clients={CLIENTS}, {BLOCKS} blocks, "
        f"{META_LATENCY * 1e3:.1f}ms/metadata request):\n"
        f"  sequential descent       {seq['mb_per_s']:8.2f} MB/s  "
        f"({seq['cold_round_trips']} round trips/cold read)\n"
        f"  batched descent + cache  {bat['mb_per_s']:8.2f} MB/s  "
        f"({bat['cold_round_trips']} round trips/cold read, "
        f"hit rate {bat['cache_hit_rate']:.0%})"
    )
    # The acceptance bound: O(tree depth) vs O(nodes visited) ...
    assert bat["cold_round_trips"] < seq["cold_round_trips"] / 4
    assert seq["cold_round_trips"] >= 2 * BLOCKS - 1
    # ... and the throughput win it buys under metadata latency.
    assert bat["mb_per_s"] > 2 * seq["mb_per_s"], (
        f"batched pipeline must clearly beat the sequential baseline: "
        f"{bat['mb_per_s']:.2f} vs {seq['mb_per_s']:.2f} MB/s"
    )
