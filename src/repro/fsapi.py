"""The Hadoop-style FileSystem API shared by BSFS and HDFS.

Hadoop accesses its storage backend "through a clean, specific Java API"
(paper §IV); BSFS exists precisely because that API can be implemented
on top of BlobSeer.  This module defines the Python rendition of that
contract — create/open/append streams, namespace operations, and the
``block_locations`` affinity primitive — plus the path utilities and the
directory tree both namespace services (BSFS namespace manager, HDFS
namenode) are built from.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import (
    DirectoryNotEmpty,
    FileAlreadyExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
)

__all__ = [
    "normalize_path",
    "parent_path",
    "base_name",
    "FileStatus",
    "RangeLocation",
    "DirectoryTree",
    "FileSystem",
    "WriteStream",
    "ReadStream",
]


# --------------------------------------------------------------------------
# Paths
# --------------------------------------------------------------------------


def normalize_path(path: str) -> str:
    """Canonical absolute form: single slashes, no trailing slash, no relatives.

    >>> normalize_path("/a//b/")
    '/a/b'
    """
    if not isinstance(path, str) or not path.startswith("/"):
        raise ValueError(f"paths must be absolute strings, got {path!r}")
    parts = [p for p in path.split("/") if p]
    for part in parts:
        if part in (".", ".."):
            raise ValueError(f"relative components not allowed: {path!r}")
    return "/" + "/".join(parts)


def parent_path(path: str) -> str:
    """Parent directory of a normalized path ('/' is its own parent)."""
    path = normalize_path(path)
    if path == "/":
        return "/"
    return path.rsplit("/", 1)[0] or "/"


def base_name(path: str) -> str:
    """Final component of a normalized path ('' for the root)."""
    path = normalize_path(path)
    return "" if path == "/" else path.rsplit("/", 1)[1]


# --------------------------------------------------------------------------
# Status and locations
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FileStatus:
    """What ``status(path)`` reports."""

    path: str
    is_dir: bool
    size: int

    @property
    def is_file(self) -> bool:
        """Convenience inverse of :attr:`is_dir`."""
        return not self.is_dir


@dataclass(frozen=True)
class RangeLocation:
    """One block of a file range and the hosts storing it (§IV-C)."""

    offset: int
    length: int
    hosts: tuple[str, ...]


# --------------------------------------------------------------------------
# Directory tree (shared by the BSFS namespace manager and the namenode)
# --------------------------------------------------------------------------


class DirectoryTree:
    """A hierarchical namespace mapping file paths to opaque handles.

    Directories are implicit containers; files carry a caller-supplied
    handle (a BLOB id for BSFS, a chunk list for HDFS).  All operations
    take normalized absolute paths.
    """

    def __init__(self) -> None:
        self._dirs: set[str] = {"/"}
        self._files: dict[str, object] = {}

    # -- queries ------------------------------------------------------------

    def is_dir(self, path: str) -> bool:
        """Whether *path* is an existing directory."""
        return normalize_path(path) in self._dirs

    def is_file(self, path: str) -> bool:
        """Whether *path* is an existing file."""
        return normalize_path(path) in self._files

    def exists(self, path: str) -> bool:
        """Whether *path* exists at all."""
        path = normalize_path(path)
        return path in self._dirs or path in self._files

    def handle(self, path: str) -> object:
        """The handle stored for a file path."""
        path = normalize_path(path)
        try:
            return self._files[path]
        except KeyError:
            if path in self._dirs:
                raise IsADirectory(path) from None
            raise FileNotFound(path) from None

    def list_dir(self, path: str) -> list[str]:
        """Immediate children of a directory (sorted full paths)."""
        path = normalize_path(path)
        if path in self._files:
            raise NotADirectory(path)
        if path not in self._dirs:
            raise FileNotFound(path)
        prefix = path if path.endswith("/") else path + "/"
        children = set()
        for candidate in list(self._dirs) + list(self._files):
            if candidate != path and candidate.startswith(prefix):
                rest = candidate[len(prefix):]
                children.add(prefix + rest.split("/", 1)[0])
        return sorted(children)

    def iter_files(self, path: str = "/") -> Iterator[str]:
        """All file paths under a directory (recursive, sorted)."""
        path = normalize_path(path)
        prefix = path if path.endswith("/") else path + "/"
        for file_path in sorted(self._files):
            if file_path == path or file_path.startswith(prefix):
                yield file_path

    # -- mutations -----------------------------------------------------------

    def make_dirs(self, path: str) -> None:
        """``mkdir -p``; error if a component is a file."""
        path = normalize_path(path)
        parts = [p for p in path.split("/") if p]
        current = ""
        for part in parts:
            current += "/" + part
            if current in self._files:
                raise NotADirectory(current)
            self._dirs.add(current)

    def add_file(self, path: str, handle: object) -> None:
        """Register a file (creating parents, Hadoop-style)."""
        path = normalize_path(path)
        if path in self._files or path in self._dirs:
            raise FileAlreadyExists(path)
        self.make_dirs(parent_path(path))
        self._files[path] = handle

    def set_handle(self, path: str, handle: object) -> None:
        """Replace an existing file's handle."""
        path = normalize_path(path)
        if path not in self._files:
            raise FileNotFound(path)
        self._files[path] = handle

    def remove(self, path: str, recursive: bool = False) -> list[object]:
        """Delete a file or directory; returns the removed file handles.

        Non-recursive deletion of a non-empty directory raises
        :class:`DirectoryNotEmpty`; deleting '/' is refused.
        """
        path = normalize_path(path)
        if path == "/":
            raise ValueError("refusing to delete the root directory")
        if path in self._files:
            return [self._files.pop(path)]
        if path not in self._dirs:
            raise FileNotFound(path)
        children = self.list_dir(path)
        if children and not recursive:
            raise DirectoryNotEmpty(path)
        removed: list[object] = []
        prefix = path + "/"
        for file_path in [f for f in self._files if f.startswith(prefix)]:
            removed.append(self._files.pop(file_path))
        for dir_path in [d for d in self._dirs if d == path or d.startswith(prefix)]:
            self._dirs.discard(dir_path)
        return removed

    def rename(self, src: str, dst: str) -> None:
        """Move a file or directory subtree; *dst* must not exist."""
        src, dst = normalize_path(src), normalize_path(dst)
        if src == "/":
            raise ValueError("cannot rename the root directory")
        if self.exists(dst):
            raise FileAlreadyExists(dst)
        if dst.startswith(src + "/"):
            raise ValueError(f"cannot rename {src!r} into itself")
        if src in self._files:
            self.make_dirs(parent_path(dst))
            self._files[dst] = self._files.pop(src)
            return
        if src not in self._dirs:
            raise FileNotFound(src)
        self.make_dirs(parent_path(dst))
        prefix = src + "/"
        for file_path in [f for f in self._files if f.startswith(prefix)]:
            self._files[dst + file_path[len(src):]] = self._files.pop(file_path)
        for dir_path in [d for d in self._dirs if d == src or d.startswith(prefix)]:
            self._dirs.discard(dir_path)
            self._dirs.add(dst + dir_path[len(src):])


# --------------------------------------------------------------------------
# Streams and the FileSystem contract
# --------------------------------------------------------------------------


class WriteStream(abc.ABC):
    """Sequential writer returned by ``create``/``append``."""

    @abc.abstractmethod
    def write(self, data: bytes) -> None:
        """Append *data* to the stream buffer."""

    @abc.abstractmethod
    def close(self) -> None:
        """Flush buffered data and seal the stream."""

    def __enter__(self) -> "WriteStream":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class ReadStream(abc.ABC):
    """Positioned reader returned by ``open``."""

    @abc.abstractmethod
    def read(self, size: int = -1) -> bytes:
        """Read up to *size* bytes from the current position (-1 = rest)."""

    @abc.abstractmethod
    def pread(self, offset: int, size: int) -> bytes:
        """Positional read without moving the stream cursor."""

    @abc.abstractmethod
    def seek(self, offset: int) -> None:
        """Move the stream cursor."""

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Total size of the file as seen by this reader."""

    def close(self) -> None:
        """Release reader resources (default: nothing)."""

    def __enter__(self) -> "ReadStream":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class FileSystem(abc.ABC):
    """The Hadoop FileSystem contract both backends implement."""

    #: Striping/chunking unit exposed to the scheduler.
    block_size: int

    @abc.abstractmethod
    def create(self, path: str, client: Optional[str] = None) -> WriteStream:
        """Create *path* for writing (parents auto-created)."""

    @abc.abstractmethod
    def open(self, path: str, client: Optional[str] = None) -> ReadStream:
        """Open *path* for reading."""

    @abc.abstractmethod
    def append(self, path: str, client: Optional[str] = None) -> WriteStream:
        """Open *path* for appending (HDFS refuses, §V-F)."""

    @abc.abstractmethod
    def status(self, path: str) -> FileStatus:
        """Metadata for *path*."""

    @abc.abstractmethod
    def list_dir(self, path: str) -> list[str]:
        """Immediate children of a directory."""

    @abc.abstractmethod
    def make_dirs(self, path: str) -> None:
        """``mkdir -p``."""

    @abc.abstractmethod
    def delete(self, path: str, recursive: bool = False) -> None:
        """Remove a file or directory."""

    @abc.abstractmethod
    def rename(self, src: str, dst: str) -> None:
        """Move a file or directory."""

    @abc.abstractmethod
    def exists(self, path: str) -> bool:
        """Existence check."""

    @abc.abstractmethod
    def block_locations(self, path: str, offset: int, size: int) -> list[RangeLocation]:
        """Data-layout exposure for affinity scheduling (§IV-C)."""

    # -- conveniences shared by all backends -----------------------------------

    def read_file(self, path: str) -> bytes:
        """Slurp a whole file."""
        with self.open(path) as stream:
            return stream.read()

    def write_file(self, path: str, data: bytes, client: Optional[str] = None) -> None:
        """Create *path* holding exactly *data*."""
        with self.create(path, client=client) as stream:
            if data:
                stream.write(data)
