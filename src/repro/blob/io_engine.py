"""Parallel I/O engine: the blob layer's scatter-gather thread pool.

BlobSeer's throughput story (paper §III-D, §V) rests on the data plane
being embarrassingly parallel: a write scatters its blocks over many
data providers *simultaneously*, a read gathers them back the same way,
and only the version manager serializes anything.  The in-process
reproduction originally ran every block transfer sequentially on the
calling thread, so concurrency experiments measured Python loop
overhead instead of the architecture.

:class:`ParallelIOEngine` is a small shared ``ThreadPoolExecutor``
wrapper fixing that:

* :meth:`map` fans a function over items with the **calling thread
  participating** in the work (the client is one of the transfer
  streams, exactly as a real BlobSeer client pushes one replica stream
  itself).  Caller participation also guarantees forward progress when
  many clients share one undersized pool.
* failures stop the fan-out early — remaining queued items are skipped,
  in-flight ones are drained — and the first error is re-raised, which
  is what the write protocol's "the whole write fails" rule needs.
* :meth:`submit` exposes plain futures for opportunistic work
  (read-ahead prefetching in the client cache).
* the read path uses :meth:`map` as a **vectored gather**: the store
  preallocates ONE buffer for the requested range and every mapped
  task ``readinto``\\ s its block's disjoint ``memoryview`` window —
  safe to fill concurrently precisely because the windows never
  overlap (DESIGN.md §11).

One engine is shared per :class:`~repro.blob.store.LocalBlobStore`, so
every layer above (BSFS streams, the MapReduce record readers) draws
from the same bounded pool instead of spawning threads ad hoc.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Iterable, Optional, Sequence, TypeVar

__all__ = ["ParallelIOEngine"]

T = TypeVar("T")
R = TypeVar("R")


class ParallelIOEngine:
    """Bounded thread pool for data-plane block transfers.

    Args:
        max_workers: pool threads shared by every concurrent operation.
            The effective parallelism of one :meth:`map` call is up to
            ``max_workers + 1`` because the caller works too.
        name: thread-name prefix (diagnostics).
    """

    def __init__(self, max_workers: int, name: str = "blob-io"):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix=name
        )
        # Marks threads that belong to this pool: a map() issued *from*
        # a pool thread (e.g. a read-ahead task fanning out a nested
        # read) must run inline — submitting helpers and blocking on
        # them from inside the pool would deadlock a saturated pool.
        self._on_pool = threading.local()
        self._closed = False

    def _marked(self, fn, *args, **kwargs):
        self._on_pool.active = True
        return fn(*args, **kwargs)

    @property
    def in_worker(self) -> bool:
        """Whether the calling thread is one of this pool's workers.

        The publish pipeline checks this before overlapping a scatter
        with metadata weaving: a pool thread that parked itself waiting
        on futures served by the same pool could deadlock a saturated
        pool, so nested writes fall back to the inline scatter.
        """
        return bool(getattr(self._on_pool, "active", False))

    # -- scatter-gather -----------------------------------------------------------

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply *fn* to every item concurrently; results in input order.

        The calling thread executes items alongside the pool.  On the
        first exception the remaining *queued* items are abandoned,
        already-running ones are awaited, and the error is re-raised —
        callers observe either every result or a prompt failure, never
        a silent partial success.
        """
        work: Sequence[T] = list(items)
        if len(work) <= 1 or self.in_worker:
            return [fn(item) for item in work]

        pending: "queue.SimpleQueue[tuple[int, T]]" = queue.SimpleQueue()
        for i, item in enumerate(work):
            pending.put((i, item))
        results: list[Optional[R]] = [None] * len(work)
        errors: list[BaseException] = []
        error_seen = threading.Event()

        def drain() -> None:
            while not error_seen.is_set():
                try:
                    i, item = pending.get_nowait()
                except queue.Empty:
                    return
                try:
                    results[i] = fn(item)
                except BaseException as exc:  # re-raised by the caller below
                    errors.append(exc)
                    error_seen.set()
                    return

        helpers = [
            self._executor.submit(self._marked, drain)
            for _ in range(min(self.max_workers, len(work) - 1))
        ]
        drain()  # the caller is one of the streams
        for helper in helpers:
            # A helper still queued behind unrelated pool work (e.g. a
            # sleeping read-ahead fetch) would be a pure no-op by now —
            # cancel it rather than stalling this call on that work.
            if not helper.cancel():
                helper.result()
        if errors:
            raise errors[0]
        return results  # type: ignore[return-value]

    def map_settle(
        self, fn: Callable[[T], R], items: Iterable[T]
    ) -> "list[tuple[Optional[R], Optional[Exception]]]":
        """Apply *fn* to EVERY item concurrently; never fail fast.

        Returns ``(result, error)`` pairs in input order, exactly one of
        which is set per item.  Replicated writes and per-bucket batch
        fetches need this shape: one dead replica must not abandon the
        requests to its peers (``map``'s first-error abort is the wrong
        policy there), yet each failure must stay attributable to its
        item so the caller can fail over or record it.  Non-``Exception``
        escapes (``KeyboardInterrupt``) still propagate via ``map``.
        """

        def settle(item: T) -> "tuple[Optional[R], Optional[Exception]]":
            try:
                return fn(item), None
            except Exception as exc:
                return None, exc

        return self.map(settle, items)

    def submit_each(
        self, fn: Callable[[T], R], items: Iterable[T]
    ) -> "list[Future[R]]":
        """Schedule *fn* over *items* as independent pool tasks.

        Unlike :meth:`map`, the caller does **not** participate and the
        call returns immediately — this is the overlap primitive of the
        publish pipeline (DESIGN.md §10): the write path launches its
        block scatter here, weaves and publishes its metadata patch on
        the calling thread meanwhile, and only then settles the
        futures.  The caller owns the futures: it must await every one
        (even after a failure) before acting on partial state, because
        a still-running transfer can change that state underneath it.
        Never call from a pool thread — use :meth:`map`, which runs
        inline there.
        """
        return [self.submit(fn, item) for item in items]

    # -- opportunistic work -------------------------------------------------------

    def submit(self, fn: Callable[..., R], *args, **kwargs) -> "Future[R]":
        """Schedule one task on the pool (read-ahead, background GC).

        A nested :meth:`map` issued from inside the task runs inline
        on the pool thread (no self-deadlock).
        """
        return self._executor.submit(self._marked, fn, *args, **kwargs)

    # -- lifecycle ----------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the pool; idempotent."""
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=True)

    def __enter__(self) -> "ParallelIOEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        state = "closed" if self._closed else "open"
        return f"ParallelIOEngine(max_workers={self.max_workers}, {state})"
