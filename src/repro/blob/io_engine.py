"""Parallel I/O engine: the blob layer's scatter-gather thread pool.

BlobSeer's throughput story (paper §III-D, §V) rests on the data plane
being embarrassingly parallel: a write scatters its blocks over many
data providers *simultaneously*, a read gathers them back the same way,
and only the version manager serializes anything.  The in-process
reproduction originally ran every block transfer sequentially on the
calling thread, so concurrency experiments measured Python loop
overhead instead of the architecture.

:class:`ParallelIOEngine` is a small shared ``ThreadPoolExecutor``
wrapper fixing that:

* :meth:`map` fans a function over items with the **calling thread
  participating** in the work (the client is one of the transfer
  streams, exactly as a real BlobSeer client pushes one replica stream
  itself).  Caller participation also guarantees forward progress when
  many clients share one undersized pool.
* failures stop the fan-out early — remaining queued items are skipped,
  in-flight ones are drained — and the first error is re-raised, which
  is what the write protocol's "the whole write fails" rule needs.
* :meth:`submit` exposes plain futures for opportunistic work
  (read-ahead prefetching in the client cache).
* the read path uses :meth:`map` as a **vectored gather**: the store
  preallocates ONE buffer for the requested range and every mapped
  task ``readinto``\\ s its block's disjoint ``memoryview`` window —
  safe to fill concurrently precisely because the windows never
  overlap (DESIGN.md §11).

One engine is shared per :class:`~repro.blob.store.LocalBlobStore`, so
every layer above (BSFS streams, the MapReduce record readers) draws
from the same bounded pool instead of spawning threads ad hoc.

This thread pool is the ``threads`` scheduler backend; the ``async``
backend (:class:`~repro.blob.async_engine.AsyncIOEngine`, DESIGN.md
§13) exposes the same ``map``/``map_settle``/``submit_each``/``submit``
surface on a single event loop.  The shared surface grew two optional
keyword parameters for that scheduler's benefit — ``afn`` (a coroutine
twin of the task callable) and ``dest`` (a per-item destination key for
per-provider/bucket concurrency caps) — which the thread backend
accepts and deliberately ignores: threads block on the simulated
service time anyway, and the bounded pool itself caps concurrency.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from typing import Callable, Iterable, Optional, Sequence, TypeVar

__all__ = ["EngineStats", "ParallelIOEngine"]

T = TypeVar("T")
R = TypeVar("R")


class EngineStats:
    """Scheduler-behavior counters shared by both engine backends.

    The observable difference between the ``threads`` and ``async``
    schedulers is *how* concurrency is paid for, and these counters are
    how tests and benchmarks verify it (ISSUE 9 acceptance):

    * ``threads_started`` — OS threads the engine ever spawned (pool
      workers, the event-loop thread, helper threads).  10k in-flight
      blocks cost ~10k coroutines and a handful of threads on the
      async backend; the thread backend pays one worker per stream.
    * ``in_flight`` / ``in_flight_hwm`` — tasks currently executing
      (holding an in-flight slot) and the high-water mark.
    * ``queue_wait_total`` / ``queue_wait_max`` — seconds tasks spent
      waiting for a slot (pool queue or semaphore) before starting.

    All methods are thread-safe; the async engine calls them from its
    loop thread, the thread engine from every worker plus the caller.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.threads_started = 0
        self._zero()

    def _zero(self) -> None:
        self.tasks_started = 0
        self.tasks_finished = 0
        self.in_flight = 0
        self.in_flight_hwm = 0
        self.queue_wait_total = 0.0
        self.queue_wait_max = 0.0

    def reset(self) -> None:
        """Zero the per-task counters.

        ``threads_started`` is deliberately kept: threads are an
        engine-lifetime cost (the ISSUE-9 acceptance criterion), not a
        per-phase one, and a reset between a benchmark's setup and its
        measured phase must not hide workers spawned during setup.
        """
        with self._lock:
            self._zero()

    def thread_started(self) -> None:
        with self._lock:
            self.threads_started += 1

    def task_started(self, queue_wait: float = 0.0) -> None:
        with self._lock:
            self.tasks_started += 1
            self.in_flight += 1
            if self.in_flight > self.in_flight_hwm:
                self.in_flight_hwm = self.in_flight
            self.queue_wait_total += queue_wait
            if queue_wait > self.queue_wait_max:
                self.queue_wait_max = queue_wait

    def task_finished(self) -> None:
        with self._lock:
            self.tasks_finished += 1
            self.in_flight -= 1

    def snapshot(self) -> dict[str, float]:
        """Point-in-time copy of every counter."""
        with self._lock:
            return {
                "threads_started": self.threads_started,
                "tasks_started": self.tasks_started,
                "tasks_finished": self.tasks_finished,
                "in_flight": self.in_flight,
                "in_flight_hwm": self.in_flight_hwm,
                "queue_wait_total": self.queue_wait_total,
                "queue_wait_max": self.queue_wait_max,
            }


class ParallelIOEngine:
    """Bounded thread pool for data-plane block transfers.

    Args:
        max_workers: pool threads shared by every concurrent operation.
            The effective parallelism of one :meth:`map` call is up to
            ``max_workers + 1`` because the caller works too.
        name: thread-name prefix (diagnostics).
    """

    #: Class marker for the scheduler backend ("threads" vs "async").
    scheduler = "threads"

    def __init__(self, max_workers: int, name: str = "blob-io"):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.stats = EngineStats()
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers,
            thread_name_prefix=name,
            initializer=self._thread_init,
        )
        # Marks threads that belong to this pool: a map() issued *from*
        # a pool thread (e.g. a read-ahead task fanning out a nested
        # read) must run inline — submitting helpers and blocking on
        # them from inside the pool would deadlock a saturated pool.
        self._on_pool = threading.local()
        self._closed = False

    def _thread_init(self) -> None:
        self._on_pool.active = True
        self.stats.thread_started()

    @property
    def in_worker(self) -> bool:
        """Whether the calling thread is one of this pool's workers.

        The publish pipeline checks this before overlapping a scatter
        with metadata weaving: a pool thread that parked itself waiting
        on futures served by the same pool could deadlock a saturated
        pool, so nested writes fall back to the inline scatter.
        """
        return bool(getattr(self._on_pool, "active", False))

    # -- scatter-gather -----------------------------------------------------------

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        afn: Optional[Callable] = None,
        dest: Optional[Callable[[T], object]] = None,
    ) -> list[R]:
        """Apply *fn* to every item concurrently; results in input order.

        The calling thread executes items alongside the pool.  On the
        first exception the remaining *queued* items are abandoned,
        already-running ones are awaited, and the error is re-raised —
        callers observe either every result or a prompt failure, never
        a silent partial success.

        ``afn``/``dest`` exist for surface parity with the async
        scheduler and are ignored here (see the module docstring).
        """
        del afn, dest  # threads backend: blocking twins, pool-bounded
        work: Sequence[T] = list(items)
        if len(work) <= 1 or self.in_worker:
            return [fn(item) for item in work]

        pending: "queue.SimpleQueue[tuple[int, T, float]]" = queue.SimpleQueue()
        now = time.perf_counter()
        for i, item in enumerate(work):
            pending.put((i, item, now))
        results: list[Optional[R]] = [None] * len(work)
        errors: list[BaseException] = []
        error_seen = threading.Event()

        def drain() -> None:
            while not error_seen.is_set():
                try:
                    i, item, enqueued = pending.get_nowait()
                except queue.Empty:
                    return
                self.stats.task_started(time.perf_counter() - enqueued)
                try:
                    results[i] = fn(item)
                except BaseException as exc:  # re-raised by the caller below
                    errors.append(exc)
                    error_seen.set()
                    return
                finally:
                    self.stats.task_finished()

        helpers = [
            self._executor.submit(drain)
            for _ in range(min(self.max_workers, len(work) - 1))
        ]
        drain()  # the caller is one of the streams
        for helper in helpers:
            # A helper still queued behind unrelated pool work (e.g. a
            # sleeping read-ahead fetch) would be a pure no-op by now —
            # cancel it rather than stalling this call on that work.
            if not helper.cancel():
                helper.result()
        if errors:
            raise errors[0]
        return results  # type: ignore[return-value]

    def map_settle(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        afn: Optional[Callable] = None,
        dest: Optional[Callable[[T], object]] = None,
    ) -> "list[tuple[Optional[R], Optional[Exception]]]":
        """Apply *fn* to EVERY item concurrently; never fail fast.

        Returns ``(result, error)`` pairs in input order, exactly one of
        which is set per item.  Replicated writes and per-bucket batch
        fetches need this shape: one dead replica must not abandon the
        requests to its peers (``map``'s first-error abort is the wrong
        policy there), yet each failure must stay attributable to its
        item so the caller can fail over or record it.  Non-``Exception``
        escapes (``KeyboardInterrupt``) still propagate via ``map``.
        """
        del afn, dest  # surface parity with the async scheduler

        def settle(item: T) -> "tuple[Optional[R], Optional[Exception]]":
            try:
                return fn(item), None
            except Exception as exc:
                return None, exc

        return self.map(settle, items)

    def submit_each(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        afn: Optional[Callable] = None,
        dest: Optional[Callable[[T], object]] = None,
    ) -> "list[Future[R]]":
        """Schedule *fn* over *items* as independent pool tasks.

        Unlike :meth:`map`, the caller does **not** participate and the
        call returns immediately — this is the overlap primitive of the
        publish pipeline (DESIGN.md §10): the write path launches its
        block scatter here, weaves and publishes its metadata patch on
        the calling thread meanwhile, and only then settles the
        futures.  The caller owns the futures: it must await every one
        (even after a failure) before acting on partial state, because
        a still-running transfer can change that state underneath it.
        Never call from a pool thread — use :meth:`map`, which runs
        inline there.

        First-error cancellation: once any task fails, the queued-but-
        unstarted siblings are cancelled instead of run to completion —
        "the whole write fails" (§III-D) means no point paying for the
        rest of a doomed scatter.  Already-running transfers drain
        (their effects must be observable before rollback).  Cancelled
        futures raise :class:`concurrent.futures.CancelledError` when
        settled; the caller's error reporting should prefer the real
        failure over the cancellations it caused.
        """
        del afn, dest  # surface parity with the async scheduler
        futures: "list[Future[R]]" = []
        error_seen = threading.Event()

        def guarded(item: T) -> R:
            if error_seen.is_set():
                raise CancelledError("abandoned: a sibling task failed")
            try:
                return fn(item)
            except BaseException:
                error_seen.set()
                for future in futures:
                    future.cancel()  # no-op for running/done siblings
                raise

        for item in items:
            futures.append(self.submit(guarded, item))
        return futures

    # -- opportunistic work -------------------------------------------------------

    def submit(self, fn: Callable[..., R], *args, **kwargs) -> "Future[R]":
        """Schedule one task on the pool (read-ahead, background GC).

        A nested :meth:`map` issued from inside the task runs inline
        on the pool thread (no self-deadlock).
        """
        submitted = time.perf_counter()

        def run() -> R:
            self.stats.task_started(time.perf_counter() - submitted)
            try:
                return fn(*args, **kwargs)
            finally:
                self.stats.task_finished()

        return self._executor.submit(run)

    # -- lifecycle ----------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the pool; idempotent."""
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=True)

    def __enter__(self) -> "ParallelIOEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        state = "closed" if self._closed else "open"
        return f"ParallelIOEngine(max_workers={self.max_workers}, {state})"
