"""Async I/O engine: 10k in-flight blocks on coroutines, not threads.

:class:`~repro.blob.io_engine.ParallelIOEngine` pays one OS thread per
in-flight block transfer, so ``io_workers`` caps true concurrency long
before the (simulated) hardware does.  The paper's headline result —
sustained throughput under *heavy concurrency* (§V: hundreds of
clients, many blocks in flight each) — wants the opposite scaling law:
block I/O limited by link bandwidth and provider latency, never by
client-side scheduling overhead (see also the versioning follow-up
paper, arXiv 0905.1113).

:class:`AsyncIOEngine` is the ``async`` scheduler backend (DESIGN.md
§13): ONE event loop on ONE background thread runs every block
transfer as a coroutine.  The in-flight window is bounded by a
semaphore (``max_in_flight``), a second per-destination semaphore
family caps concurrency against any single provider or metadata bucket
(``per_dest``), and the first error cancels every sibling coroutine at
its next await point.  10 000 in-flight blocks cost ~10 000 coroutine
frames and a handful of threads.

The engine exposes the same surface as ``ParallelIOEngine`` —
``map`` / ``map_settle`` / ``submit_each`` / ``submit`` /
``in_worker`` / ``shutdown`` — so the store's scatter, vectored
gather, scrub sweep, and publish-pipeline overlap run on either
backend unchanged.  Call sites that want true coroutine concurrency
pass ``afn=`` (an async twin of the task callable, e.g. awaiting
``DataProviderCore.aput`` instead of blocking in ``put``); a call site
that passes only a sync ``fn`` still works, it just serializes on the
loop thread whenever ``fn`` blocks.

Boundary rules (enforced by ``tools/lint_async.py``; DESIGN.md §13
spells out the why):

* Only the loop thread runs coroutines.  Sync callers enter via
  ``asyncio.run_coroutine_threadsafe`` and block on a
  ``concurrent.futures.Future``.
* Coroutine code must never block the loop: no ``time.sleep``, no sync
  provider/DHT entry points (their simulated latency is a blocking
  sleep), no ``Future.result()``.
* A fan-out issued *from* the loop thread (a nested read inside an
  engine task) runs the sync ``fn`` inline: the loop is already busy
  executing the caller, so awaiting from there is impossible and
  submitting to itself would deadlock.
"""

from __future__ import annotations

import asyncio
import inspect
import threading
import time
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from typing import Callable, Iterable, Optional, Sequence, TypeVar

from repro.blob.io_engine import EngineStats

__all__ = ["AsyncIOEngine"]

T = TypeVar("T")
R = TypeVar("R")


class _NullSlot:
    """Async no-op context manager for items without a destination cap."""

    async def __aenter__(self) -> None:
        return None

    async def __aexit__(self, *exc) -> None:
        return None


_NULL_SLOT = _NullSlot()


class AsyncIOEngine:
    """Single-event-loop scheduler for data-plane block transfers.

    Args:
        max_in_flight: size of the global in-flight window — how many
            transfer coroutines may hold a slot simultaneously.  This
            is the async analogue of ``io_workers``, except a slot is
            a semaphore token (~a coroutine frame), not an OS thread.
        per_dest: cap on concurrent transfers against any single
            destination (provider / bucket), applied when the call
            site passes a ``dest`` key function.  ``0`` disables the
            per-destination cap.  Real providers serve a bounded
            number of streams well; aiming the whole window at one hot
            provider just builds a convoy there while the other
            destinations idle.
        helpers: worker threads for :meth:`submit` — opportunistic
            sync tasks (read-ahead) that must not block the loop.
        name: thread-name prefix (diagnostics).
    """

    #: Class marker for the scheduler backend ("threads" vs "async").
    scheduler = "async"

    def __init__(
        self,
        max_in_flight: int = 1024,
        per_dest: int = 0,
        helpers: int = 2,
        name: str = "blob-aio",
    ):
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        if per_dest < 0:
            raise ValueError(f"per_dest must be >= 0, got {per_dest}")
        self.max_in_flight = max_in_flight
        self.per_dest = per_dest
        self.name = name
        self.stats = EngineStats()
        self._helper_count = max(1, helpers)
        self._helpers: Optional[ThreadPoolExecutor] = None
        self._helpers_lock = threading.Lock()
        self._closed = False
        self._loop = asyncio.new_event_loop()
        # asyncio.Semaphore binds to the running loop lazily on first
        # await, so creating these here (off-loop) is safe.
        self._sem = asyncio.Semaphore(max_in_flight)
        # Per-destination semaphores, created on demand.  Only the loop
        # thread ever touches this dict, so no lock is needed.
        self._dest_sems: dict[object, asyncio.Semaphore] = {}
        started = threading.Event()

        def run_loop() -> None:
            asyncio.set_event_loop(self._loop)
            self.stats.thread_started()
            started.set()
            while True:
                try:
                    self._loop.run_forever()
                except (KeyboardInterrupt, SystemExit):
                    # A task let a base escape through: asyncio.Task
                    # sets it on the task's future *and* re-raises it
                    # into the loop.  The caller blocked on that future
                    # only hears about it from a done-callback the loop
                    # has yet to run — so the loop must keep serving,
                    # not die with the callback stranded in its queue.
                    if not self._closed:
                        continue
                break

        self._thread = threading.Thread(
            target=run_loop, name=f"{name}-loop", daemon=True
        )
        self._thread.start()
        started.wait()

    # -- loop-thread plumbing -----------------------------------------------------

    def _on_loop_thread(self) -> bool:
        return threading.get_ident() == self._thread.ident

    @property
    def in_worker(self) -> bool:
        """Whether the calling thread is the engine's event-loop thread.

        Same contract as the thread backend's ``in_worker``: the
        publish pipeline must not park an engine worker waiting on
        work served by that same worker.  For this engine the "worker"
        is the loop thread itself.
        """
        return self._on_loop_thread()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"AsyncIOEngine({self.name!r}) is shut down")

    def _dest_slot(self, key: object):
        if key is None or self.per_dest <= 0:
            return _NULL_SLOT
        sem = self._dest_sems.get(key)
        if sem is None:
            sem = self._dest_sems[key] = asyncio.Semaphore(self.per_dest)
        return sem

    # -- the core fan-out ---------------------------------------------------------

    async def _run_one(
        self,
        fn: Callable[[T], R],
        afn: Optional[Callable],
        item: T,
        dest_key: object,
    ) -> R:
        """Run one transfer inside the in-flight + destination windows.

        ``afn`` (when given) is the coroutine twin and takes priority;
        a plain ``fn`` result that happens to be awaitable is awaited
        too, so call sites may pass one ``def`` returning a coroutine.
        Cancellation lands at the ``await`` points — the semaphore
        gates and the transfer's own latency sleep — never midway
        through sync bookkeeping.
        """
        enqueued = time.perf_counter()
        async with self._sem:
            async with self._dest_slot(dest_key):
                self.stats.task_started(time.perf_counter() - enqueued)
                try:
                    out = (afn or fn)(item)
                    if inspect.isawaitable(out):
                        out = await out
                    return out
                finally:
                    self.stats.task_finished()

    async def _fan_out(
        self,
        fn: Callable[[T], R],
        afn: Optional[Callable],
        work: Sequence[T],
        dest: Optional[Callable[[T], object]],
        fail_fast: bool,
    ):
        """Run every item as a task; gather per-item outcomes.

        ``fail_fast=True`` (the ``map`` contract): the first failure
        cancels every sibling task and is re-raised; cancelled items
        never ran or stopped at an await point before any effect the
        caller could observe torn.  ``fail_fast=False`` (the
        ``map_settle`` contract): every item runs to an outcome and the
        result is ``(value, error)`` pairs — except non-``Exception``
        escapes (``KeyboardInterrupt``), which cancel the rest and
        propagate, matching the thread backend.
        """
        pairs: "list[tuple[Optional[R], Optional[BaseException]]]"
        pairs = [(None, None)] * len(work)
        first: "list[BaseException]" = []
        tasks: "list[asyncio.Task]" = []

        def abort(exc: BaseException) -> None:
            if not first:
                first.append(exc)
                for task in tasks:
                    task.cancel()

        async def run_indexed(index: int, item: T) -> None:
            try:
                dest_key = dest(item) if dest is not None else None
                out = await self._run_one(fn, afn, item, dest_key)
                pairs[index] = (out, None)
            except asyncio.CancelledError:
                # A sibling failed first; report this item as abandoned
                # (concurrent.futures flavor: an Exception subclass, so
                # map_settle callers can treat it like any other error).
                pairs[index] = (
                    None,
                    CancelledError("abandoned: a sibling task failed"),
                )
            except Exception as exc:
                pairs[index] = (None, exc)
                if fail_fast:
                    abort(exc)
            except BaseException as exc:
                pairs[index] = (None, exc)
                abort(exc)

        for index, item in enumerate(work):
            tasks.append(self._loop.create_task(run_indexed(index, item)))
        await asyncio.gather(*tasks, return_exceptions=True)
        if first:
            raise first[0]
        if fail_fast:
            for _, error in pairs:
                if error is not None:
                    raise error
            return [value for value, _ in pairs]
        return pairs

    def _dispatch(self, coro) -> object:
        """Run *coro* on the loop from a foreign thread; block for it."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    # -- scatter-gather (ParallelIOEngine surface) --------------------------------

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        afn: Optional[Callable] = None,
        dest: Optional[Callable[[T], object]] = None,
    ) -> list[R]:
        """Apply *fn*/*afn* to every item concurrently; results in order.

        First error cancels the remaining coroutines and re-raises.
        From the loop thread itself (a nested fan-out inside an engine
        task) the sync ``fn`` runs inline — see the module docstring.
        """
        self._check_open()
        work: Sequence[T] = list(items)
        if self._on_loop_thread():
            return [fn(item) for item in work]
        if not work:
            return []
        return self._dispatch(self._fan_out(fn, afn, work, dest, fail_fast=True))

    def map_settle(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        afn: Optional[Callable] = None,
        dest: Optional[Callable[[T], object]] = None,
    ) -> "list[tuple[Optional[R], Optional[Exception]]]":
        """Apply *fn*/*afn* to EVERY item; ``(result, error)`` pairs.

        Never fails fast on ``Exception``: one dead replica must not
        abandon its siblings' requests.  Items cancelled by a
        non-``Exception`` escape settle as
        :class:`concurrent.futures.CancelledError`.
        """
        self._check_open()
        work: Sequence[T] = list(items)
        if self._on_loop_thread():
            out: "list[tuple[Optional[R], Optional[Exception]]]" = []
            for item in work:
                try:
                    out.append((fn(item), None))
                except Exception as exc:
                    out.append((None, exc))
            return out
        if not work:
            return []
        return self._dispatch(self._fan_out(fn, afn, work, dest, fail_fast=False))

    def submit_each(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        afn: Optional[Callable] = None,
        dest: Optional[Callable[[T], object]] = None,
    ) -> "list[Future[R]]":
        """Schedule *fn*/*afn* over *items*; return immediately.

        The publish-pipeline overlap primitive: one concurrent Future
        per item, the caller settles them after weaving metadata on
        its own thread.  First error cancels queued-but-unstarted
        siblings (they settle as ``CancelledError``); already-running
        transfers drain so their effects are observable before
        rollback.  Cancelling a returned future cancels its coroutine.
        """
        self._check_open()
        if self._on_loop_thread():
            raise RuntimeError(
                "submit_each from the event-loop thread would overlap the loop "
                "with itself; use map(), which runs inline there"
            )
        work: Sequence[T] = list(items)
        error_seen = threading.Event()
        futures: "list[Future[R]]" = []

        async def run_guarded(index: int, item: T) -> R:
            if error_seen.is_set():
                raise CancelledError("abandoned: a sibling task failed")
            try:
                dest_key = dest(item) if dest is not None else None
                return await self._run_one(fn, afn, item, dest_key)
            except asyncio.CancelledError:
                raise
            except BaseException:
                if not error_seen.is_set():
                    error_seen.set()
                    # Cancel siblings only: cancelling our OWN future
                    # here would mask this (the first, real) error as a
                    # CancelledError.  Siblings not yet in the list see
                    # error_seen when they start.
                    for j, future in enumerate(futures):
                        if j != index:
                            future.cancel()  # no-op for done siblings
                raise

        for index, item in enumerate(work):
            futures.append(
                asyncio.run_coroutine_threadsafe(
                    run_guarded(index, item), self._loop
                )
            )
        return futures

    # -- opportunistic work -------------------------------------------------------

    def submit(self, fn: Callable[..., R], *args, **kwargs) -> "Future[R]":
        """Schedule one sync task on a small helper thread pool.

        Read-ahead and background GC submit blocking functions; running
        them on the loop would stall every transfer, so a couple of
        helper threads absorb them.  A helper that issues a nested
        :meth:`map` blocks on the loop — which keeps progressing, so
        that is safe (unlike nested maps inside a bounded thread pool).
        """
        self._check_open()
        with self._helpers_lock:
            if self._helpers is None:
                self._helpers = ThreadPoolExecutor(
                    max_workers=self._helper_count,
                    thread_name_prefix=f"{self.name}-helper",
                    initializer=self.stats.thread_started,
                )
            helpers = self._helpers
        submitted = time.perf_counter()

        def run() -> R:
            self.stats.task_started(time.perf_counter() - submitted)
            try:
                return fn(*args, **kwargs)
            finally:
                self.stats.task_finished()

        return helpers.submit(run)

    # -- lifecycle ----------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the loop and helper threads; idempotent.

        Pending coroutines are cancelled, the loop drains them, and the
        loop closes.  Safe to call from any thread except the loop's.
        """
        if self._closed:
            return
        self._closed = True
        if self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        if not self._thread.is_alive():
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self._loop.close()
        with self._helpers_lock:
            helpers, self._helpers = self._helpers, None
        if helpers is not None:
            helpers.shutdown(wait=True)

    def __enter__(self) -> "AsyncIOEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        state = "closed" if self._closed else "open"
        return (
            f"AsyncIOEngine(max_in_flight={self.max_in_flight}, "
            f"per_dest={self.per_dest}, {state})"
        )
