"""Blocks: the unit of striping, and the payloads they carry.

BlobSeer stripes every BLOB into fixed-size blocks scattered over data
providers (64 MB in the paper's evaluation).  The reproduction runs the
same protocol code in two modes:

* **real payloads** (:class:`BytesPayload`) — actual bytes, used by the
  functional layer, the examples and the correctness tests;
* **synthetic payloads** (:class:`SyntheticPayload`) — a size plus an
  identity tag, used by the discrete-event experiments where a 16 GB
  file must *cost* 16 GB of simulated transfer without occupying RAM.

Both honour the same interface, so providers, caches and clients never
branch on the mode.

**Zero-copy discipline (DESIGN.md §11).**  A :class:`BytesPayload`
wraps *any* buffer-protocol object — ``bytes``, ``bytearray`` or
``memoryview`` — and :meth:`BytesPayload.slice` returns a zero-copy
*view* of the same buffer.  Data therefore flows through the block path
(chunking → scatter → provider → gather → reassembly) without being
re-materialized at every hop; the only sanctioned copies are

* **copy-on-publish** (:meth:`BytesPayload.freeze`): a provider storing
  a view over a *mutable* caller buffer snapshots it once, so published
  blocks can never change underneath readers;
* **the gather** (:meth:`BytesPayload.readinto`): a read assembles the
  requested range into one preallocated buffer, each block copied
  exactly once;
* **the user-facing result** (:func:`materialize`): the final
  ``bytes()`` handed back to the caller.

:class:`CopyStats` counts those copies (and the bytes that legitimately
crossed a provider boundary) per layer, which is how the tests pin the
"one read of N bytes materializes ≤ 1×N client-side" invariant.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "BytesPayload",
    "SyntheticPayload",
    "Payload",
    "BlockDescriptor",
    "ZeroBlockDescriptor",
    "AnyBlockDescriptor",
    "BlockId",
    "CopyStats",
    "concat",
    "materialize",
]

#: Buffer-protocol objects a :class:`BytesPayload` may wrap.
BytesLike = Union[bytes, bytearray, memoryview]


class CopyStats:
    """Byte-movement counters for the data plane (thread-safe).

    The data-plane sibling of :class:`~repro.dht.store.DhtStats` and
    :class:`~repro.blob.store.VmanStats`: where those count round
    trips, this counts *bytes* — separating the bytes a protocol step
    legitimately moved from the bytes it needlessly re-materialized.

    * ``bytes_copied`` — client-side materializations: every byte
      duplicated into a new buffer (the gather into a read's result
      buffer, a provider's copy-on-publish freeze, any legacy slice
      copy).  The zero-copy refactor's target: a read of N bytes keeps
      this ≤ N (one gather), where the pre-refactor path paid ~3–4×.
    * ``bytes_transferred`` — bytes that crossed a provider boundary
      (block put/get traffic); unavoidable, and unchanged by the
      refactor — the counter pair proves copies dropped while transfers
      stayed constant.
    * ``bytes_result`` — bytes materialized as the user-facing return
      value (the final ``bytes()`` a caller asked for; not a waste,
      tracked separately so ``bytes_copied`` measures pure overhead).

    Every record names the layer it happened at (``"read.gather"``,
    ``"provider.freeze"``, …); :meth:`layers` exposes the per-layer
    breakdown the ``repro.cli zerocopy`` demo prints.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._layers: dict[str, dict[str, int]] = {}
        self.bytes_copied = 0
        self.bytes_transferred = 0
        self.bytes_result = 0

    def record(
        self,
        layer: str,
        copied: int = 0,
        transferred: int = 0,
        result: int = 0,
    ) -> None:
        """Count *copied*/*transferred*/*result* bytes against *layer*."""
        with self._lock:
            self.bytes_copied += copied
            self.bytes_transferred += transferred
            self.bytes_result += result
            per = self._layers.setdefault(
                layer, {"copied": 0, "transferred": 0, "result": 0}
            )
            per["copied"] += copied
            per["transferred"] += transferred
            per["result"] += result

    def snapshot(self) -> dict[str, int]:
        """Point-in-time copy of the totals."""
        with self._lock:
            return {
                "bytes_copied": self.bytes_copied,
                "bytes_transferred": self.bytes_transferred,
                "bytes_result": self.bytes_result,
            }

    def layers(self) -> dict[str, dict[str, int]]:
        """Per-layer breakdown (layer name -> copied/transferred/result)."""
        with self._lock:
            return {name: dict(counts) for name, counts in sorted(self._layers.items())}

    def reset(self) -> None:
        with self._lock:
            self._layers.clear()
            self.bytes_copied = 0
            self.bytes_transferred = 0
            self.bytes_result = 0


@dataclass(frozen=True)
class BytesPayload:
    """A payload backed by real bytes — any buffer-protocol object.

    ``data`` may be ``bytes``, ``bytearray`` or a ``memoryview``;
    :meth:`slice` returns a zero-copy view either way.  Ownership rules
    (DESIGN.md §11): a payload over a *read-only* buffer is safe to
    alias forever (published blocks are immutable); a payload over a
    caller's *mutable* buffer is a transient view that a provider must
    :meth:`freeze` before storing.
    """

    data: BytesLike

    def __post_init__(self) -> None:
        try:
            view = memoryview(self.data)
        except TypeError:
            raise TypeError(
                f"payload data must support the buffer protocol, "
                f"got {type(self.data).__name__}"
            ) from None
        if view.itemsize != 1 or not view.contiguous:
            raise TypeError("payload buffers must be contiguous byte buffers")

    @property
    def size(self) -> int:
        """Number of bytes carried."""
        return len(self.data)

    @property
    def is_real(self) -> bool:
        """True: contents are materialised."""
        return True

    @property
    def readonly(self) -> bool:
        """Whether the backing buffer is immutable (safe to alias)."""
        return memoryview(self.data).readonly

    def slice(self, start: int, length: int) -> "BytesPayload":
        """Zero-copy sub-view ``[start, start+length)`` (bounds-checked)."""
        if start < 0 or length < 0 or start + length > len(self.data):
            raise ValueError(
                f"slice [{start}, {start + length}) outside payload of {len(self.data)}B"
            )
        return BytesPayload(memoryview(self.data)[start : start + length])

    def view(self) -> memoryview:
        """A zero-copy view of the whole payload.

        Legal to hand out freely for *published* (frozen) payloads —
        block immutability is exactly what makes aliased read-only views
        safe (DESIGN.md §11).
        """
        return memoryview(self.data)

    def readinto(self, dest, start: int = 0, length: Optional[int] = None) -> int:
        """Copy ``[start, start+length)`` into *dest*; returns bytes written.

        The vectored-gather primitive: *dest* is a writable buffer
        (typically a ``memoryview`` window of a read's single
        preallocated result buffer), and this is the ONE copy a block's
        bytes make on the read path.
        """
        if length is None:
            length = len(self.data) - start
        if start < 0 or length < 0 or start + length > len(self.data):
            raise ValueError(
                f"readinto [{start}, {start + length}) outside payload "
                f"of {len(self.data)}B"
            )
        window = memoryview(dest)
        if window.readonly:
            raise TypeError("readinto needs a writable destination buffer")
        if len(window) < length:
            raise ValueError(
                f"destination holds {len(window)}B, needed {length}B"
            )
        window[:length] = memoryview(self.data)[start : start + length]
        return length

    def freeze(self) -> "BytesPayload":
        """An immutable-backed payload with the same contents.

        Returns ``self`` (no copy) when the backing buffer is already
        read-only; otherwise snapshots the view into fresh ``bytes`` —
        the copy-on-publish providers perform so a stored block can
        never alias a caller's mutable buffer (DESIGN.md §11).
        """
        view = memoryview(self.data)
        if view.readonly:
            return self
        return BytesPayload(view.tobytes())

    def tobytes(self) -> bytes:
        """The raw bytes (no copy when already immutable ``bytes``)."""
        if type(self.data) is bytes:
            return self.data
        return bytes(self.data)


@dataclass(frozen=True)
class SyntheticPayload:
    """A payload that only remembers how large it is (and whose it is).

    ``tag`` preserves identity (e.g. ``(blob_id, version, index)``) so
    correctness checks on the simulated path can at least verify that
    the *right* block came back, if not its bytes.
    """

    nbytes: int
    tag: object = None

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"payload size must be >= 0, got {self.nbytes}")

    @property
    def size(self) -> int:
        """Number of simulated bytes."""
        return self.nbytes

    @property
    def is_real(self) -> bool:
        """False: contents are not materialised."""
        return False

    @property
    def readonly(self) -> bool:
        """Synthetic payloads have nothing to mutate."""
        return True

    def slice(self, start: int, length: int) -> "SyntheticPayload":
        """Sub-payload of the same tag with the sliced size."""
        if start < 0 or length < 0 or start + length > self.nbytes:
            raise ValueError(
                f"slice [{start}, {start + length}) outside payload of {self.nbytes}B"
            )
        return SyntheticPayload(length, tag=self.tag)

    def view(self) -> memoryview:
        """Refused: synthetic payloads have no contents by construction."""
        raise TypeError("synthetic payloads carry no bytes (simulation-only data)")

    def readinto(self, dest, start: int = 0, length: Optional[int] = None) -> int:
        """Refused: synthetic payloads have no contents by construction."""
        raise TypeError("synthetic payloads carry no bytes (simulation-only data)")

    def freeze(self) -> "SyntheticPayload":
        """Already immutable (there is nothing to copy)."""
        return self

    def tobytes(self) -> bytes:
        """Refused: synthetic payloads have no contents by construction."""
        raise TypeError("synthetic payloads carry no bytes (simulation-only data)")


Payload = Union[BytesPayload, SyntheticPayload]


def concat(parts: list[Payload]) -> Payload:
    """Join payload parts: real bytes if all parts are real, else synthetic.

    The real case gathers every part into ONE preallocated buffer via
    :meth:`BytesPayload.readinto` (each byte copied exactly once) —
    no intermediate per-part materialization, no join copy.  Mixed
    concatenation degrades to synthetic (size-only) — mixing only
    happens in simulated experiments, never on the functional path.
    """
    if all(p.is_real for p in parts):
        if not parts:
            return BytesPayload(b"")
        buffer = bytearray(sum(p.size for p in parts))
        position = 0
        for part in parts:
            part.readinto(memoryview(buffer)[position : position + part.size])
            position += part.size
        return BytesPayload(buffer)
    return SyntheticPayload(sum(p.size for p in parts), tag="concat")


def materialize(
    payload: Payload,
    stats: Optional[CopyStats] = None,
    layer: str = "result",
) -> bytes:
    """The sanctioned user-facing ``bytes()`` of a payload.

    The ONLY place the blob layer converts an assembled payload into
    caller-owned ``bytes`` (the hot-path lint forbids raw ``tobytes``
    calls there); records the materialization against *stats* so
    ``bytes_copied`` keeps measuring pure overhead.
    """
    data = payload.tobytes()
    if stats is not None:
        stats.record(layer, result=len(data))
    return data


#: Storage identity of one block: (blob_id, write nonce, position in write).
#: The nonce — not the version — keys provider storage, because BlobSeer
#: publishes data blocks *before* the version manager assigns a version
#: (first phase of the two-phase write protocol, paper §III-A.4).
BlockId = tuple[str, int, int]


@dataclass(frozen=True)
class BlockDescriptor:
    """Where one block of one snapshot lives.

    Attributes:
        blob_id: owning BLOB.
        version: snapshot that *wrote* this block (blocks are immutable;
            later snapshots reference them through metadata sharing).
        index: absolute block index within the BLOB (known only once the
            version manager fixes the write offset — appends!).
        size: actual bytes stored (< block_size only for a trailing
            partial block).
        providers: data providers holding replicas, primary first.
        nonce: unique id of the write operation that produced the block.
        seq: position of this block within its write (0-based).
    """

    blob_id: str
    version: int
    index: int
    size: int
    providers: tuple[str, ...]
    nonce: int
    seq: int

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ValueError(f"blocks are written by versions >= 1, got {self.version}")
        if self.index < 0:
            raise ValueError(f"block index must be >= 0, got {self.index}")
        if self.size <= 0:
            raise ValueError(f"block size must be positive, got {self.size}")
        if not self.providers:
            raise ValueError("a block needs at least one provider")
        if self.seq < 0:
            raise ValueError(f"seq must be >= 0, got {self.seq}")

    @property
    def block_id(self) -> BlockId:
        """Storage key for provider lookups (version-independent)."""
        return (self.blob_id, self.nonce, self.seq)

    @property
    def is_zero(self) -> bool:
        """False: this block is physically stored on its providers."""
        return False


@dataclass(frozen=True)
class ZeroBlockDescriptor:
    """A block of zeros materialised by a tombstoned (aborted) version.

    When a writer dies after version assignment, its version is
    converted into a tombstone (see DESIGN.md §7): ranges the dead
    write would have *created* are defined to read as zeros.  No
    provider stores such a block — readers synthesise the zeros
    locally — so the descriptor carries no nonce, no replica set and
    no storage identity.
    """

    blob_id: str
    version: int
    index: int
    size: int
    #: Kept for interface parity with :class:`BlockDescriptor`
    #: (layout queries report "no provider holds this range").
    providers: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ValueError(f"blocks are written by versions >= 1, got {self.version}")
        if self.index < 0:
            raise ValueError(f"block index must be >= 0, got {self.index}")
        if self.size <= 0:
            raise ValueError(f"block size must be positive, got {self.size}")
        if self.providers:
            raise ValueError("zero blocks are synthesised by readers, never stored")

    @property
    def block_id(self) -> None:
        """Zero blocks have no storage identity (nothing to fetch or GC)."""
        return None

    @property
    def is_zero(self) -> bool:
        """True: readers materialise this block as zeros, no fetch."""
        return True


#: Either descriptor flavour; discriminate with ``descriptor.is_zero``.
AnyBlockDescriptor = Union[BlockDescriptor, ZeroBlockDescriptor]
