"""Blocks: the unit of striping, and the payloads they carry.

BlobSeer stripes every BLOB into fixed-size blocks scattered over data
providers (64 MB in the paper's evaluation).  The reproduction runs the
same protocol code in two modes:

* **real payloads** (:class:`BytesPayload`) — actual bytes, used by the
  functional layer, the examples and the correctness tests;
* **synthetic payloads** (:class:`SyntheticPayload`) — a size plus an
  identity tag, used by the discrete-event experiments where a 16 GB
  file must *cost* 16 GB of simulated transfer without occupying RAM.

Both honour the same interface, so providers, caches and clients never
branch on the mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = [
    "BytesPayload",
    "SyntheticPayload",
    "Payload",
    "BlockDescriptor",
    "ZeroBlockDescriptor",
    "AnyBlockDescriptor",
    "BlockId",
    "concat",
]


@dataclass(frozen=True)
class BytesPayload:
    """A payload backed by real bytes."""

    data: bytes

    @property
    def size(self) -> int:
        """Number of bytes carried."""
        return len(self.data)

    @property
    def is_real(self) -> bool:
        """True: contents are materialised."""
        return True

    def slice(self, start: int, length: int) -> "BytesPayload":
        """Sub-payload ``[start, start+length)`` (bounds-checked)."""
        if start < 0 or length < 0 or start + length > len(self.data):
            raise ValueError(
                f"slice [{start}, {start + length}) outside payload of {len(self.data)}B"
            )
        return BytesPayload(self.data[start : start + length])

    def tobytes(self) -> bytes:
        """The raw bytes."""
        return self.data


@dataclass(frozen=True)
class SyntheticPayload:
    """A payload that only remembers how large it is (and whose it is).

    ``tag`` preserves identity (e.g. ``(blob_id, version, index)``) so
    correctness checks on the simulated path can at least verify that
    the *right* block came back, if not its bytes.
    """

    nbytes: int
    tag: object = None

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"payload size must be >= 0, got {self.nbytes}")

    @property
    def size(self) -> int:
        """Number of simulated bytes."""
        return self.nbytes

    @property
    def is_real(self) -> bool:
        """False: contents are not materialised."""
        return False

    def slice(self, start: int, length: int) -> "SyntheticPayload":
        """Sub-payload of the same tag with the sliced size."""
        if start < 0 or length < 0 or start + length > self.nbytes:
            raise ValueError(
                f"slice [{start}, {start + length}) outside payload of {self.nbytes}B"
            )
        return SyntheticPayload(length, tag=self.tag)

    def tobytes(self) -> bytes:
        """Refused: synthetic payloads have no contents by construction."""
        raise TypeError("synthetic payloads carry no bytes (simulation-only data)")


Payload = Union[BytesPayload, SyntheticPayload]


def concat(parts: list[Payload]) -> Payload:
    """Join payload parts: real bytes if all parts are real, else synthetic.

    Mixed concatenation degrades to synthetic (size-only) — mixing only
    happens in simulated experiments, never on the functional path.
    """
    if all(p.is_real for p in parts):
        return BytesPayload(b"".join(p.tobytes() for p in parts))
    return SyntheticPayload(sum(p.size for p in parts), tag="concat")


#: Storage identity of one block: (blob_id, write nonce, position in write).
#: The nonce — not the version — keys provider storage, because BlobSeer
#: publishes data blocks *before* the version manager assigns a version
#: (first phase of the two-phase write protocol, paper §III-A.4).
BlockId = tuple[str, int, int]


@dataclass(frozen=True)
class BlockDescriptor:
    """Where one block of one snapshot lives.

    Attributes:
        blob_id: owning BLOB.
        version: snapshot that *wrote* this block (blocks are immutable;
            later snapshots reference them through metadata sharing).
        index: absolute block index within the BLOB (known only once the
            version manager fixes the write offset — appends!).
        size: actual bytes stored (< block_size only for a trailing
            partial block).
        providers: data providers holding replicas, primary first.
        nonce: unique id of the write operation that produced the block.
        seq: position of this block within its write (0-based).
    """

    blob_id: str
    version: int
    index: int
    size: int
    providers: tuple[str, ...]
    nonce: int
    seq: int

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ValueError(f"blocks are written by versions >= 1, got {self.version}")
        if self.index < 0:
            raise ValueError(f"block index must be >= 0, got {self.index}")
        if self.size <= 0:
            raise ValueError(f"block size must be positive, got {self.size}")
        if not self.providers:
            raise ValueError("a block needs at least one provider")
        if self.seq < 0:
            raise ValueError(f"seq must be >= 0, got {self.seq}")

    @property
    def block_id(self) -> BlockId:
        """Storage key for provider lookups (version-independent)."""
        return (self.blob_id, self.nonce, self.seq)

    @property
    def is_zero(self) -> bool:
        """False: this block is physically stored on its providers."""
        return False


@dataclass(frozen=True)
class ZeroBlockDescriptor:
    """A block of zeros materialised by a tombstoned (aborted) version.

    When a writer dies after version assignment, its version is
    converted into a tombstone (see DESIGN.md §7): ranges the dead
    write would have *created* are defined to read as zeros.  No
    provider stores such a block — readers synthesise the zeros
    locally — so the descriptor carries no nonce, no replica set and
    no storage identity.
    """

    blob_id: str
    version: int
    index: int
    size: int
    #: Kept for interface parity with :class:`BlockDescriptor`
    #: (layout queries report "no provider holds this range").
    providers: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ValueError(f"blocks are written by versions >= 1, got {self.version}")
        if self.index < 0:
            raise ValueError(f"block index must be >= 0, got {self.index}")
        if self.size <= 0:
            raise ValueError(f"block size must be positive, got {self.size}")
        if self.providers:
            raise ValueError("zero blocks are synthesised by readers, never stored")

    @property
    def block_id(self) -> None:
        """Zero blocks have no storage identity (nothing to fetch or GC)."""
        return None

    @property
    def is_zero(self) -> bool:
        """True: readers materialise this block as zeros, no fetch."""
        return True


#: Either descriptor flavour; discriminate with ``descriptor.is_zero``.
AnyBlockDescriptor = Union[BlockDescriptor, ZeroBlockDescriptor]
