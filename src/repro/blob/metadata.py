"""Metadata service: segment-tree nodes stored in the DHT.

"To favor efficient concurrent access to metadata, tree nodes are
distributed: they are stored on the metadata providers using a DHT"
(paper §III-A.3).  This wraps :class:`~repro.dht.store.DhtStore` with
the tree-node typing and the immutability discipline: a node key is
written at most once (writing the *identical* node twice is tolerated,
so retries are idempotent).
"""

from __future__ import annotations

from repro.blob.segment_tree import NodeKey, TreeNode
from repro.dht.store import DhtStore
from repro.errors import VersionNotFound, WriteConflict

__all__ = ["MetadataService"]


class MetadataService:
    """Typed facade over the metadata-provider DHT."""

    def __init__(self, store: DhtStore):
        self.store = store

    def put_node(self, node: TreeNode, force: bool = False) -> None:
        """Publish one tree node (immutable; identical re-put allowed).

        ``force=True`` overwrites whatever is stored under the key: the
        one sanctioned exception to immutability, used by the
        write-abort protocol to supersede the partially-published
        nodes of a dead write with the tombstone's filler nodes (the
        two patches occupy exactly the same canonical key set).
        """
        key = node.key
        if force:
            self.store.put(key, node)
            return
        try:
            existing = self.store.get(key)
        except KeyError:
            self.store.put(key, node)
            return
        if existing != node:
            raise WriteConflict(
                f"metadata node {key} already exists with different content; "
                "tree nodes are immutable by design"
            )

    def put_patch(self, nodes: list[TreeNode]) -> None:
        """Publish a whole write's patch (children-first order)."""
        for node in nodes:
            self.put_node(node)

    def get_node(self, key: NodeKey) -> TreeNode:
        """Fetch one tree node; VersionNotFound if it does not exist."""
        try:
            return self.store.get(key)
        except KeyError:
            raise VersionNotFound(f"metadata node {key} not found") from None

    def has_node(self, key: NodeKey) -> bool:
        """Existence check."""
        return key in self.store

    def delete_node(self, key: NodeKey) -> None:
        """GC removal (idempotent)."""
        self.store.delete(key)

    def load_by_provider(self) -> dict[str, int]:
        """Stored node count per metadata provider (balance diagnostics)."""
        return self.store.load_by_bucket()
