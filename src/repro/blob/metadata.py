"""Metadata service: segment-tree nodes stored in the DHT.

"To favor efficient concurrent access to metadata, tree nodes are
distributed: they are stored on the metadata providers using a DHT"
(paper §III-A.3).  This wraps :class:`~repro.dht.store.DhtStore` with
the tree-node typing and the immutability discipline: a node key is
written at most once (writing the *identical* node twice is tolerated,
so retries are idempotent).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.blob.segment_tree import NodeKey, TreeNode
from repro.dht.store import MISSING, DhtStore
from repro.errors import VersionNotFound, WriteConflict

__all__ = ["MetadataService", "agreed_value"]


def agreed_value(values: dict[str, object]) -> Optional[TreeNode]:
    """The node every non-missing replica agrees on, or ``None``.

    The one replica-agreement predicate shared by the convergence
    check (:meth:`MetadataService.divergent_keys`) and the scrub's
    healing pass, so "do the replicas agree" can never mean two
    different things.  ``None`` when no online replica holds a copy,
    or when two copies conflict.
    """
    present = [v for v in values.values() if v is not MISSING]
    if not present:
        return None
    first = present[0]
    if all(v == first for v in present[1:]):
        return first
    return None


class MetadataService:
    """Typed facade over the metadata-provider DHT."""

    def __init__(self, store: DhtStore):
        self.store = store

    def put_node(self, node: TreeNode, force: bool = False) -> None:
        """Publish one tree node (immutable; identical re-put allowed).

        ``force=True`` overwrites whatever is stored under the key: the
        one sanctioned exception to immutability, used by the
        write-abort protocol to supersede the partially-published
        nodes of a dead write with the tombstone's filler nodes (the
        two patches occupy exactly the same canonical key set).
        """
        key = node.key
        if force:
            self.store.put(key, node)
            return
        try:
            existing = self.store.get(key)
        except KeyError:
            self.store.put(key, node)
            return
        if existing != node:
            raise WriteConflict(
                f"metadata node {key} already exists with different content; "
                "tree nodes are immutable by design"
            )

    def put_patch(self, nodes: list[TreeNode]) -> None:
        """Publish a whole write's patch (children-first order)."""
        for node in nodes:
            self.put_node(node)

    def get_node(self, key: NodeKey) -> TreeNode:
        """Fetch one tree node; VersionNotFound if it does not exist."""
        try:
            return self.store.get(key)
        except KeyError:
            raise VersionNotFound(f"metadata node {key} not found") from None

    def has_node(self, key: NodeKey) -> bool:
        """Existence check."""
        return key in self.store

    def delete_node(self, key: NodeKey) -> None:
        """GC removal (idempotent)."""
        self.store.delete(key)

    def load_by_provider(self) -> dict[str, int]:
        """Stored node count per metadata provider (balance diagnostics)."""
        return self.store.load_by_bucket()

    # -- anti-entropy surface (DESIGN.md §8) -----------------------------------

    def all_node_keys(self) -> set[NodeKey]:
        """Every tree-node key held by any *online* bucket."""
        return {k for k in self.store.all_keys() if isinstance(k, NodeKey)}

    def replica_nodes(self, key: NodeKey) -> dict[str, object]:
        """Per-online-replica view of one key (value or ``MISSING``)."""
        return self.store.replica_values(key)

    def heal_replica(self, bucket_name: str, node: TreeNode) -> None:
        """Overwrite one replica's copy with the authoritative node."""
        self.store.put_replica(bucket_name, node.key, node)

    def divergent_keys(
        self, keys: Optional[Iterable[NodeKey]] = None
    ) -> list[NodeKey]:
        """Keys whose online replicas disagree (missing or different).

        The anti-entropy convergence check: an empty result means every
        online replica of every (given) key holds an identical node —
        replica digests over any shared key set are then equal.
        """
        chosen = self.all_node_keys() if keys is None else keys
        divergent = []
        for key in chosen:
            values = self.replica_nodes(key)
            if not values:
                continue  # every owner offline; nothing to compare
            if agreed_value(values) is None or any(
                v is MISSING for v in values.values()
            ):
                divergent.append(key)
        return sorted(divergent, key=repr)
