"""Metadata service: segment-tree nodes stored in the DHT.

"To favor efficient concurrent access to metadata, tree nodes are
distributed: they are stored on the metadata providers using a DHT"
(paper §III-A.3).  This wraps :class:`~repro.dht.store.DhtStore` with
the tree-node typing and the immutability discipline: a node key is
written at most once (writing the *identical* node twice is tolerated,
so retries are idempotent).

The facade is **batch-first** (DESIGN.md §9): ``get_nodes`` resolves a
whole descent frontier in one DHT pass, ``put_patch`` publishes a
write's entire patch through one conditional multi-put (the bucket
enforces write-once-or-identical in that same hop — no get-then-put
double round trip), and ``put_fillers`` force-publishes a tombstone's
filler the same way.  Because nodes are immutable, the service also
keeps a **versioned node cache**: an entry can only go stale through
the three sanctioned mutation paths — force-put (tombstone filler
superseding a dead write's nodes), GC deletion, and scrub healing —
each of which invalidates the key.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterable, Optional, Sequence

from repro.blob.segment_tree import NodeKey, TreeNode
from repro.dht.store import MISSING, DhtStore
from repro.errors import ReplicationError, VersionNotFound, WriteConflict

__all__ = ["MetadataService", "NodeCache", "agreed_value"]


def agreed_value(values: dict[str, object]) -> Optional[TreeNode]:
    """The node every non-missing replica agrees on, or ``None``.

    The one replica-agreement predicate shared by the convergence
    check (:meth:`MetadataService.divergent_keys`) and the scrub's
    healing pass, so "do the replicas agree" can never mean two
    different things.  ``None`` when no online replica holds a copy,
    or when two copies conflict.
    """
    present = [v for v in values.values() if v is not MISSING]
    if not present:
        return None
    first = present[0]
    if all(v == first for v in present[1:]):
        return first
    return None


class NodeCache:
    """LRU cache over immutable tree nodes (thread-safe).

    Immutability makes this trivially coherent: a key is written once,
    so a cached entry is the truth for as long as the key exists.  The
    only ways a stored node can change are the three sanctioned
    mutation paths (DESIGN.md §9) — force-put tombstone filler, GC
    delete, scrub heal — and :class:`MetadataService` invalidates the
    key on each.  The cache is read-through only: publishing does not
    populate it, so a client never "reads" metadata the DHT could not
    actually serve it (failure-injection semantics stay honest).
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._nodes: "OrderedDict[NodeKey, TreeNode]" = OrderedDict()
        #: Monotonic invalidation counter plus a bounded per-key record
        #: of *when* each key was last invalidated, so an insert racing
        #: an invalidation is rejected per key — a GC sweep invalidating
        #: thousands of swept keys must not discard every concurrent
        #: reader's in-flight insert for unrelated keys.
        self._epoch = 0
        self._floor = 0  # tokens below this predate an evicted record
        self._invalidated: "OrderedDict[NodeKey, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def get(self, key: NodeKey) -> Optional[TreeNode]:
        with self._lock:
            node = self._nodes.get(key)
            if node is None:
                self.misses += 1
                return None
            self._nodes.move_to_end(key)
            self.hits += 1
            return node

    def begin(self) -> int:
        """Token to take *before* fetching from the DHT; pass it to
        :meth:`put_if_fresh` so a fetch that raced a sanctioned
        mutation (whose invalidation ran in between) can never install
        the superseded value after the invalidation already happened —
        the insert is simply skipped and the next lookup refetches."""
        with self._lock:
            return self._epoch

    def put_if_fresh(self, key: NodeKey, node: TreeNode, token: int) -> bool:
        """Insert *node* unless *key* was invalidated since *token*.

        Per-key precision: invalidations of other keys do not reject
        the insert.  A token so old that the key's record could already
        have been evicted from the bounded invalidation log is rejected
        conservatively (the next lookup just refetches).
        """
        with self._lock:
            if token < self._floor:
                return False
            invalidated_at = self._invalidated.get(key)
            if invalidated_at is not None and invalidated_at > token:
                return False
            self._nodes[key] = node
            self._nodes.move_to_end(key)
            while len(self._nodes) > self.capacity:
                self._nodes.popitem(last=False)
            return True

    def invalidate(self, key: NodeKey) -> None:
        with self._lock:
            self._epoch += 1
            self._invalidated[key] = self._epoch
            self._invalidated.move_to_end(key)
            # Bound the log; anything evicted raises the conservative
            # floor for tokens that predate it.
            while len(self._invalidated) > max(1024, self.capacity):
                _, epoch = self._invalidated.popitem(last=False)
                self._floor = max(self._floor, epoch)
            if self._nodes.pop(key, None) is not None:
                self.invalidations += 1

    def clear(self) -> None:
        with self._lock:
            self._nodes.clear()

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache was never consulted)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, object]:
        return {
            "cache_size": len(self._nodes),
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_invalidations": self.invalidations,
            "cache_hit_rate": round(self.hit_rate, 4),
        }


class MetadataService:
    """Typed, batch-aware facade over the metadata-provider DHT.

    Args:
        store: the replicated DHT holding the tree nodes.
        cache_nodes: capacity of the immutable node cache; 0 disables
            caching entirely (every lookup goes to the DHT).
    """

    def __init__(self, store: DhtStore, cache_nodes: int = 0):
        self.store = store
        self.cache: Optional[NodeCache] = (
            NodeCache(cache_nodes) if cache_nodes > 0 else None
        )

    # -- publish paths -----------------------------------------------------------

    def put_node(self, node: TreeNode, force: bool = False) -> None:
        """Publish one tree node (immutable; identical re-put allowed).

        ``force=True`` overwrites whatever is stored under the key: the
        one sanctioned exception to immutability, used by the
        write-abort protocol to supersede the partially-published
        nodes of a dead write with the tombstone's filler nodes (the
        two patches occupy exactly the same canonical key set).  A
        force-put is one of the three cache-invalidation paths.
        """
        if force:
            self.store.put(node.key, node)
            self.invalidate_cached(node.key)
            return
        self.put_patch([node])

    def put_patch(self, nodes: Sequence[TreeNode]) -> None:
        """Publish a whole write's patch in one conditional multi-put.

        Each owner bucket receives its share of the patch in a single
        request and enforces write-once-or-identical in that same hop:
        an identical re-put (an idempotent retry — which now also
        re-feeds any replica the first attempt missed) is silent, a
        different stored value raises :class:`WriteConflict`, and a
        node no live replica could take raises
        :class:`ReplicationError` — the same contract the scalar
        get-then-put loop enforced in 2x the round trips.
        """
        error = self.put_patches([nodes])[0]
        if error is not None:
            raise error

    def put_patches(
        self, patches: Sequence[Sequence[TreeNode]]
    ) -> list[Optional[Exception]]:
        """Publish several writers' patches in one conditional DHT pass.

        The multi-writer twin of :meth:`put_patch` (DESIGN.md §10): all
        patches' nodes travel together — per owner bucket, one request
        carries every patch's share — but outcomes stay **per patch**,
        because the patches belong to strangers coalesced by a publish
        window and one writer's conflict must not poison its
        batch-mates.  Returns a list aligned with *patches*: ``None``
        for a fully stored patch, else the :class:`WriteConflict` /
        :class:`ReplicationError` that patch alone should raise
        (conflict wins when a patch suffers both, matching the scalar
        path's precedence).  Distinct writers' patches never share a
        key — every node key embeds its writer's version.
        """
        owner_patch: dict[NodeKey, int] = {}
        pairs: list[tuple[NodeKey, TreeNode]] = []
        for i, nodes in enumerate(patches):
            for node in nodes:
                owner_patch[node.key] = i
                pairs.append((node.key, node))
        result = self.store.multi_put(pairs, conditional=True)
        errors: list[Optional[Exception]] = [None] * len(patches)
        for key in result.unstored:
            i = owner_patch[key]
            if errors[i] is None:
                errors[i] = ReplicationError(
                    f"no live replica took metadata node {key}"
                )
        for key in result.conflicts:
            errors[owner_patch[key]] = WriteConflict(
                f"metadata node {key} already exists with different content; "
                "tree nodes are immutable by design"
            )
        return errors

    def put_fillers(self, nodes: Sequence[TreeNode]) -> list[NodeKey]:
        """Force-publish a tombstone's filler patch, best effort.

        One batched force multi-put per patch; every key is invalidated
        from the cache (sanctioned mutation path #1).  Returns the keys
        that reached no live replica — the abort/scrub caller records
        them rather than failing, because the filler is usually being
        published *during* the outage that doomed the original write.
        """
        result = self.store.multi_put(
            [(node.key, node) for node in nodes], conditional=False
        )
        for node in nodes:
            self.invalidate_cached(node.key)
        return list(result.unstored)

    # -- read paths --------------------------------------------------------------

    def get_node(self, key: NodeKey) -> TreeNode:
        """Fetch one tree node; VersionNotFound if it does not exist."""
        token = None
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                return cached
            token = self.cache.begin()
        try:
            node = self.store.get(key)
        except KeyError:
            raise VersionNotFound(f"metadata node {key} not found") from None
        if self.cache is not None:
            self.cache.put_if_fresh(key, node, token)
        return node

    def get_nodes(self, keys: Sequence[NodeKey]) -> dict[NodeKey, TreeNode]:
        """Fetch a whole frontier of nodes in one batched DHT pass.

        Cache hits are served locally; only the misses travel, grouped
        by owner bucket (one request per bucket, requests in parallel)
        — a descent costs O(tree depth) round trips instead of O(nodes
        visited).  Raises :class:`VersionNotFound` if any key does not
        exist, matching :meth:`get_node`.
        """
        found: dict[NodeKey, TreeNode] = {}
        misses: list[NodeKey] = []
        for key in dict.fromkeys(keys):
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                found[key] = cached
            else:
                misses.append(key)
        if misses:
            token = self.cache.begin() if self.cache is not None else None
            try:
                fetched = self.store.multi_get(misses)
            except KeyError as exc:
                raise VersionNotFound(
                    f"metadata node {exc.args[0]} not found"
                ) from None
            for key, node in fetched.items():
                if self.cache is not None:
                    self.cache.put_if_fresh(key, node, token)
                found[key] = node
        return found

    def has_node(self, key: NodeKey) -> bool:
        """Existence check: cache first, then a cheap membership probe
        (no value transfer, no failover fetch-and-discard)."""
        if self.cache is not None and self.cache.get(key) is not None:
            return True
        return self.store.contains(key)

    def delete_node(self, key: NodeKey) -> None:
        """GC removal (idempotent; cache-invalidation path #2)."""
        self.store.delete(key)
        self.invalidate_cached(key)

    # -- cache control -----------------------------------------------------------

    def invalidate_cached(self, key: NodeKey) -> None:
        """Drop one key from the node cache (no-op without a cache).

        Every mutation of a stored node must pass through here —
        force-put filler, GC deletion, scrub healing — or a cached
        descent could serve the superseded value forever.
        """
        if self.cache is not None:
            self.cache.invalidate(key)

    def stats(self) -> dict[str, object]:
        """Wire + cache counters in one diagnostic dict (CLI surface)."""
        out: dict[str, object] = dict(self.store.stats.snapshot())
        if self.cache is not None:
            out.update(self.cache.snapshot())
        return out

    def load_by_provider(self) -> dict[str, int]:
        """Stored node count per metadata provider (balance diagnostics)."""
        return self.store.load_by_bucket()

    # -- anti-entropy surface (DESIGN.md §8) -----------------------------------

    def all_node_keys(self) -> set[NodeKey]:
        """Every tree-node key held by any *online* bucket."""
        return {k for k in self.store.all_keys() if isinstance(k, NodeKey)}

    def replica_nodes(self, key: NodeKey) -> dict[str, object]:
        """Per-online-replica view of one key (value or ``MISSING``)."""
        return self.store.replica_values(key)

    def replica_nodes_many(
        self, keys: Sequence[NodeKey]
    ) -> dict[NodeKey, dict[str, object]]:
        """Batched :meth:`replica_nodes`: one DHT pass answers a whole
        chunk of the scrub's reconciliation sweep."""
        return self.store.multi_replica_values(keys)

    def heal_replica(self, bucket_name: str, node: TreeNode) -> None:
        """Overwrite one replica's copy with the authoritative node
        (cache-invalidation path #3)."""
        self.store.put_replica(bucket_name, node.key, node)
        self.invalidate_cached(node.key)

    def divergent_keys(
        self, keys: Optional[Iterable[NodeKey]] = None
    ) -> list[NodeKey]:
        """Keys whose online replicas disagree (missing or different).

        The anti-entropy convergence check: an empty result means every
        online replica of every (given) key holds an identical node —
        replica digests over any shared key set are then equal.
        """
        chosen = list(self.all_node_keys() if keys is None else keys)
        divergent = []
        for key, values in self.replica_nodes_many(chosen).items():
            if not values:
                continue  # every owner offline; nothing to compare
            if agreed_value(values) is None or any(
                v is MISSING for v in values.values()
            ):
                divergent.append(key)
        return sorted(divergent, key=repr)
