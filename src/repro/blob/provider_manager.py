"""Provider manager: block-placement policies.

"The provider manager keeps information about the available storage
space and schedules the placement of newly generated blocks ...
according to a load balancing strategy that aims at evenly distributing
the blocks across data providers" (paper §III-B).  BlobSeer's default —
and the root cause of its single-writer and concurrent-reader wins in
§V-D/§V-E — is a **round-robin** scatter over remote providers.

The HDFS-style policies (``local-first`` writes, random remote
placement) are implemented here too, both for the HDFS baseline and for
the placement ablation benchmark.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Protocol, Sequence

import numpy as np

from repro.errors import ProviderUnavailable, ReplicationError

__all__ = [
    "ProviderInfo",
    "PlacementPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "RandomPolicy",
    "LocalFirstPolicy",
    "ProviderManagerCore",
    "make_policy",
]


@dataclass
class ProviderInfo:
    """Load statistics for one data provider."""

    name: str
    blocks: int = 0
    bytes: int = 0
    online: bool = True


class PlacementPolicy(Protocol):
    """Strategy choosing the primary provider for each new block."""

    def choose(
        self,
        count: int,
        providers: Sequence[ProviderInfo],
        rng: np.random.Generator,
        client: Optional[str],
    ) -> list[str]:
        """Primary provider name for each of *count* blocks.

        *providers* lists only live providers; *client* is the writer's
        node name (used by locality-aware policies).
        """
        ...  # pragma: no cover - protocol


class RoundRobinPolicy:
    """BlobSeer's default: scatter blocks over providers in turn.

    A persistent cursor continues where the previous allocation left
    off, so successive writes keep the global layout balanced.
    """

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, count, providers, rng, client=None):
        names = [p.name for p in providers]
        chosen = [names[(self._cursor + i) % len(names)] for i in range(count)]
        self._cursor = (self._cursor + count) % len(names)
        return chosen


class LeastLoadedPolicy:
    """Balance on stored block counts (ties broken by name)."""

    def choose(self, count, providers, rng, client=None):
        loads = {p.name: p.blocks for p in providers}
        chosen: list[str] = []
        for _ in range(count):
            name = min(sorted(loads), key=lambda n: loads[n])
            chosen.append(name)
            loads[name] += 1
        return chosen


class RandomPolicy:
    """Uniform random placement (HDFS's remote-client behaviour)."""

    def choose(self, count, providers, rng, client=None):
        names = [p.name for p in providers]
        picks = rng.integers(0, len(names), size=count)
        return [names[i] for i in picks]


class LocalFirstPolicy:
    """HDFS's datanode-colocated behaviour: write locally when possible.

    If the client is itself a live provider every block lands there
    (the pathological layout of §V-E's first experiment); otherwise
    falls back to uniform random remote placement.
    """

    def choose(self, count, providers, rng, client=None):
        names = [p.name for p in providers]
        if client is not None and client in names:
            return [client] * count
        picks = rng.integers(0, len(names), size=count)
        return [names[i] for i in picks]


_POLICIES = {
    "round_robin": RoundRobinPolicy,
    "least_loaded": LeastLoadedPolicy,
    "random": RandomPolicy,
    "local_first": LocalFirstPolicy,
}


def make_policy(name: str) -> PlacementPolicy:
    """Instantiate a policy by config name (see ``_POLICIES`` keys)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown placement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None


class ProviderManagerCore:
    """Tracks providers and allocates replica sets for new blocks.

    Replicas: the policy picks each block's *primary*; remaining
    replicas are the next live providers in name order after the
    primary (deterministic, distinct, and spread).
    """

    def __init__(
        self,
        policy: PlacementPolicy | str = "round_robin",
        rng: Optional[np.random.Generator] = None,
    ):
        self.policy: PlacementPolicy = (
            make_policy(policy) if isinstance(policy, str) else policy
        )
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._providers: dict[str, ProviderInfo] = {}
        self._lock = threading.Lock()

    # -- membership -------------------------------------------------------------

    def register(self, name: str) -> None:
        """A data provider joins (they "may dynamically join", §III-B)."""
        if name in self._providers:
            raise ValueError(f"provider {name!r} already registered")
        self._providers[name] = ProviderInfo(name=name)

    def decommission(self, name: str) -> None:
        """Mark a provider offline; its stats are retained."""
        self._provider(name).online = False

    def recover(self, name: str) -> None:
        """Bring a provider back online."""
        self._provider(name).online = True

    def _provider(self, name: str) -> ProviderInfo:
        try:
            return self._providers[name]
        except KeyError:
            raise ProviderUnavailable(f"unknown provider {name!r}") from None

    @property
    def provider_names(self) -> list[str]:
        """All registered providers, name order."""
        return sorted(self._providers)

    def live_providers(self) -> list[ProviderInfo]:
        """Currently online providers, name order."""
        return [self._providers[n] for n in self.provider_names if self._providers[n].online]

    # -- allocation ---------------------------------------------------------------

    def allocate(
        self,
        count: int,
        block_sizes: Sequence[int],
        replication: int = 1,
        client: Optional[str] = None,
    ) -> list[tuple[str, ...]]:
        """Replica sets (primary first) for *count* new blocks.

        Raises :class:`ReplicationError` when fewer than *replication*
        providers are live.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if len(block_sizes) != count:
            raise ValueError(f"need {count} block sizes, got {len(block_sizes)}")
        with self._lock:
            live = self.live_providers()
            if len(live) < replication:
                raise ReplicationError(
                    f"replication {replication} impossible with {len(live)} live providers"
                )
            primaries = self.policy.choose(count, live, self._rng, client)
            live_names = [p.name for p in live]
            placements: list[tuple[str, ...]] = []
            for seq, primary in enumerate(primaries):
                start = live_names.index(primary)
                replicas = tuple(
                    live_names[(start + r) % len(live_names)] for r in range(replication)
                )
                placements.append(replicas)
                for name in replicas:
                    info = self._providers[name]
                    info.blocks += 1
                    info.bytes += block_sizes[seq]
            return placements

    def _release_one(self, name: str, nbytes: int) -> None:
        """Return one block's charge; caller holds ``self._lock``."""
        info = self._provider(name)
        info.blocks = max(0, info.blocks - 1)
        info.bytes = max(0, info.bytes - nbytes)

    def release(self, provider: str, nbytes: int) -> None:
        """Return capacity after a GC deletion (one block of *nbytes*)."""
        with self._lock:
            self._release_one(provider, nbytes)

    def release_placements(
        self,
        placements: Sequence[tuple[str, ...]],
        block_sizes: Sequence[int],
        skip: frozenset[tuple[int, str]] = frozenset(),
    ) -> None:
        """Undo :meth:`allocate` after a failed write (paper §III-D).

        "If, for some reason, writing of a block fails, then the whole
        write fails" — and a failed write must not keep charging the
        load-balancer: leaked ``blocks``/``bytes`` would permanently
        skew :class:`LeastLoadedPolicy` and the Figure 3(b) layout
        vector toward providers that never actually stored anything.

        *skip* holds ``(seq, provider_name)`` replicas to leave
        charged: a replica stranded on an offline provider really does
        still occupy its bytes, and the GC sweep returns that charge
        exactly once when it reclaims the orphan.
        """
        if len(placements) != len(block_sizes):
            raise ValueError(
                f"need {len(placements)} block sizes, got {len(block_sizes)}"
            )
        with self._lock:
            for seq, (replicas, nbytes) in enumerate(zip(placements, block_sizes)):
                for name in replicas:
                    if (seq, name) not in skip:
                        self._release_one(name, nbytes)

    # -- diagnostics -------------------------------------------------------------------

    def block_counts(self) -> dict[str, int]:
        """Blocks per provider — the Figure 3(b) layout vector source."""
        return {name: self._providers[name].blocks for name in self.provider_names}
