"""Provider manager: block-placement policies.

"The provider manager keeps information about the available storage
space and schedules the placement of newly generated blocks ...
according to a load balancing strategy that aims at evenly distributing
the blocks across data providers" (paper §III-B).  BlobSeer's default —
and the root cause of its single-writer and concurrent-reader wins in
§V-D/§V-E — is a **round-robin** scatter over remote providers.

The HDFS-style policies (``local-first`` writes, random remote
placement) are implemented here too, both for the HDFS baseline and for
the placement ablation benchmark.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Protocol, Sequence

import numpy as np

from repro.errors import ProviderUnavailable, QuotaExceeded, ReplicationError

__all__ = [
    "ProviderInfo",
    "TenantAccount",
    "PlacementPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "RandomPolicy",
    "LocalFirstPolicy",
    "ProviderManagerCore",
    "make_policy",
]

#: Sliding window (seconds) over which per-tenant bytes/s is measured.
RATE_WINDOW = 2.0


@dataclass
class ProviderInfo:
    """Load statistics for one data provider."""

    name: str
    blocks: int = 0
    bytes: int = 0
    online: bool = True


@dataclass
class TenantAccount:
    """Quota accounting for one gateway tenant (DESIGN.md §12).

    Lives in the provider manager — the placement serialization point —
    so an over-quota write is refused by the same authority that would
    otherwise have charged providers for its blocks: rejection happens
    *before* any placement exists.  ``bytes_reserved`` covers writes
    admitted but not yet durable; reservations either convert to
    ``bytes_stored`` on success or are released on failure, so the
    quota check ``stored + reserved + request <= quota`` never
    double-admits concurrent writers.
    """

    tenant_id: str
    quota_bytes: Optional[int] = None
    bytes_stored: int = 0
    bytes_reserved: int = 0
    in_flight: int = 0
    ops_total: int = 0
    bytes_total: int = 0
    quota_rejections: int = 0
    #: (monotonic timestamp, nbytes) samples inside RATE_WINDOW.
    _samples: deque = field(default_factory=deque, repr=False)

    def _note(self, nbytes: int, now: float) -> None:
        self.bytes_total += nbytes
        self._samples.append((now, nbytes))
        self._trim(now)

    def _trim(self, now: float) -> None:
        horizon = now - RATE_WINDOW
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    def bytes_per_sec(self, now: Optional[float] = None) -> float:
        """Data-plane bytes/s over the trailing window."""
        now = time.monotonic() if now is None else now
        self._trim(now)
        return sum(n for _, n in self._samples) / RATE_WINDOW

    def usage(self) -> dict:
        """Point-in-time snapshot for stats reporting."""
        return {
            "quota_bytes": self.quota_bytes,
            "bytes_stored": self.bytes_stored,
            "bytes_reserved": self.bytes_reserved,
            "in_flight": self.in_flight,
            "ops_total": self.ops_total,
            "bytes_total": self.bytes_total,
            "bytes_per_sec": round(self.bytes_per_sec(), 1),
            "quota_rejections": self.quota_rejections,
        }


class PlacementPolicy(Protocol):
    """Strategy choosing the primary provider for each new block."""

    def choose(
        self,
        count: int,
        providers: Sequence[ProviderInfo],
        rng: np.random.Generator,
        client: Optional[str],
    ) -> list[str]:
        """Primary provider name for each of *count* blocks.

        *providers* lists only live providers; *client* is the writer's
        node name (used by locality-aware policies).
        """
        ...  # pragma: no cover - protocol


class RoundRobinPolicy:
    """BlobSeer's default: scatter blocks over providers in turn.

    A persistent cursor continues where the previous allocation left
    off, so successive writes keep the global layout balanced.
    """

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, count, providers, rng, client=None):
        names = [p.name for p in providers]
        chosen = [names[(self._cursor + i) % len(names)] for i in range(count)]
        self._cursor = (self._cursor + count) % len(names)
        return chosen


class LeastLoadedPolicy:
    """Balance on stored block counts (ties broken by name)."""

    def choose(self, count, providers, rng, client=None):
        loads = {p.name: p.blocks for p in providers}
        chosen: list[str] = []
        for _ in range(count):
            name = min(sorted(loads), key=lambda n: loads[n])
            chosen.append(name)
            loads[name] += 1
        return chosen


class RandomPolicy:
    """Uniform random placement (HDFS's remote-client behaviour)."""

    def choose(self, count, providers, rng, client=None):
        names = [p.name for p in providers]
        picks = rng.integers(0, len(names), size=count)
        return [names[i] for i in picks]


class LocalFirstPolicy:
    """HDFS's datanode-colocated behaviour: write locally when possible.

    If the client is itself a live provider every block lands there
    (the pathological layout of §V-E's first experiment); otherwise
    falls back to uniform random remote placement.
    """

    def choose(self, count, providers, rng, client=None):
        names = [p.name for p in providers]
        if client is not None and client in names:
            return [client] * count
        picks = rng.integers(0, len(names), size=count)
        return [names[i] for i in picks]


_POLICIES = {
    "round_robin": RoundRobinPolicy,
    "least_loaded": LeastLoadedPolicy,
    "random": RandomPolicy,
    "local_first": LocalFirstPolicy,
}


def make_policy(name: str) -> PlacementPolicy:
    """Instantiate a policy by config name (see ``_POLICIES`` keys)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown placement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None


class ProviderManagerCore:
    """Tracks providers and allocates replica sets for new blocks.

    Replicas: the policy picks each block's *primary*; remaining
    replicas are the next live providers in name order after the
    primary (deterministic, distinct, and spread).
    """

    def __init__(
        self,
        policy: PlacementPolicy | str = "round_robin",
        rng: Optional[np.random.Generator] = None,
    ):
        self.policy: PlacementPolicy = (
            make_policy(policy) if isinstance(policy, str) else policy
        )
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._providers: dict[str, ProviderInfo] = {}
        self._tenants: dict[str, TenantAccount] = {}
        self._lock = threading.Lock()

    # -- membership -------------------------------------------------------------

    def register(self, name: str) -> None:
        """A data provider joins (they "may dynamically join", §III-B)."""
        if name in self._providers:
            raise ValueError(f"provider {name!r} already registered")
        self._providers[name] = ProviderInfo(name=name)

    def decommission(self, name: str) -> None:
        """Mark a provider offline; its stats are retained."""
        self._provider(name).online = False

    def recover(self, name: str) -> None:
        """Bring a provider back online."""
        self._provider(name).online = True

    def _provider(self, name: str) -> ProviderInfo:
        try:
            return self._providers[name]
        except KeyError:
            raise ProviderUnavailable(f"unknown provider {name!r}") from None

    @property
    def provider_names(self) -> list[str]:
        """All registered providers, name order."""
        return sorted(self._providers)

    def live_providers(self) -> list[ProviderInfo]:
        """Currently online providers, name order."""
        return [self._providers[n] for n in self.provider_names if self._providers[n].online]

    # -- allocation ---------------------------------------------------------------

    def allocate(
        self,
        count: int,
        block_sizes: Sequence[int],
        replication: int = 1,
        client: Optional[str] = None,
    ) -> list[tuple[str, ...]]:
        """Replica sets (primary first) for *count* new blocks.

        Raises :class:`ReplicationError` when fewer than *replication*
        providers are live.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if len(block_sizes) != count:
            raise ValueError(f"need {count} block sizes, got {len(block_sizes)}")
        with self._lock:
            live = self.live_providers()
            if len(live) < replication:
                raise ReplicationError(
                    f"replication {replication} impossible with {len(live)} live providers"
                )
            primaries = self.policy.choose(count, live, self._rng, client)
            live_names = [p.name for p in live]
            placements: list[tuple[str, ...]] = []
            for seq, primary in enumerate(primaries):
                start = live_names.index(primary)
                replicas = tuple(
                    live_names[(start + r) % len(live_names)] for r in range(replication)
                )
                placements.append(replicas)
                for name in replicas:
                    info = self._providers[name]
                    info.blocks += 1
                    info.bytes += block_sizes[seq]
            return placements

    def _release_one(self, name: str, nbytes: int) -> None:
        """Return one block's charge; caller holds ``self._lock``."""
        info = self._provider(name)
        info.blocks = max(0, info.blocks - 1)
        info.bytes = max(0, info.bytes - nbytes)

    def release(self, provider: str, nbytes: int) -> None:
        """Return capacity after a GC deletion (one block of *nbytes*)."""
        with self._lock:
            self._release_one(provider, nbytes)

    def release_placements(
        self,
        placements: Sequence[tuple[str, ...]],
        block_sizes: Sequence[int],
        skip: frozenset[tuple[int, str]] = frozenset(),
    ) -> None:
        """Undo :meth:`allocate` after a failed write (paper §III-D).

        "If, for some reason, writing of a block fails, then the whole
        write fails" — and a failed write must not keep charging the
        load-balancer: leaked ``blocks``/``bytes`` would permanently
        skew :class:`LeastLoadedPolicy` and the Figure 3(b) layout
        vector toward providers that never actually stored anything.

        *skip* holds ``(seq, provider_name)`` replicas to leave
        charged: a replica stranded on an offline provider really does
        still occupy its bytes, and the GC sweep returns that charge
        exactly once when it reclaims the orphan.
        """
        if len(placements) != len(block_sizes):
            raise ValueError(
                f"need {len(placements)} block sizes, got {len(block_sizes)}"
            )
        with self._lock:
            for seq, (replicas, nbytes) in enumerate(zip(placements, block_sizes)):
                for name in replicas:
                    if (seq, name) not in skip:
                        self._release_one(name, nbytes)

    # -- tenant quota accounting (gateway front door, DESIGN.md §12) --------------

    def register_tenant(
        self, tenant_id: str, quota_bytes: Optional[int] = None
    ) -> TenantAccount:
        """Open (or update the quota of) a tenant's account."""
        with self._lock:
            account = self._tenants.get(tenant_id)
            if account is None:
                account = self._tenants[tenant_id] = TenantAccount(tenant_id)
            account.quota_bytes = quota_bytes
            return account

    def _tenant(self, tenant_id: str) -> TenantAccount:
        try:
            return self._tenants[tenant_id]
        except KeyError:
            raise KeyError(f"tenant {tenant_id!r} has no account") from None

    def tenant_reserve(self, tenant_id: str, nbytes: int) -> None:
        """Admit *nbytes* of new stored data against the tenant's quota.

        Raises :class:`~repro.errors.QuotaExceeded` — before any
        placement is allocated — when stored + reserved + request would
        pass the quota.  The reservation must later be settled with
        :meth:`tenant_commit` (the write published) or
        :meth:`tenant_release` (the write failed or was rolled back).
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        with self._lock:
            account = self._tenant(tenant_id)
            if account.quota_bytes is not None:
                used = account.bytes_stored + account.bytes_reserved
                if used + nbytes > account.quota_bytes:
                    account.quota_rejections += 1
                    raise QuotaExceeded(
                        tenant_id, nbytes, used, account.quota_bytes
                    )
            account.bytes_reserved += nbytes

    def tenant_commit(self, tenant_id: str, nbytes: int) -> None:
        """Convert a reservation into durably stored bytes."""
        with self._lock:
            account = self._tenant(tenant_id)
            account.bytes_reserved = max(0, account.bytes_reserved - nbytes)
            account.bytes_stored += nbytes

    def tenant_release(self, tenant_id: str, nbytes: int) -> None:
        """Return a reservation after a failed or abandoned write."""
        with self._lock:
            account = self._tenant(tenant_id)
            account.bytes_reserved = max(0, account.bytes_reserved - nbytes)

    def tenant_discard(self, tenant_id: str, nbytes: int) -> None:
        """Return stored bytes after a delete (storage reclaim is GC's)."""
        with self._lock:
            account = self._tenant(tenant_id)
            account.bytes_stored = max(0, account.bytes_stored - nbytes)

    def tenant_begin_op(self, tenant_id: str) -> None:
        """Count one admitted operation entering service."""
        with self._lock:
            account = self._tenant(tenant_id)
            account.in_flight += 1
            account.ops_total += 1

    def tenant_end_op(self, tenant_id: str, nbytes: int = 0) -> None:
        """An operation left service, having moved *nbytes* of data."""
        with self._lock:
            account = self._tenant(tenant_id)
            account.in_flight = max(0, account.in_flight - 1)
            if nbytes:
                account._note(nbytes, time.monotonic())

    def tenant_usage(self, tenant_id: str) -> dict:
        """One tenant's accounting snapshot."""
        with self._lock:
            return self._tenant(tenant_id).usage()

    def tenant_usages(self) -> dict[str, dict]:
        """Every tenant's accounting snapshot, keyed by tenant id."""
        with self._lock:
            return {tid: acct.usage() for tid, acct in sorted(self._tenants.items())}

    # -- diagnostics -------------------------------------------------------------------

    def block_counts(self) -> dict[str, int]:
        """Blocks per provider — the Figure 3(b) layout vector source."""
        return {name: self._providers[name].blocks for name in self.provider_names}
