"""Version garbage collection.

The paper keeps all past versions "at least as long as they have not
been garbaged for the sake of storage space" (§III-A.1).  Because
subtrees and blocks are *shared* between snapshots, dropping old
versions must not touch anything a retained snapshot still references —
so collection is a mark-and-sweep over the metadata trees:

1. **mark** — traverse the segment tree of every retained version and
   record every reachable tree node and block id;
2. **sweep** — delete this BLOB's unmarked tree nodes from the metadata
   buckets and its unmarked blocks from the data providers.

Collection requires a quiescent BLOB (no in-flight writes): an
in-flight writer may be about to reference nodes the sweep would
otherwise consider dead.  Tombstoned (aborted) versions are *not* in
flight — they committed as no-ops, so a dead writer never blocks
collection through the quiescence gate — and they participate in the
mark phase like any retained snapshot: their filler trees (redirects
into prior versions, zero leaves) keep shared prior nodes alive; zero
leaves mark no block.

Only the *sweep* tolerates offline metadata buckets.  The mark phase
must read every retained snapshot's tree, and deliberately fails
(rather than under-marks, which would delete live nodes) when one is
unreachable — including a tombstone whose filler could not be fully
published during the outage.  Either retain from a version past the
unreadable one, or heal the buckets and run
``LocalBlobStore.republish_tombstone`` first.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blob.segment_tree import LeafNode, NodeKey, iter_reachable_batched
from repro.blob.store import LocalBlobStore
from repro.errors import BlobError, ProviderUnavailable

__all__ = ["GcReport", "collect_garbage"]


@dataclass(frozen=True)
class GcReport:
    """What one collection pass removed."""

    blob_id: str
    retain_from: int
    nodes_deleted: int
    blocks_deleted: int
    bytes_freed: int


def collect_garbage(store: LocalBlobStore, blob_id: str, retain_from: int) -> GcReport:
    """Drop snapshots of *blob_id* older than *retain_from*.

    Versions ``>= retain_from`` (up to the latest) remain readable
    byte-for-byte; lower versions become :class:`VersionNotFound`.
    Shared nodes/blocks still referenced by retained snapshots survive.
    """
    vm = store.version_manager
    state = vm.blob(blob_id)
    inflight = vm.in_flight(blob_id)
    if inflight:
        raise BlobError(
            f"cannot GC blob {blob_id!r} with writes in flight: versions {inflight}"
        )
    if retain_from < 1:
        raise ValueError(f"retain_from must be >= 1, got {retain_from}")
    if retain_from > state.published:
        raise BlobError(
            f"retain_from {retain_from} beyond published watermark {state.published}"
        )

    # Mark phase: everything reachable from retained snapshot roots —
    # of this BLOB *and of every branch descending from it*, since
    # branches share subtrees and blocks with their ancestor (§II-A).
    resolver = store.key_resolver()
    marked_nodes: set[NodeKey] = set()
    marked_blocks: set[tuple] = set()

    def mark(owner_blob: str, first_version: int) -> None:
        owner_state = vm.blob(owner_blob)
        for version in range(max(first_version, 1), owner_state.published + 1):
            info = vm.snapshot_info(owner_blob, version)
            if info.size == 0:
                continue
            root = NodeKey(owner_blob, version, 0, info.root_span)
            # Level-batched traversal with the marked set as its prune
            # list: subtrees shared with already-marked versions are
            # neither re-fetched nor re-walked, and each level of the
            # rest costs one batched metadata pass (DESIGN.md §9).
            for node in iter_reachable_batched(
                store.metadata.get_nodes,
                root,
                key_resolver=resolver,
                skip=marked_nodes,
            ):
                marked_nodes.add(node.key)
                if isinstance(node, LeafNode) and not node.block.is_zero:
                    marked_blocks.add(node.block.block_id)

    mark(blob_id, retain_from)
    for other_id in vm.blob_ids():
        if other_id != blob_id and vm.descends_from(other_id, blob_id):
            other = vm.blob(other_id)
            if vm.in_flight(other_id):
                raise BlobError(
                    f"cannot GC blob {blob_id!r}: descendant branch "
                    f"{other_id!r} has writes in flight"
                )
            mark(other_id, max(other.gc_floor, 1))

    # Sweep metadata buckets (every replica holds full keys; sweep
    # each).  Offline buckets are skipped via the shared
    # ``online_buckets`` skip-list — the same rule the scrub pass uses —
    # exactly like the data-provider sweep below: their garbage keeps
    # until the first pass after recovery, and a bucket dying mid-sweep
    # must not abort the pass after a partial deletion.
    nodes_deleted = 0
    swept_keys: set[NodeKey] = set()
    for bucket in store.metadata.store.online_buckets():
        for key in bucket.keys():
            if isinstance(key, NodeKey) and key.blob_id == blob_id and key not in marked_nodes:
                try:
                    bucket.delete(key)
                except ProviderUnavailable:
                    break  # went down mid-sweep; next pass finishes it
                # Cache-invalidation path #2 (DESIGN.md §9): a cached
                # descent must never resurrect a swept node.
                store.metadata.invalidate_cached(key)
                if key not in swept_keys:
                    swept_keys.add(key)
                    nodes_deleted += 1

    # Sweep data providers.  Offline providers are skipped, not an
    # error — including ones that go down *during* the sweep: their
    # garbage (e.g. replicas stranded by a rolled-back write) keeps
    # its allocator charge and is reclaimed by the first sweep after
    # they recover, so each charge is released exactly once and a
    # down provider can't abort a pass midway.
    blocks_deleted = 0
    bytes_freed = 0
    for provider in store.providers.values():
        if not provider.online:
            continue
        for block_id in provider.block_ids():
            if block_id[0] == blob_id and block_id not in marked_blocks:
                try:
                    freed = provider.delete(block_id)
                except ProviderUnavailable:
                    break  # went down mid-sweep; next pass finishes it
                if freed == 0:
                    # Already gone (raced with a concurrent write
                    # rollback): whoever deleted it returned its
                    # charge; releasing again would undercount.
                    continue
                blocks_deleted += 1
                bytes_freed += freed
                store.provider_manager.release(provider.name, freed)

    vm.set_gc_floor(blob_id, retain_from)
    return GcReport(
        blob_id=blob_id,
        retain_from=retain_from,
        nodes_deleted=nodes_deleted,
        blocks_deleted=blocks_deleted,
        bytes_freed=bytes_freed,
    )
