"""Replication maintenance (paper §VI-B).

Fault tolerance in BlobSeer is "a simple replication mechanism that
allows the user to specify a replication level for each BLOB": writes
fan out each block to that many providers, reads fail over between
replicas (both already built into the store).  This module adds the
maintenance side: finding blocks whose replica sets have dropped below
target after provider failures, and re-replicating them from surviving
copies.

Replica-set location is the one piece of metadata treated as mutable:
repairing a block rewrites the leaf node with an updated provider
tuple.  The block's *identity and contents* stay immutable, so snapshot
semantics are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blob.block import BlockDescriptor
from repro.blob.segment_tree import LeafNode, NodeKey, iter_reachable
from repro.blob.store import LocalBlobStore
from repro.errors import ReplicationError

__all__ = [
    "RepairReport",
    "find_under_replicated",
    "live_replicas",
    "repair_blob",
    "repair_leaf",
]


@dataclass(frozen=True)
class RepairReport:
    """Outcome of one repair pass over a BLOB."""

    blob_id: str
    blocks_checked: int
    blocks_repaired: int
    copies_created: int


def live_replicas(store: LocalBlobStore, descriptor: BlockDescriptor) -> list[str]:
    """Replica providers that are online *and* still hold the block."""
    return [
        name
        for name in descriptor.providers
        if name in store.providers and store.providers[name].has(descriptor.block_id)
    ]


def find_under_replicated(
    store: LocalBlobStore, blob_id: str, version: int | None = None
) -> list[LeafNode]:
    """Leaves of the snapshot whose blocks have too few live replicas."""
    info = store.snapshot(blob_id, version)
    if info.size == 0:
        return []
    state = store.version_manager.blob(blob_id)
    root = NodeKey(blob_id, info.version, 0, info.root_span)
    lacking = []
    for node in iter_reachable(
        store.metadata.get_node, root, key_resolver=store.key_resolver()
    ):
        if isinstance(node, LeafNode) and not node.block.is_zero:
            # Zero leaves (tombstone filler) are synthesised by readers
            # and store nothing: there is no replica set to maintain.
            if len(live_replicas(store, node.block)) < state.replication:
                lacking.append(node)
    return lacking


def repair_leaf(store: LocalBlobStore, node: LeafNode, target: int) -> int:
    """Restore one leaf's block to *target* live replicas.

    Copies the payload from a surviving replica to fresh providers
    (chosen among live providers not already holding it) and republishes
    the leaf with the updated replica set — the one piece of metadata
    treated as mutable.  Returns the number of copies created (0 when
    the block is already at target).  Raises :class:`ReplicationError`
    if the block has **no** live replica (data loss: only a re-write can
    recover it) or too few live providers exist to reach *target*.

    Shared by :func:`repair_blob` and the scrub pass
    (:mod:`repro.blob.scrub`), so both heal identically.
    """
    descriptor = node.block
    live = live_replicas(store, descriptor)
    if len(live) >= target:
        return 0
    if not live:
        raise ReplicationError(
            f"block {descriptor.block_id} of blob "
            f"{descriptor.blob_id!r} has no live replica"
        )
    payload = store.providers[live[0]].get(descriptor.block_id)
    candidates = [
        p.name
        for p in store.provider_manager.live_providers()
        if p.name not in live
    ]
    needed = target - len(live)
    if len(candidates) < needed:
        raise ReplicationError(
            f"not enough live providers to restore replication {target} "
            f"for block {descriptor.block_id}"
        )
    new_homes = candidates[:needed]
    # Scatter the copies through the store's I/O engine when it has one:
    # maintenance traffic shares the same bounded pool as foreground I/O.
    store._map_io(
        lambda name: store.providers[name].put(descriptor.block_id, payload),
        new_homes,
        afn=lambda name: store.providers[name].aput(descriptor.block_id, payload),
        dest=lambda name: name,
    )
    new_descriptor = BlockDescriptor(
        blob_id=descriptor.blob_id,
        version=descriptor.version,
        index=descriptor.index,
        size=descriptor.size,
        providers=tuple(live + new_homes),
        nonce=descriptor.nonce,
        seq=descriptor.seq,
    )
    # Replica location is mutable metadata: replace the leaf in the DHT
    # via the force-put path, which also invalidates the node cache —
    # a cached pre-repair leaf would keep naming the dead replica set.
    store.metadata.put_node(LeafNode(key=node.key, block=new_descriptor), force=True)
    return len(new_homes)


def repair_blob(store: LocalBlobStore, blob_id: str, version: int | None = None) -> RepairReport:
    """Restore the replication level of every block in one snapshot.

    Raises :class:`ReplicationError` if a block cannot be repaired (no
    live replica, or not enough live providers); use the scrub pass for
    a best-effort sweep that records failures instead of raising.
    """
    info = store.snapshot(blob_id, version)
    state = store.version_manager.blob(blob_id)
    target = state.replication
    checked = repaired = created = 0
    if info.size == 0:
        return RepairReport(blob_id, 0, 0, 0)
    root = NodeKey(blob_id, info.version, 0, info.root_span)
    for node in list(
        iter_reachable(
            store.metadata.get_node, root, key_resolver=store.key_resolver()
        )
    ):
        if not isinstance(node, LeafNode) or node.block.is_zero:
            continue
        checked += 1
        copies = repair_leaf(store, node, target)
        if copies:
            created += copies
            repaired += 1
    return RepairReport(blob_id, checked, repaired, created)
