"""Snapshot differencing over the versioned segment tree.

Because every tree node is labelled with the snapshot version that
created it, two snapshots of a BLOB can be compared **without reading
any data**: descend both trees in lockstep and prune every subtree
whose two sides carry the same node key — identical keys mean the
entire range is shared, bit for bit.  The cost is proportional to the
*changed* region (times log of the BLOB size), not to the BLOB.

This is the machinery behind "datasets are only locally altered from
one Map/Reduce pass to another" (§VI-A): a consumer can ask exactly
which block ranges pass N+1 touched and reprocess only those.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.blob.segment_tree import InnerNode, LeafNode, NodeKey, RedirectLeaf, TreeNode
from repro.blob.store import LocalBlobStore
from repro.errors import BlobError

__all__ = ["BlockRange", "diff_snapshots", "changed_ranges"]


@dataclass(frozen=True)
class BlockRange:
    """A maximal run of changed blocks, in block units."""

    start: int
    end: int  # exclusive

    @property
    def blocks(self) -> int:
        """Number of blocks covered."""
        return self.end - self.start

    def to_bytes(self, block_size: int, total_size: int) -> tuple[int, int]:
        """Byte interval ``(offset, length)`` clipped to the BLOB size."""
        offset = self.start * block_size
        length = min(self.end * block_size, total_size) - offset
        return offset, length


def _coalesce(blocks: list[int]) -> list[BlockRange]:
    """Merge sorted block indices into maximal ranges."""
    ranges: list[BlockRange] = []
    for index in blocks:
        if ranges and ranges[-1].end == index:
            ranges[-1] = BlockRange(ranges[-1].start, index + 1)
        else:
            ranges.append(BlockRange(index, index + 1))
    return ranges


def diff_snapshots(
    fetch: Callable[[NodeKey], TreeNode],
    key_a: Optional[NodeKey],
    key_b: Optional[NodeKey],
    resolver: Optional[Callable[[NodeKey], NodeKey]] = None,
) -> list[int]:
    """Block indices whose content differs between two subtrees.

    ``None`` on either side means the range does not exist there (size
    difference); every block present on the other side counts as
    changed.  Subtrees whose resolved keys are equal are pruned without
    being visited — the sharing-makes-diff-cheap property.  *resolver*
    maps keys across branch lineages (see ``LocalBlobStore.key_resolver``).
    """
    resolve = resolver if resolver is not None else (lambda k: k)
    changed: set[int] = set()

    def fetch_leafward(key: NodeKey) -> TreeNode:
        """Fetch, following tombstone redirects to the leaf they defer to."""
        node = fetch(resolve(key))
        while isinstance(node, RedirectLeaf):
            node = fetch(resolve(node.target_key))
        return node

    def mark_all(key: NodeKey) -> None:
        node = fetch(resolve(key))
        if isinstance(node, (LeafNode, RedirectLeaf)):
            changed.add(node.key.offset)
        else:
            for child in node.children():
                mark_all(child)

    def walk(a: Optional[NodeKey], b: Optional[NodeKey]) -> None:
        if a is None and b is None:
            return
        if a is None:
            mark_all(b)  # type: ignore[arg-type]
            return
        if b is None:
            mark_all(a)
            return
        if resolve(a) == resolve(b):
            return  # identical shared subtree: nothing changed inside
        if a.span == 1 and b.span == 1:
            # Follow tombstone redirects before comparing: a redirect
            # into the very leaf on the other side means "unchanged"
            # even though the keys differ.
            node_a = fetch_leafward(a)
            node_b = fetch_leafward(b)
            # Size disambiguates zero leaves, whose block_id is always
            # None; for stored blocks same id implies same size.
            if (node_a.block.block_id, node_a.block.size) != (
                node_b.block.block_id,
                node_b.block.size,
            ):
                changed.add(a.offset)
            return
        if a.span != b.span:
            # Roots of different-size trees: peel the bigger tree's
            # right siblings (they exist on one side only) and keep
            # aligning its left spine with the smaller root.
            big, small, a_is_big = (a, b, True) if a.span > b.span else (b, a, False)
            node = fetch(resolve(big))
            if not isinstance(node, InnerNode):  # pragma: no cover
                raise BlobError(f"span {big.span} node is not an inner node")
            if node.right_key is not None:
                mark_all(node.right_key)
            walk(node.left_key, small) if a_is_big else walk(small, node.left_key)
            return
        # Equal spans >= 2: only inner nodes live at these positions
        # (span-1 pairs returned above).
        node_a = fetch(resolve(a))
        node_b = fetch(resolve(b))
        if not (isinstance(node_a, InnerNode) and isinstance(node_b, InnerNode)):
            raise BlobError("mismatched tree shapes at equal spans")  # pragma: no cover
        walk(node_a.left_key, node_b.left_key)
        walk(node_a.right_key, node_b.right_key)

    walk(key_a, key_b)
    return sorted(changed)


def changed_ranges(
    store: LocalBlobStore,
    blob_id: str,
    version_a: int,
    version_b: int,
    blob_b: Optional[str] = None,
) -> list[BlockRange]:
    """Changed block ranges between two published snapshots.

    Compares ``(blob_id, version_a)`` against ``(blob_b or blob_id,
    version_b)`` — the second form diffs across a branch and its
    ancestor.  Blocks beyond the shorter snapshot's end count as
    changed.  Ranges are coalesced and sorted.
    """
    other = blob_b if blob_b is not None else blob_id
    info_a = store.snapshot(blob_id, version_a)
    info_b = store.snapshot(other, version_b)
    resolver = store.key_resolver()

    def root_of(owner: str, info) -> Optional[NodeKey]:
        if info.size == 0:
            return None
        return NodeKey(owner, info.version, 0, info.root_span)

    blocks = diff_snapshots(
        store.metadata.get_node,
        root_of(blob_id, info_a),
        root_of(other, info_b),
        resolver,
    )
    return _coalesce(blocks)
