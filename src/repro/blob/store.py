"""LocalBlobStore: the whole BlobSeer service, in process.

Wires the functional cores together — version manager, provider
manager, data providers, metadata DHT — and runs the paper's exact
client protocols against them:

* **write/append** (§III-D): split into blocks → ask the provider
  manager for placements → store blocks (first phase, fully parallel
  in the distributed deployment) → obtain a version ticket (the only
  serialized step) → weave and publish the metadata patch → report
  success, which advances the publication watermark in version order.
* **read** (§III-C): resolve the snapshot with the version manager →
  descend the snapshot's segment tree (metadata providers) → fetch the
  touched blocks, trimming the extremal ones → assemble.

Writes are all-or-nothing at every phase: a failure before version
assignment rolls the stored blocks back, and a failure *after* it
additionally aborts the assigned version — converting it into a
tombstone whose filler metadata keeps concurrent writers' woven
references resolvable (DESIGN.md §7), so a dead writer can never wedge
the publication watermark or block garbage collection.

This class is the reference implementation the property-based tests
check against a model, and the engine the BSFS file system runs on.
Locking is deliberately two-tier, mirroring the paper's architecture:

* the **control plane** (version manager, placement allocator, nonce
  counter) sits behind one small lock — the real deployment's single
  serialization point;
* the **data plane** (block puts/gets against providers, metadata
  patch weaving) runs without any store-wide lock; each provider
  guards only its own block map.

With ``io_workers > 0`` the data plane additionally runs *parallel*:
a shared :class:`~repro.blob.io_engine.ParallelIOEngine` scatters a
write's block replicas across providers concurrently and gathers a
read's blocks the same way, so wall-clock throughput scales with the
worker count whenever providers have real (or simulated) service
latency.  ``io_workers=0`` (the default) keeps the historical inline
behavior.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
import warnings
from concurrent.futures import CancelledError as _FuturesCancelled
from dataclasses import dataclass
from typing import Callable, Optional, Union

import numpy as np

from repro.blob.block import (
    AnyBlockDescriptor,
    BlockDescriptor,
    BytesPayload,
    CopyStats,
    Payload,
    SyntheticPayload,
    materialize,
)
from repro.blob.async_engine import AsyncIOEngine
from repro.blob.config import DEFAULT_BLOCK_SIZE, StoreConfig
from repro.blob.data_provider import DataProviderCore
from repro.blob.io_engine import ParallelIOEngine
from repro.blob.metadata import MetadataService
from repro.blob.provider_manager import ProviderManagerCore
from repro.blob.segment_tree import (
    DescentPlan,
    NodeKey,
    build_patch,
    build_tombstone_patch,
    collect_blocks,
    collect_blocks_batched,
)
from repro.blob.version_manager import (
    AssignRequest,
    SnapshotInfo,
    TombstoneSpec,
    VersionManagerCore,
    WriteTicket,
)
from repro.dht.store import DhtStore
from repro.errors import (
    InvalidRange,
    ProviderError,
    ProviderUnavailable,
    PublishHookError,
    ReplicationError,
)
from repro.util.bytesize import parse_size
from repro.util.chunks import dest_windows, split_range

__all__ = [
    "LocalBlobStore",
    "StoreConfig",
    "BlockLocation",
    "PublishPipeline",
    "VmanStats",
    "DEFAULT_BLOCK_SIZE",
]

#: Both cancellation flavors a settled scatter future can raise: the
#: thread backend's queued-task abandonment raises the
#: ``concurrent.futures`` class, a cancelled coroutine escaping via its
#: concurrent future raises the ``asyncio`` one — distinct classes
#: (the asyncio flavor is a BaseException), handled together.
_CANCELLED = (_FuturesCancelled, asyncio.CancelledError)

#: Per-destination concurrency cap handed to the async scheduler: at
#: most this many in-flight transfers aimed at any single provider or
#: metadata bucket.  A real provider serves a bounded number of streams
#: well; without the cap a hot provider collects the whole in-flight
#: window as a convoy while the rest of the cluster idles (DESIGN.md
#: §13).
_ASYNC_PER_DEST = 64


@dataclass(frozen=True)
class BlockLocation:
    """One entry of the data-layout primitive (paper §IV-C).

    Hadoop's scheduler asks "how is this range split into blocks and
    where do they live" — the answer is a list of these.
    """

    offset: int
    length: int
    providers: tuple[str, ...]


def _split_payload(data: Union[bytes, Payload], block_size: int) -> list[Payload]:
    """Cut client data into block-sized payloads (trailing may be short).

    The cuts are zero-copy ``memoryview`` windows over the caller's
    buffer (DESIGN.md §11): no byte is duplicated until each window
    reaches its provider, which freezes it on store only if the backing
    buffer is mutable.
    """
    payload: Payload = (
        BytesPayload(data) if isinstance(data, (bytes, bytearray, memoryview)) else data
    )
    if payload.size == 0:
        raise InvalidRange("cannot write zero bytes")
    return [
        payload.slice(s.offset, s.length)
        for s in split_range(0, payload.size, block_size)
    ]


class VmanStats:
    """Version-manager interaction counters (thread-safe).

    The write-path twin of :class:`~repro.dht.store.DhtStats`:
    ``round_trips`` counts *serialized* version-manager interactions —
    one group-commit flush counts once no matter how many writers ride
    it — while ``tickets_assigned``/``commits_reported`` count the
    members those interactions served.  The gap between the two is
    exactly what the publish pipeline buys (DESIGN.md §10): under the
    per-writer path round trips grow with writers, under group commit
    they grow with batches.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with self._lock:
            self.round_trips = 0
            self.assign_rounds = 0
            self.commit_rounds = 0
            self.info_rounds = 0
            self.abort_rounds = 0
            self.tickets_assigned = 0
            self.commits_reported = 0
            self.max_assign_batch = 0
            self.max_commit_batch = 0

    def record(
        self,
        round_trips: int = 0,
        assign_rounds: int = 0,
        commit_rounds: int = 0,
        info_rounds: int = 0,
        abort_rounds: int = 0,
        tickets_assigned: int = 0,
        commits_reported: int = 0,
    ) -> None:
        with self._lock:
            self.round_trips += round_trips
            self.assign_rounds += assign_rounds
            self.commit_rounds += commit_rounds
            self.info_rounds += info_rounds
            self.abort_rounds += abort_rounds
            self.tickets_assigned += tickets_assigned
            self.commits_reported += commits_reported
            self.max_assign_batch = max(self.max_assign_batch, tickets_assigned)
            self.max_commit_batch = max(self.max_commit_batch, commits_reported)

    def snapshot(self) -> dict[str, int]:
        """Point-in-time copy of every counter."""
        with self._lock:
            return {
                "vman_round_trips": self.round_trips,
                "vman_assign_rounds": self.assign_rounds,
                "vman_commit_rounds": self.commit_rounds,
                "vman_info_rounds": self.info_rounds,
                "vman_abort_rounds": self.abort_rounds,
                "vman_tickets_assigned": self.tickets_assigned,
                "vman_commits_reported": self.commits_reported,
                "vman_max_assign_batch": self.max_assign_batch,
                "vman_max_commit_batch": self.max_commit_batch,
            }


class _PendingOp:
    """One writer's slot in a :class:`_GroupBatcher` batch."""

    __slots__ = ("request", "done", "settled", "result", "error", "hook_error")

    def __init__(self, request):
        self.request = request
        self.done = threading.Event()
        self.settled = False
        self.result = None
        self.error: Optional[BaseException] = None
        self.hook_error: Optional[PublishHookError] = None

    def resolve(self, result) -> None:
        self.settled = True
        self.result = result

    def reject(self, error: BaseException) -> None:
        self.settled = True
        self.error = error


class _GroupBatcher:
    """Leader–follower window batcher (the group-commit mechanism).

    Callers enqueue an entry, then contend on the leader lock.
    Whoever holds it is the leader: it optionally sleeps the window
    (letting more writers join), drains **everything** queued, and
    serves the whole batch in one flush.  A follower waking with its
    entry already served just returns; otherwise it becomes the next
    leader.  Batching is therefore opportunistic even at ``window=0``:
    while one flush holds the serialized version manager, every writer
    arriving meanwhile queues up and the next flush takes them all —
    round trips scale with batches, not writers.

    The flush callback must settle each entry via ``resolve``/
    ``reject``; any exception escaping it is routed to the entries it
    left unsettled (never swallowed, never able to strand a waiter).
    """

    def __init__(self, flush: "Callable[[list[_PendingOp]], None]", window: float):
        self._flush = flush
        self.window = window
        self._mutex = threading.Lock()
        self._queue: list[_PendingOp] = []
        self._leader = threading.Lock()

    #: How long a follower waits on the leader lock before re-checking
    #: whether its entry was served: a writer whose batch already
    #: flushed must not stay parked behind strangers' whole flush
    #: cycles (threading.Lock is unfair), but an unserved writer must
    #: keep contending — only leadership guarantees its entry drains.
    _RECHECK = 0.001

    def submit(self, request):
        op = _PendingOp(request)
        with self._mutex:
            self._queue.append(op)
        while not op.done.is_set():
            if not self._leader.acquire(timeout=self._RECHECK):
                continue
            try:
                if op.done.is_set():
                    break
                if self.window:
                    time.sleep(self.window)
                with self._mutex:
                    batch, self._queue = self._queue, []
                try:
                    self._flush(batch)
                except BaseException as exc:
                    for entry in batch:
                        if not entry.settled:
                            entry.reject(exc)
                finally:
                    for entry in batch:
                        entry.done.set()
            finally:
                self._leader.release()
        if op.error is not None:
            raise op.error
        if op.hook_error is not None:
            raise op.hook_error
        return op.result


class PublishPipeline:
    """Group-commit publish pipeline for one store (DESIGN.md §10).

    Batches the two serialized steps of the write protocol — version
    assignment and the completion report — across concurrent writers:
    each flush is ONE version-manager interaction
    (:meth:`~repro.blob.version_manager.VersionManagerCore.assign_batch`
    / ``commit_batch``) that admits every writer queued within the
    window.  Assignment and commit batch independently (an assign must
    never queue behind a commit flush), per-blob assignment order is
    queue arrival order, and per-item errors — including a publish
    hook's — come back to exactly the writer they belong to.  Aborts
    do NOT ride the pipeline: a crashing writer tombstones through the
    direct path (`LocalBlobStore._abort_ticket`) while its batch-mates
    commit on.
    """

    def __init__(self, store: "LocalBlobStore", window: float = 0.0):
        if window < 0:
            raise ValueError(f"publish window must be >= 0, got {window}")
        self._store = store
        self.window = window
        self._assigns = _GroupBatcher(self._flush_assigns, window)
        self._commits = _GroupBatcher(self._flush_commits, window)

    def assign(self, request: AssignRequest) -> WriteTicket:
        """Group-batched version assignment; raises the per-item error."""
        return self._assigns.submit(request)

    def commit(self, blob_id: str, version: int) -> int:
        """Group-batched completion report; returns the watermark.

        Raises the member's own validation error, or — after a
        successful commit — the batch's :class:`PublishHookError`
        (report-only: the snapshot is published either way).
        """
        return self._commits.submit((blob_id, version))

    def _flush_assigns(self, batch: list[_PendingOp]) -> None:
        requests = [entry.request for entry in batch]
        outcomes = self._store._vman_call(
            lambda: self._store.version_manager.assign_batch(requests),
            assign_rounds=1,
            tickets_assigned=len(requests),
        )
        for entry, outcome in zip(batch, outcomes):
            if isinstance(outcome, BaseException):
                entry.reject(outcome)
            else:
                entry.resolve(outcome)

    def _flush_commits(self, batch: list[_PendingOp]) -> None:
        items = [entry.request for entry in batch]
        outcomes = self._store._vman_call(
            lambda: self._store.version_manager.commit_batch(items),
            commit_rounds=1,
            commits_reported=len(items),
        )
        for entry, outcome in zip(batch, outcomes):
            if outcome.error is not None:
                entry.reject(outcome.error)
            else:
                entry.resolve(outcome.watermark)
                entry.hook_error = outcome.hook_error


#: The sixteen historical constructor keywords, exactly the
#: :class:`StoreConfig` field names — the shim round-trips them 1:1.
_LEGACY_KWARGS = tuple(f.name for f in StoreConfig.__dataclass_fields__.values())


class LocalBlobStore:
    """In-process BlobSeer deployment.

    Canonical construction::

        store = LocalBlobStore(config=StoreConfig(io_workers=8, ...))

    :class:`~repro.blob.config.StoreConfig` documents every knob and
    rejects the silently-broken combinations up front.  The sixteen
    historical loose keywords (``LocalBlobStore(io_workers=8, ...)``)
    still work through a deprecation shim that folds them into a
    ``StoreConfig`` and emits a ``DeprecationWarning``.
    """

    def __init__(self, config: Optional[StoreConfig] = None, **legacy):
        if legacy:
            if config is not None:
                raise TypeError(
                    "pass either config=StoreConfig(...) or the legacy "
                    f"keywords, not both (got both config= and {sorted(legacy)})"
                )
            unknown = sorted(set(legacy) - set(_LEGACY_KWARGS))
            if unknown:
                raise TypeError(
                    f"unknown LocalBlobStore keyword(s) {unknown}; "
                    f"valid StoreConfig fields are {sorted(_LEGACY_KWARGS)}"
                )
            warnings.warn(
                "LocalBlobStore(**kwargs) is deprecated; build a "
                "StoreConfig and pass LocalBlobStore(config=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = StoreConfig(**legacy)
        elif config is None:
            config = StoreConfig()
        elif not isinstance(config, StoreConfig):
            raise TypeError(
                f"config must be a StoreConfig, got {type(config).__name__} "
                "(positional provider counts moved to "
                "StoreConfig(data_providers=...))"
            )
        config.validate()
        #: The validated configuration this store was built from.
        self.config = config
        self.block_size = config.block_size_bytes()
        self.replication = config.replication
        self.metadata_batching = config.metadata_batching
        self.vman_latency = config.vman_latency
        self.vman_stats = VmanStats()
        #: Data-plane byte accounting (DESIGN.md §11): bytes copied vs
        #: transferred at each block hop, shared with every provider.
        self.copy_stats = CopyStats()
        self.overlap_publish = config.overlap_publish
        self.version_manager = VersionManagerCore()
        self.publish_pipeline: Optional[PublishPipeline] = (
            PublishPipeline(self, window=config.publish_window)
            if config.group_commit
            else None
        )
        self.provider_manager = ProviderManagerCore(
            policy=config.placement, rng=np.random.default_rng(config.seed)
        )
        self.providers: dict[str, DataProviderCore] = {}
        for name in config.provider_names():
            self.provider_manager.register(name)
            self.providers[name] = DataProviderCore(
                name, latency=config.provider_latency, copy_stats=self.copy_stats
            )
        #: Shared scatter-gather engine; ``None`` means inline (serial)
        #: I/O.  Created before the metadata service so the DHT can fan
        #: one batched round's per-bucket requests over the same engine.
        #: ``io_scheduler="async"`` selects the single-event-loop
        #: coroutine scheduler (DESIGN.md §13); ``"threads"`` keeps the
        #: bounded pool, sized by ``io_workers``.
        self.io_engine: Optional[Union[ParallelIOEngine, AsyncIOEngine]] = None
        if config.io_scheduler == "async":
            self.io_engine = AsyncIOEngine(
                max_in_flight=config.max_in_flight,
                per_dest=_ASYNC_PER_DEST,
                helpers=config.io_workers or 2,
            )
        elif config.io_workers > 0:
            self.io_engine = ParallelIOEngine(config.io_workers)
        self.metadata = MetadataService(
            DhtStore(
                config.metadata_bucket_names(),
                replication=config.metadata_replication,
                latency=config.metadata_latency,
                engine=self.io_engine,
            ),
            cache_nodes=config.metadata_cache_nodes,
        )
        self._nonce = itertools.count(1)
        self._lock = threading.Lock()
        self._blob_counter = itertools.count(1)
        self._maintenance = None

    # -- lifecycle of the store itself ---------------------------------------------

    def close(self) -> None:
        """Stop maintenance and release the I/O engine's threads (idempotent)."""
        self.stop_maintenance()
        if self.io_engine is not None:
            self.io_engine.shutdown()

    # -- maintenance (anti-entropy scrub, DESIGN.md §8) -----------------------------

    def start_maintenance(
        self, interval: float = 1.0, ops_per_sec: Optional[float] = None
    ):
        """Start (or return) this store's background scrub daemon.

        The daemon runs one anti-entropy pass per *interval* seconds —
        reconciling metadata replicas, re-publishing tombstone filler,
        restoring block replication — throttled to *ops_per_sec* so it
        never starves foreground I/O (``None`` = unpaced).  Owned by
        the store: ``close()`` stops it.  Calling again with different
        settings restarts the daemon with the new ones.  Returns the
        :class:`~repro.blob.scrub.MaintenanceDaemon`.
        """
        from repro.blob.scrub import MaintenanceDaemon

        running = self._maintenance is not None and self._maintenance.running
        if running and (
            self._maintenance.interval != interval
            or self._maintenance.ops_per_sec != ops_per_sec
        ):
            self._maintenance.stop()
            running = False
        if not running:
            self._maintenance = MaintenanceDaemon(
                self, interval=interval, ops_per_sec=ops_per_sec
            ).start()
        return self._maintenance

    def stop_maintenance(self) -> None:
        """Stop the scrub daemon if one is running (idempotent)."""
        if self._maintenance is not None:
            self._maintenance.stop()
            self._maintenance = None

    def scrub(self, ops_per_sec: Optional[float] = None):
        """Run one synchronous anti-entropy pass; returns the ScrubReport.

        ``ops_per_sec=None`` runs unpaced; any other value must be > 0
        (``Throttle`` rejects 0 rather than silently disabling pacing).
        """
        from repro.blob.scrub import Throttle, scrub_store

        throttle = Throttle(ops_per_sec) if ops_per_sec is not None else None
        return scrub_store(self, throttle=throttle)

    def __enter__(self) -> "LocalBlobStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _map_io(self, fn, items, afn=None, dest=None):
        """Run data-plane work via the engine, or inline when absent.

        ``afn``/``dest`` are the coroutine twin and per-item destination
        key forwarded to the engine (the async scheduler awaits the twin
        and caps per-destination concurrency; the thread pool ignores
        both and runs the blocking *fn*).
        """
        if self.io_engine is not None:
            return self.io_engine.map(fn, items, afn=afn, dest=dest)
        return [fn(item) for item in items]

    def _vman_call(self, fn, **counters):
        """One serialized version-manager interaction.

        In the distributed deployment every one of these is an RPC to
        the concurrency-1 version-manager service — the protocol's only
        serialization point (§III-A.4) — so the in-process store models
        it the same way: the control lock is held, the simulated
        service latency is paid once *per interaction* no matter how
        many batch members ride along, and exactly one round trip is
        counted.  Every vman access on the client protocol paths
        (assign, commit, abort, snapshot info) routes through here.
        """
        with self._lock:
            if self.vman_latency:
                time.sleep(self.vman_latency)
            self.vman_stats.record(round_trips=1, **counters)
            return fn()

    # -- lifecycle ---------------------------------------------------------------

    def create(
        self,
        blob_id: Optional[str] = None,
        block_size: Optional[Union[int, str]] = None,
        replication: Optional[int] = None,
    ) -> str:
        """Create an empty BLOB and return its id."""
        with self._lock:
            if blob_id is None:
                blob_id = f"blob-{next(self._blob_counter):06d}"
            self.version_manager.create_blob(
                blob_id,
                block_size=parse_size(block_size) if block_size is not None else self.block_size,
                replication=replication if replication is not None else self.replication,
            )
        return blob_id

    def branch(
        self,
        src_blob_id: str,
        new_blob_id: Optional[str] = None,
        version: Optional[int] = None,
    ) -> str:
        """Fork a BLOB at a published snapshot (§II-A branching).

        Pure metadata: no block is copied.  Both BLOBs evolve
        independently from the branch point on.
        """
        with self._lock:
            if new_blob_id is None:
                new_blob_id = f"blob-{next(self._blob_counter):06d}"
            self.version_manager.branch_blob(src_blob_id, new_blob_id, version)
        return new_blob_id

    # -- write path (paper §III-D) ----------------------------------------------------

    def write(self, blob_id: str, offset: int, data: Union[bytes, Payload]) -> int:
        """Write *data* at *offset*; returns the new snapshot version."""
        return self._do_write(blob_id, data, offset=offset, append=False)

    def append(self, blob_id: str, data: Union[bytes, Payload]) -> int:
        """Append *data*; the version manager fixes the offset (§III-D)."""
        return self._do_write(blob_id, data, offset=None, append=True)

    def _do_write(
        self,
        blob_id: str,
        data: Union[bytes, Payload],
        offset: Optional[int],
        append: bool,
    ) -> int:
        state = self.version_manager.blob(blob_id)
        block_size = state.block_size
        payloads = _split_payload(data, block_size)
        sizes = [p.size for p in payloads]

        # Phase 1 — publish data blocks: scatter every (block, replica)
        # transfer across the providers, in parallel when the store has
        # an I/O engine.  Allocation stays under the control lock (the
        # provider manager is the placement serialization point).
        # With ``overlap_publish`` the scatter is only *launched* here
        # and settled right before the commit, so the assignment and
        # the metadata weave/publish run while the blocks travel
        # (DESIGN.md §10) — except from an engine worker thread, where
        # parking on the pool's own futures could deadlock it.
        with self._lock:
            nonce = next(self._nonce)
            placements = self.provider_manager.allocate(
                len(payloads), sizes, replication=state.replication
            )
        overlap = (
            self.overlap_publish
            and self.io_engine is not None
            and not self.io_engine.in_worker
        )
        stored: list[tuple[str, tuple[str, int, int]]] = []
        scatter = None
        if overlap:
            scatter = self._begin_scatter(blob_id, nonce, payloads, placements, stored)
        else:
            stored.extend(
                self._store_blocks(blob_id, nonce, payloads, placements, sizes)
            )

        # Phase 2 — version assignment (the serialization point; group-
        # batched when the publish pipeline is on).  The version
        # manager validates the range *before* recording anything, so a
        # rejection here (misaligned offset, unaligned append, hole)
        # leaves it untouched — but the data blocks are already out (or
        # in flight, which must drain first: an unsettled transfer
        # could still append to ``stored`` underneath the rollback),
        # and must be rolled back like any failed write.
        try:
            ticket = self._assign_version(blob_id, offset, append, sum(sizes))
        except BaseException:
            if scatter is not None:
                self._settle_scatter(scatter)
            self._rollback_write(stored, placements, sizes)
            raise

        # Phase 3 — weave and publish metadata (concurrent by design),
        # settle the overlapped scatter, then report completion (group-
        # batched).  A failure here happens *after* the ticket was
        # assigned, so a plain rollback is not enough: the version must
        # be aborted too, or it stays in flight forever — wedging the
        # watermark and blocking GC (the §VI-B weakness).  The abort
        # converts it into a tombstone (see _abort_ticket).
        try:
            self._publish_metadata(ticket, nonce, sizes, placements)
            if scatter is not None:
                error = self._settle_scatter(scatter)
                if error is not None:
                    raise error
            self._commit_version(ticket)
        except PublishHookError:
            # The snapshot IS committed and published; a raising
            # publication hook is reported, never rolled back.
            raise
        except BaseException:
            # Same guard for non-Exception escapes from the hooks
            # (e.g. a KeyboardInterrupt): once the version is
            # committed, its blocks belong to a published snapshot and
            # must never be rolled back.  An overlapped scatter must
            # drain first either way — aborting against a still-growing
            # ``stored`` list would strand the late-landing replicas.
            if scatter is not None:
                self._settle_scatter(scatter)
            with self._lock:
                committed = (
                    ticket.version
                    in self.version_manager.blob(blob_id).committed
                )
            if not committed:
                self._abort_ticket(ticket, stored, placements, sizes)
            raise
        return ticket.version

    def _assign_version(
        self, blob_id: str, offset: Optional[int], append: bool, length: int
    ) -> WriteTicket:
        """Phase-2 version assignment: pipelined or per-writer."""
        if self.publish_pipeline is not None:
            return self.publish_pipeline.assign(
                AssignRequest(
                    blob_id=blob_id,
                    length=length,
                    offset=None if append else offset,
                )
            )

        def run() -> WriteTicket:
            if append:
                return self.version_manager.assign_append(blob_id, length)
            assert offset is not None
            return self.version_manager.assign_write(blob_id, offset, length)

        return self._vman_call(run, assign_rounds=1, tickets_assigned=1)

    def _commit_version(self, ticket: WriteTicket) -> int:
        """Phase-3 completion report: pipelined or per-writer."""
        if self.publish_pipeline is not None:
            return self.publish_pipeline.commit(ticket.blob_id, ticket.version)
        return self._vman_call(
            lambda: self.version_manager.commit(ticket.blob_id, ticket.version),
            commit_rounds=1,
            commits_reported=1,
        )

    def _scatter_tasks(
        self,
        blob_id: str,
        nonce: int,
        payloads: list[Payload],
        placements: list[tuple[str, ...]],
        stored: list[tuple[str, tuple[str, int, int]]],
    ):
        """The (block, replica) transfer plan shared by both scatters.

        Returns the transfer task list and the sync/async closure pair
        executing one task; both record each landed replica into
        *stored* (under its own lock) so the caller can roll back
        whatever made it.  One constructor for the inline and the
        overlapped scatter: the paths can never disagree on block-id
        layout or rollback bookkeeping.  The async twin awaits the
        provider's coroutine entry point, so a cancellation (a sibling
        transfer failed first) lands at its latency await — before the
        provider's state or ``stored`` changed — never as a torn entry.
        """
        transfers = [
            (provider_name, (blob_id, nonce, seq), payload)
            for seq, (payload, replicas) in enumerate(zip(payloads, placements))
            for provider_name in replicas
        ]
        stored_lock = threading.Lock()

        def transfer(task) -> None:
            provider_name, block_id, payload = task
            self.providers[provider_name].put(block_id, payload)
            with stored_lock:
                stored.append((provider_name, block_id))

        async def atransfer(task) -> None:
            provider_name, block_id, payload = task
            await self.providers[provider_name].aput(block_id, payload)
            with stored_lock:
                stored.append((provider_name, block_id))

        return transfers, transfer, atransfer

    def _begin_scatter(
        self,
        blob_id: str,
        nonce: int,
        payloads: list[Payload],
        placements: list[tuple[str, ...]],
        stored: list[tuple[str, tuple[str, int, int]]],
    ):
        """Launch the block scatter asynchronously (overlap mode).

        Returns the transfer futures; the caller MUST settle them (via
        :meth:`_settle_scatter`) before rolling back, aborting, or
        committing — ``stored`` keeps growing until every future is
        done.
        """
        transfers, transfer, atransfer = self._scatter_tasks(
            blob_id, nonce, payloads, placements, stored
        )
        assert self.io_engine is not None
        return self.io_engine.submit_each(
            transfer, transfers, afn=atransfer, dest=lambda task: task[0]
        )

    @staticmethod
    def _settle_scatter(futures) -> Optional[BaseException]:
        """Await every scatter transfer; return the first failure.

        Never fails fast: ``stored`` is only complete — and therefore
        safe to roll back or publish — once every transfer has either
        landed or died.  The engines cancel queued siblings once one
        transfer fails, so the *real* failure is preferred over the
        cancellations it caused — the caller's error reporting must
        name the dead provider, not the abandonment.
        """
        error: Optional[BaseException] = None
        cancelled: Optional[BaseException] = None
        for future in futures:
            try:
                future.result()
            except _CANCELLED as exc:
                if cancelled is None:
                    cancelled = exc
            except BaseException as exc:
                if error is None:
                    error = exc
        return error if error is not None else cancelled

    def _store_blocks(
        self,
        blob_id: str,
        nonce: int,
        payloads: list[Payload],
        placements: list[tuple[str, ...]],
        sizes: list[int],
    ) -> list[tuple[str, tuple[str, int, int]]]:
        """Scatter every block replica to its provider; all-or-nothing.

        "If, for some reason, writing of a block fails, then the whole
        write fails." (§III-D)  On failure every replica already stored
        by this write is deleted from its (live) provider and the
        placement allocation is returned, so a failed write leaves no
        orphaned blocks and no phantom load-balancer charge.  Returns
        the ``(provider, block_id)`` pairs stored, so the caller can
        roll back if a *later* protocol step rejects the write.
        """
        stored: list[tuple[str, tuple[str, int, int]]] = []
        transfers, transfer, atransfer = self._scatter_tasks(
            blob_id, nonce, payloads, placements, stored
        )
        try:
            self._map_io(
                transfer, transfers, afn=atransfer, dest=lambda task: task[0]
            )
        except BaseException:
            # BaseException: a KeyboardInterrupt mid-scatter must also
            # leave no orphaned replicas or phantom allocator charges.
            self._rollback_write(stored, placements, sizes)
            raise
        return stored

    def _rollback_write(
        self,
        stored: list[tuple[str, tuple[str, int, int]]],
        placements: list[tuple[str, ...]],
        sizes: list[int],
    ) -> None:
        """Undo the stored half of a failed write (no orphans, §III-D)."""
        # Replicas whose charge must NOT be released here: stranded on
        # an offline provider (the bytes really are there; the GC sweep
        # releases the charge when it reclaims the orphan — exactly
        # once), or already deleted by a racing GC sweep (which then
        # already released the charge — also exactly once).
        keep_charged: set[tuple[int, str]] = set()
        for provider_name, block_id in stored:
            try:
                freed = self.providers[provider_name].delete(block_id)
            except ProviderUnavailable:
                keep_charged.add((block_id[2], provider_name))
                continue
            if freed == 0:
                keep_charged.add((block_id[2], provider_name))
        self.provider_manager.release_placements(
            placements, sizes, skip=frozenset(keep_charged)
        )

    # -- write abort (tombstone protocol, DESIGN.md §7) -----------------------------

    def _abort_ticket(
        self,
        ticket: WriteTicket,
        stored: list[tuple[str, tuple[str, int, int]]],
        placements: list[tuple[str, ...]],
        sizes: list[int],
    ) -> None:
        """Abort an assigned version after a later protocol step failed.

        Order matters: first the data rollback (no orphaned replicas,
        no phantom charges), then the tombstone's filler metadata —
        published *before* the version manager finalises the abort, so
        by the time the watermark can advance over the tombstone its
        tree already resolves — and the state-machine abort last.

        Always a tombstone, never a retraction: ``_publish_metadata``
        may have stored part of the real patch before failing, and a
        retracted (reused) version number would collide with those
        immutable nodes.  The filler patch occupies exactly the same
        canonical keys and force-overwrites them.

        The state-machine abort runs in a ``finally``: even if the
        cleanup I/O is itself interrupted (a second failure mid-abort),
        the version must not stay in flight — a wedged watermark is the
        one outcome this protocol exists to prevent.  Whatever the
        rollback or filler publish did not finish is recoverable later:
        orphaned blocks fall to the next GC sweep, missing filler nodes
        to the anti-entropy scrub (or :meth:`republish_tombstone`).
        """
        try:
            self._rollback_write(stored, placements, sizes)
            spec = self._vman_call(
                lambda: self.version_manager.tombstone_spec(
                    ticket.blob_id, ticket.version, pending=True
                ),
                abort_rounds=1,
            )
            self._publish_tombstone(spec)
        finally:

            def finalize() -> None:
                try:
                    self.version_manager.abort(
                        ticket.blob_id, ticket.version, force_tombstone=True
                    )
                except PublishHookError:
                    # The tombstone is fully recorded; a raising
                    # publication hook must not mask the write's own
                    # failure (which the caller is about to re-raise).
                    pass

            # Its own counted interaction: the abort is a second vman
            # trip after the spec fetch, separated by the filler I/O.
            self._vman_call(finalize, abort_rounds=1)

    def _publish_tombstone(self, spec: TombstoneSpec) -> list[NodeKey]:
        """Force-publish a tombstone's filler patch, best effort.

        Nodes whose every metadata replica is down are skipped and
        returned — the abort is being taken *because* metadata
        providers are failing, so insisting on full publication would
        re-wedge the very protocol this exists to unwedge.  Skipped
        nodes leave their key range unreadable (exactly as the outage
        already made it) until the scrub pass — or a manual
        :meth:`republish_tombstone` — runs after recovery.
        """
        patch = build_tombstone_patch(
            blob_id=spec.blob_id,
            version=spec.version,
            write_start=spec.start_block,
            write_end=spec.end_block,
            size_after=spec.size_after,
            prior_size=spec.prior_size,
            block_size=spec.block_size,
            history=spec.history,
        )
        try:
            return self.metadata.put_fillers(patch)
        except (ProviderError, ReplicationError):
            # The batched force-put reports per-key leftovers instead of
            # raising; anything that still escapes (e.g. a whole-ring
            # failure surfaced by a single-node patch) means nothing
            # landed.
            return [node.key for node in patch]

    def republish_tombstone(self, blob_id: str, version: int) -> list[NodeKey]:
        """Re-publish a tombstone's filler metadata (idempotent).

        The manual escape hatch the anti-entropy scrub (DESIGN.md §8)
        automates — kept for targeted, single-version recovery.
        Run after a metadata-provider outage heals: filler nodes the
        abort could not place (and stale partial nodes of the dead
        write stranded on buckets that were down during the abort) are
        force-overwritten from the version manager's durable spec.
        Returns the keys that still could not be published.

        Branch-aware: a tombstone inherited across a branch point is
        owned by the ancestor BLOB — readers resolve its keys there —
        so the filler is (re)published under the owner's id.
        """
        def fetch_spec() -> TombstoneSpec:
            owner = self.version_manager.owner_of(blob_id, version)
            return self.version_manager.tombstone_spec(owner, version)

        spec = self._vman_call(fetch_spec, abort_rounds=1)
        return self._publish_tombstone(spec)

    def _publish_metadata(
        self,
        ticket: WriteTicket,
        nonce: int,
        sizes: list[int],
        placements: list[tuple[str, ...]],
    ) -> None:
        def leaf_descriptor(index: int) -> BlockDescriptor:
            seq = index - ticket.start_block
            return BlockDescriptor(
                blob_id=ticket.blob_id,
                version=ticket.version,
                index=index,
                size=sizes[seq],
                providers=placements[seq],
                nonce=nonce,
                seq=seq,
            )

        patch = build_patch(
            blob_id=ticket.blob_id,
            version=ticket.version,
            write_start=ticket.start_block,
            write_end=ticket.end_block,
            size_after_blocks=ticket.size_after_blocks,
            history=ticket.history,
            leaf_descriptor=leaf_descriptor,
        )
        self.metadata.put_patch(patch)

    # -- read path (paper §III-C) -----------------------------------------------------

    def snapshot(self, blob_id: str, version: Optional[int] = None) -> SnapshotInfo:
        """Snapshot info; ``None`` means latest published (§III-A.1)."""

        def run() -> SnapshotInfo:
            if version is None:
                return self.version_manager.latest(blob_id)
            return self.version_manager.snapshot_info(blob_id, version)

        return self._vman_call(run, info_rounds=1)

    def latest_version(self, blob_id: str) -> int:
        """Publication watermark for *blob_id*."""
        return self._vman_call(
            lambda: self.version_manager.published_version(blob_id), info_rounds=1
        )

    def read(
        self,
        blob_id: str,
        offset: int = 0,
        size: Optional[int] = None,
        version: Optional[int] = None,
    ) -> bytes:
        """Read bytes from a snapshot (defaults: whole latest snapshot).

        The only sanctioned materialization on the read path: the
        gathered payload becomes user-facing ``bytes`` exactly once,
        accounted as ``read.result`` (DESIGN.md §11).
        """
        return materialize(
            self.read_payload(blob_id, offset, size, version),
            self.copy_stats,
            layer="read.result",
        )

    def read_payload(
        self,
        blob_id: str,
        offset: int = 0,
        size: Optional[int] = None,
        version: Optional[int] = None,
    ) -> Payload:
        """Read as a payload (synthetic-safe variant of :meth:`read`).

        Vectored gather (DESIGN.md §11): ONE ``bytearray`` is
        preallocated for the whole range and every touched block copies
        its covered run directly into its disjoint window — in parallel
        over the I/O engine — so the read path materializes each byte
        exactly once.  Tombstone zero ranges cost nothing (the buffer
        is born zeroed), and a read covering exactly one whole stored
        block aliases the provider's immutable payload with no copy at
        all.
        """
        info = self.snapshot(blob_id, version)
        if size is None:
            size = info.size - offset
        if offset < 0 or size < 0 or offset + size > info.size:
            raise InvalidRange(
                f"read [{offset}, {offset + size}) outside snapshot of {info.size}B"
            )
        if size == 0:
            return BytesPayload(b"")
        descriptors = self._collect_descriptors(info, offset, size)

        if len(descriptors) == 1 and not descriptors[0].is_zero:
            payload = self._fetch_block(descriptors[0])
            slice_ = next(iter(split_range(offset, size, info.block_size)))
            want_end = slice_.start + slice_.length
            if want_end > payload.size:
                raise InvalidRange(
                    f"block {descriptors[0].index} holds {payload.size}B, "
                    f"needed [{slice_.start}, {want_end})"
                )
            if slice_.start == 0 and slice_.length == payload.size:
                # Whole-block read: hand out the stored payload itself
                # — published blocks are immutable, aliasing is free.
                self.copy_stats.record("read.alias", transferred=size)
                return payload

        buffer = bytearray(size)
        # Window the destination in the caller's thread; the per-block
        # gathers then fill disjoint windows concurrently, and each
        # block still fails over between replicas independently inside
        # ``_fetch_block``.
        windows = dest_windows(buffer, offset, size, info.block_size)
        tasks = list(zip(windows, descriptors))

        def finish(task: tuple, payload: Payload) -> Optional[Payload]:
            (slice_, window), descriptor = task
            want_end = slice_.start + slice_.length
            if want_end > payload.size:
                raise InvalidRange(
                    f"block {descriptor.index} holds {payload.size}B, "
                    f"needed [{slice_.start}, {want_end})"
                )
            if isinstance(payload, SyntheticPayload):
                return payload.slice(slice_.start, slice_.length)
            copied = payload.readinto(window, start=slice_.start, length=slice_.length)
            self.copy_stats.record("read.gather", copied=copied, transferred=copied)
            return None

        def gather(task: tuple) -> Optional[Payload]:
            _, descriptor = task
            if descriptor.is_zero:
                # Tombstone filler (DESIGN.md §7): the range reads as
                # zeros, which the preallocated buffer already holds —
                # no provider fetch, no copy.
                return None
            return finish(task, self._fetch_block(descriptor))

        async def agather(task: tuple) -> Optional[Payload]:
            _, descriptor = task
            if descriptor.is_zero:
                return None
            # Only the provider fetch awaits; the readinto fill into the
            # task's disjoint window is sync and cheap, so even 10k of
            # these interleave on the one loop without starving it.
            return finish(task, await self._afetch_block(descriptor))

        # No dest= cap on the gather: failover makes the destination
        # dynamic (the replica actually serving a block is decided
        # inside the fetch, not by the task).
        leftovers = self._map_io(gather, tasks, afn=agather)
        if any(part is not None for part in leftovers):
            # Some blocks were synthetic stand-ins carrying no bytes
            # (benchmark writes): the assembled range is synthetic too,
            # exactly as the old ``concat`` of mixed parts behaved.
            return SyntheticPayload(size, tag="concat")
        return BytesPayload(buffer)

    def key_resolver(self):
        """Map tree-node keys to their owning BLOB (branch lineage)."""
        owner_of = self.version_manager.owner_of

        def resolve(key: NodeKey) -> NodeKey:
            owner = owner_of(key.blob_id, key.version)
            if owner == key.blob_id:
                return key
            return NodeKey(owner, key.version, key.offset, key.span)

        return resolve

    def _collect_descriptors(
        self, info: SnapshotInfo, offset: int, size: int
    ) -> list[AnyBlockDescriptor]:
        lo = offset // info.block_size
        hi = -(-(offset + size) // info.block_size)
        root = NodeKey(info.blob_id, info.version, 0, info.root_span)
        if self.metadata_batching:
            # Level-parallel descent: each frontier resolves in one
            # batched metadata pass — O(tree depth) round trips, with
            # the per-bucket requests fanned over the I/O engine.
            return collect_blocks_batched(
                self.metadata.get_nodes, root, lo, hi,
                key_resolver=self.key_resolver(),
            )
        return collect_blocks(
            self.metadata.get_node, root, lo, hi, key_resolver=self.key_resolver()
        )

    def _fetch_block(self, descriptor: AnyBlockDescriptor) -> Payload:
        if descriptor.is_zero:
            # Tombstone filler (DESIGN.md §7): the range the aborted
            # write would have created reads as zeros, synthesised
            # locally — no provider stores such a block.
            return BytesPayload(bytes(descriptor.size))
        last_error: Optional[Exception] = None
        for provider_name in descriptor.providers:
            provider = self.providers[provider_name]
            if not provider.online:
                last_error = ProviderUnavailable(f"{provider_name} is down")
                continue
            try:
                return provider.get(descriptor.block_id)
            except (KeyError, ProviderUnavailable) as exc:
                # KeyError: replica missing (e.g. rolled back).
                # ProviderUnavailable: the provider went down between
                # the ``online`` check above and the fetch — fall
                # through to the next replica instead of aborting a
                # read that still has live copies.
                last_error = exc
        raise ProviderUnavailable(
            f"no live replica of block {descriptor.block_id} "
            f"(providers {descriptor.providers})"
        ) from last_error

    async def _afetch_block(self, descriptor: AnyBlockDescriptor) -> Payload:
        """Coroutine twin of :meth:`_fetch_block`: identical replica
        failover chain, but each attempt awaits the provider's
        ``aget`` so a slow replica parks this coroutine instead of an
        OS thread."""
        if descriptor.is_zero:
            return BytesPayload(bytes(descriptor.size))
        last_error: Optional[Exception] = None
        for provider_name in descriptor.providers:
            provider = self.providers[provider_name]
            if not provider.online:
                last_error = ProviderUnavailable(f"{provider_name} is down")
                continue
            try:
                return await provider.aget(descriptor.block_id)
            except (KeyError, ProviderUnavailable) as exc:
                last_error = exc
        raise ProviderUnavailable(
            f"no live replica of block {descriptor.block_id} "
            f"(providers {descriptor.providers})"
        ) from last_error

    # -- the Hadoop affinity primitive (paper §IV-C) -------------------------------------

    def block_locations(
        self,
        blob_id: str,
        offset: int,
        size: int,
        version: Optional[int] = None,
    ) -> list[BlockLocation]:
        """Blocks making up a range, with the nodes that store them."""
        info = self.snapshot(blob_id, version)
        if size == 0:
            return []
        if offset < 0 or size < 0 or offset + size > info.size:
            raise InvalidRange(
                f"range [{offset}, {offset + size}) outside snapshot of {info.size}B"
            )
        descriptors = self._collect_descriptors(info, offset, size)
        return [
            BlockLocation(
                offset=s.offset, length=s.length, providers=d.providers
            )
            for s, d in zip(split_range(offset, size, info.block_size), descriptors)
        ]

    # -- diagnostics & failure injection ---------------------------------------------------

    def provider_block_counts(self) -> dict[str, int]:
        """Actually-stored blocks per data provider (Figure 3(b) input)."""
        return {name: p.block_count for name, p in sorted(self.providers.items())}

    def fail_provider(self, name: str) -> None:
        """Take one data provider offline."""
        self.providers[name].fail()
        self.provider_manager.decommission(name)

    def recover_provider(self, name: str) -> None:
        """Bring a failed data provider back (content intact)."""
        self.providers[name].recover()
        self.provider_manager.recover(name)

    def descend_plan(self, blob_id: str, version: int, lo: int, hi: int) -> DescentPlan:
        """Expose a raw descent plan (used by tests and the GC)."""
        info = self.snapshot(blob_id, version)
        root = NodeKey(info.blob_id, info.version, 0, info.root_span)
        return DescentPlan(root, lo, hi)
