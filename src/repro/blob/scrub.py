"""Anti-entropy scrub: the background maintenance pass (DESIGN.md §8).

The failure story so far healed itself *except* for one manual step: a
metadata replica that was down while a write aborted serves stale
real-patch nodes after it recovers, until someone remembers to call
``LocalBlobStore.republish_tombstone``.  The versioning paper's model
(Nicolae et al.) assumes metadata replicas converge on their own; this
module makes them.

One incremental pass (:func:`scrub_store`) unifies every repair the
codebase previously scattered across manual entry points:

1. **tombstone reconciliation** — for every tombstoned version, the
   filler patch is re-derived from the version manager's durable spec
   and force-healed onto every online replica that is missing it *or
   holds a stale real-patch node of the dead write* (the recovered-
   bucket case).  This absorbs ``republish_tombstone`` entirely.
2. **metadata replica reconciliation** — every tree-node key held by
   any online bucket is compared across its online owner replicas;
   lagging replicas (down during the original publish) are re-fed from
   any healthy copy, and divergent *leaf* replicas (a repair rewrote
   the replica set while one bucket was down) are reconciled in favour
   of the copy with the most live block replicas.
3. **block re-replication** — the data-path repair
   (:func:`repro.blob.replication.repair_leaf`) folded into the same
   sweep: every retained snapshot's under-replicated blocks are copied
   back up to target, best effort (a block with no surviving replica is
   reported, not raised, so one lost block cannot stop the pass).

The pass never blocks the foreground read/write path: it takes the
store's control-plane lock only to snapshot version-manager state, it
skips versions that are in flight (their publish is racing, not
broken), it skips keys below the GC floor (healing them could resurrect
swept garbage; deleting them is GC's job — a below-floor node may still
be shared with a descendant branch), and all heavy I/O runs through the
store's bounded :class:`~repro.blob.io_engine.ParallelIOEngine` pool
under an optional :class:`Throttle`, so scrubbing yields to client I/O
instead of starving it.

:class:`MaintenanceDaemon` runs the pass on a period;
``LocalBlobStore.start_maintenance()`` owns one per store and
``repro.cli scrub`` drives a self-contained chaos demonstration.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

from repro.blob.metadata import agreed_value
from repro.blob.replication import live_replicas, repair_leaf
from repro.blob.segment_tree import (
    LeafNode,
    NodeKey,
    TreeNode,
    build_tombstone_patch,
    iter_reachable_batched,
)
from repro.blob.version_manager import TombstoneSpec
from repro.dht.store import MISSING
from repro.errors import (
    BlobError,
    ProviderError,
    ReplicationError,
)
from repro.util.throttle import Throttle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store imports us not)
    from repro.blob.store import LocalBlobStore

__all__ = ["MaintenanceDaemon", "ScrubReport", "Throttle", "scrub_store"]


@dataclass(frozen=True)
class ScrubReport:
    """What one anti-entropy pass examined and healed.

    ``errors`` lists conditions the pass could observe but not repair
    (a block with no live replica, a subtree on an offline bucket);
    they stay for the next pass — or for the GC/operator — and never
    abort the sweep.
    """

    blobs_scanned: int = 0
    #: Tombstoned versions whose filler patch was re-derived and checked.
    tombstones_checked: int = 0
    #: Filler nodes force-healed (missing or stale real-patch replicas).
    filler_republished: int = 0
    #: Ordinary tree-node keys compared across their online replicas.
    nodes_checked: int = 0
    #: Missing replica copies re-fed from a healthy replica.
    replicas_healed: int = 0
    #: Divergent leaf replicas reconciled (stale replica-set tuples).
    conflicts_resolved: int = 0
    #: Non-zero leaves whose block replication level was verified.
    blocks_checked: int = 0
    #: Blocks found under target and copied back up.
    blocks_repaired: int = 0
    #: Individual block copies created while repairing.
    copies_created: int = 0
    #: Keys skipped because their version sits below the blob's GC floor.
    skipped_gc_floor: int = 0
    #: Keys skipped because their version is still in flight.
    skipped_in_flight: int = 0
    #: Metadata buckets that were offline for the whole pass.
    offline_buckets: int = 0
    errors: tuple[str, ...] = ()

    @property
    def healed_total(self) -> int:
        """Everything this pass changed (metadata nodes + block copies)."""
        return (
            self.filler_republished
            + self.replicas_healed
            + self.conflicts_resolved
            + self.copies_created
        )

    @property
    def clean(self) -> bool:
        """True when the pass found nothing to heal and no errors."""
        return self.healed_total == 0 and not self.errors


@dataclass
class _BlobPlan:
    """Control-plane snapshot of one BLOB, taken under the store lock."""

    blob_id: str
    gc_floor: int
    published: int
    replication: int
    in_flight: frozenset[int]
    tombstone_specs: list[TombstoneSpec] = field(default_factory=list)


def _snapshot_control_plane(store: "LocalBlobStore") -> list[_BlobPlan]:
    """One short critical section: everything the pass needs from the
    version manager, so no scrub I/O ever holds the control lock."""
    vm = store.version_manager
    plans = []
    with store._lock:
        for blob_id in vm.blob_ids():
            state = vm.blob(blob_id)
            plan = _BlobPlan(
                blob_id=blob_id,
                gc_floor=state.gc_floor,
                published=state.published,
                replication=state.replication,
                in_flight=frozenset(vm.in_flight(blob_id)),
            )
            for version in sorted(state.tombstoned):
                if version < state.gc_floor:
                    continue  # its tree was swept; republishing resurrects garbage
                if vm.owner_of(blob_id, version) != blob_id:
                    continue  # inherited across a branch: the ancestor owns the keys
                plan.tombstone_specs.append(vm.tombstone_spec(blob_id, version))
            plans.append(plan)
    return plans


#: Keys per batched replica-enumeration pass in the reconciliation
#: phase: large enough to amortize the round trip, small enough that a
#: stop probe or throttle tick is never more than a chunk away.
_RECONCILE_CHUNK = 64

#: "Keep going?" probe threaded through every scrub loop; the daemon
#: wires it to its stop event so shutdown never waits out a full pass.
StopProbe = Callable[[], bool]


def _never_stop() -> bool:
    return False


def _scrub_tombstones(
    store: "LocalBlobStore",
    plan: _BlobPlan,
    throttle: Optional[Throttle],
    counters: dict,
    errors: list[str],
    should_stop: StopProbe,
) -> set[NodeKey]:
    """Phase 1: heal every tombstone's filler patch in place.

    Force-overwrites any online replica that is missing a filler node
    or still holds a stale real-patch node of the dead write — exactly
    what the manual ``republish_tombstone`` did, plus the per-replica
    stale-node case it could not see.  Returns the filler key set so
    the reconciliation phase skips them.
    """
    filler_keys: set[NodeKey] = set()
    for spec in plan.tombstone_specs:
        counters["tombstones_checked"] += 1
        patch = build_tombstone_patch(
            blob_id=spec.blob_id,
            version=spec.version,
            write_start=spec.start_block,
            write_end=spec.end_block,
            size_after=spec.size_after,
            prior_size=spec.prior_size,
            block_size=spec.block_size,
            history=spec.history,
        )
        # One batched DHT pass answers the whole patch's replica state
        # (previously one enumeration round trip per filler node).
        replica_maps = store.metadata.replica_nodes_many(
            [node.key for node in patch]
        )
        for node in patch:
            if should_stop():
                return filler_keys
            filler_keys.add(node.key)
            if throttle is not None:
                throttle.tick()
            for bucket_name, value in replica_maps[node.key].items():
                if value is MISSING or value != node:
                    if _heal(store, bucket_name, node, errors):
                        counters["filler_republished"] += 1
    return filler_keys


def _heal(
    store: "LocalBlobStore", bucket_name: str, node: TreeNode, errors: list[str]
) -> bool:
    """One targeted replica write, best effort.

    A bucket dying between the pass's enumeration and this write must
    not abort the sweep (the same mid-sweep rule the GC follows): the
    failure is recorded and the bucket heals on the first pass after
    it recovers.  Returns whether the write landed.
    """
    try:
        store.metadata.heal_replica(bucket_name, node)
        return True
    except (ProviderError, ReplicationError) as exc:
        errors.append(f"heal of {node.key} on {bucket_name} failed: {exc}")
        return False


def _reconcile_leaf_divergence(
    store: "LocalBlobStore", values: dict[str, object]
) -> Optional[TreeNode]:
    """Authority for divergent leaf replicas: same immutable block, but
    replica-set tuples rewritten by repairs while a bucket was down.
    The copy naming the most live block replicas wins (freshest view);
    anything else differing is an immutability violation we refuse to
    guess about."""
    leaves = [v for v in values.values() if isinstance(v, LeafNode)]
    if len(leaves) != sum(1 for v in values.values() if v is not MISSING):
        return None
    identities = {
        (leaf.block.block_id, leaf.block.size, leaf.block.index)
        for leaf in leaves
        if not leaf.block.is_zero
    }
    if len(identities) != 1:
        return None
    return max(leaves, key=lambda leaf: len(live_replicas(store, leaf.block)))


def _scrub_metadata_replicas(
    store: "LocalBlobStore",
    plans: dict[str, _BlobPlan],
    skip_keys: set[NodeKey],
    throttle: Optional[Throttle],
    counters: dict,
    errors: list[str],
    should_stop: StopProbe,
) -> None:
    """Phase 2: converge every remaining key's online replica set.

    Keys that survive the cheap skip filters are examined in batches:
    one :meth:`~repro.blob.metadata.MetadataService.replica_nodes_many`
    pass answers a whole chunk (previously one replica enumeration per
    key), while healing stays per-replica and best-effort.
    """
    eligible: list[NodeKey] = []
    for key in sorted(store.metadata.all_node_keys(), key=repr):
        if key in skip_keys:
            continue
        plan = plans.get(key.blob_id)
        if plan is None:
            continue  # foreign key (test debris); nothing authoritative to say
        if key.version in plan.in_flight:
            counters["skipped_in_flight"] += 1
            continue  # publish still racing — absence is not damage yet
        if key.version < plan.gc_floor:
            counters["skipped_gc_floor"] += 1
            continue  # below the floor: GC's to delete, never ours to heal
        eligible.append(key)

    for start in range(0, len(eligible), _RECONCILE_CHUNK):
        if should_stop():
            return
        chunk = eligible[start : start + _RECONCILE_CHUNK]
        replica_maps = store.metadata.replica_nodes_many(chunk)
        for key in chunk:
            if should_stop():
                return
            values = replica_maps[key]
            if not values:
                continue  # every owner offline; nothing to compare
            counters["nodes_checked"] += 1
            if throttle is not None:
                throttle.tick()
            if all(v is MISSING for v in values.values()):
                # The only holder went offline since enumeration: not a
                # conflict, just nothing to heal from until it recovers.
                errors.append(f"no online replica holds {key}; recheck after recovery")
                continue
            authority = agreed_value(values)
            divergent = authority is None
            if divergent:
                authority = _reconcile_leaf_divergence(store, values)
                if authority is None:
                    errors.append(
                        f"unreconcilable divergence at {key}: "
                        f"{sorted(values, key=repr)} disagree on immutable content"
                    )
                    continue
            for bucket_name, value in values.items():
                if value is MISSING or value != authority:
                    if _heal(store, bucket_name, authority, errors):
                        if divergent:
                            counters["conflicts_resolved"] += 1
                        else:
                            counters["replicas_healed"] += 1


def _scrub_blocks(
    store: "LocalBlobStore",
    plan: _BlobPlan,
    seen: set[NodeKey],
    throttle: Optional[Throttle],
    counters: dict,
    errors: list[str],
    should_stop: StopProbe,
) -> None:
    """Phase 3: restore block replication over every retained snapshot.

    Walks each retained version's tree with a shared seen-set so nodes
    shared between snapshots (the common case) are checked exactly
    once.  Repair failures are recorded, never raised: the sweep is
    incremental by contract.
    """
    resolver = store.key_resolver()
    for version in range(max(plan.gc_floor, 1), plan.published + 1):
        try:
            info = store.snapshot(plan.blob_id, version)
        except BlobError as exc:
            errors.append(f"{plan.blob_id} v{version}: snapshot unavailable: {exc}")
            continue
        if info.size == 0:
            continue
        root = NodeKey(info.blob_id, info.version, 0, info.root_span)
        try:
            # Level-batched walk with the shared seen-set as its prune
            # list: subtrees already checked under another version are
            # neither re-fetched nor re-walked.
            nodes = list(
                iter_reachable_batched(
                    store.metadata.get_nodes,
                    root,
                    key_resolver=resolver,
                    skip=seen,
                )
            )
        except (BlobError, ProviderError) as exc:
            # A subtree on an offline bucket: the tree heals when the
            # bucket recovers (phase 2 of a later pass); record and go on.
            errors.append(f"{plan.blob_id} v{version}: tree unreadable: {exc}")
            continue
        for node in nodes:
            if should_stop():
                return
            seen.add(node.key)
            if not isinstance(node, LeafNode) or node.block.is_zero:
                continue
            counters["blocks_checked"] += 1
            if throttle is not None:
                throttle.tick()
            try:
                copies = repair_leaf(store, node, plan.replication)
            except (ReplicationError, ProviderError) as exc:
                errors.append(f"{plan.blob_id} v{version}: {exc}")
                continue
            if copies:
                counters["blocks_repaired"] += 1
                counters["copies_created"] += copies


def scrub_store(
    store: "LocalBlobStore",
    throttle: Optional[Throttle] = None,
    should_stop: Optional[StopProbe] = None,
) -> ScrubReport:
    """Run one full anti-entropy pass over every BLOB of *store*.

    Safe to run concurrently with reads, writes and other scrub passes
    (healing is idempotent: it only ever writes values derivable from
    durable state).  With *throttle* set, the pass paces itself so
    foreground I/O keeps priority on the shared engine pool.  A
    *should_stop* probe returning True makes the pass return early
    with whatever it healed so far (every heal is independently
    consistent, so a truncated pass is just a smaller pass).
    """
    if should_stop is None:
        should_stop = _never_stop
    plans = _snapshot_control_plane(store)
    counters = {
        "tombstones_checked": 0,
        "filler_republished": 0,
        "nodes_checked": 0,
        "replicas_healed": 0,
        "conflicts_resolved": 0,
        "blocks_checked": 0,
        "blocks_repaired": 0,
        "copies_created": 0,
        "skipped_gc_floor": 0,
        "skipped_in_flight": 0,
    }
    errors: list[str] = []

    filler_keys: set[NodeKey] = set()
    for plan in plans:
        filler_keys |= _scrub_tombstones(
            store, plan, throttle, counters, errors, should_stop
        )

    _scrub_metadata_replicas(
        store,
        {p.blob_id: p for p in plans},
        filler_keys,
        throttle,
        counters,
        errors,
        should_stop,
    )

    seen: set[NodeKey] = set()
    for plan in plans:
        if should_stop():
            break
        _scrub_blocks(store, plan, seen, throttle, counters, errors, should_stop)

    dht = store.metadata.store
    online = sum(1 for _ in dht.online_buckets())
    return ScrubReport(
        blobs_scanned=len(plans),
        offline_buckets=len(dht.buckets) - online,
        errors=tuple(errors),
        **counters,
    )


class MaintenanceDaemon:
    """Background thread running :func:`scrub_store` on a period.

    The daemon is deliberately boring: one pass per ``interval``
    seconds, each pass throttled to ``ops_per_sec`` (None = unpaced),
    failures recorded on :attr:`last_error` without killing the loop.
    ``LocalBlobStore.start_maintenance()`` creates, starts and owns
    one; ``store.close()`` stops it.
    """

    def __init__(
        self,
        store: "LocalBlobStore",
        interval: float = 1.0,
        ops_per_sec: Optional[float] = None,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self._store = store
        self.interval = interval
        self.ops_per_sec = ops_per_sec
        self._stop = threading.Event()
        # The stop event interrupts throttle sleeps and truncates the
        # in-flight pass, so stop()/close() return promptly instead of
        # waiting out a long throttled sweep.
        self.throttle = (
            Throttle(ops_per_sec, interrupt=self._stop)
            if ops_per_sec is not None
            else None
        )
        self._thread: Optional[threading.Thread] = None
        self._state_lock = threading.Lock()
        self.passes = 0
        self.last_report: Optional[ScrubReport] = None
        self.last_error: Optional[BaseException] = None

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "MaintenanceDaemon":
        """Start the background loop (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="blob-scrub", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, wait: bool = True) -> None:
        """Stop the loop; with *wait*, join the thread (idempotent)."""
        self._stop.set()
        if wait and self._thread is not None and self._thread.is_alive():
            self._thread.join()

    @property
    def running(self) -> bool:
        """Whether the background thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "MaintenanceDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the loop -----------------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            self.run_once()
            self._stop.wait(self.interval)

    def run_once(self) -> Optional[ScrubReport]:
        """One synchronous pass (also the unit the loop runs).

        Returns the report, or ``None`` if the pass itself raised — the
        exception lands on :attr:`last_error` instead of propagating,
        because a maintenance loop that dies on the first transient
        fault protects nothing.
        """
        try:
            report = scrub_store(
                self._store, throttle=self.throttle, should_stop=self._stop.is_set
            )
        except Exception as exc:
            with self._state_lock:
                self.last_error = exc
            return None
        with self._state_lock:
            self.passes += 1
            self.last_report = report
            self.last_error = None
        return report
