"""Versioned segment-tree metadata (paper §III-A.3, Figure 1).

Every snapshot version of a BLOB has a binary segment tree over its
blocks: the root covers the whole BLOB, each inner node halves its
range, each leaf covers exactly one block and carries that block's
:class:`~repro.blob.block.BlockDescriptor`.  Tree nodes are **immutable**
and identified by ``(blob_id, version, offset, span)`` (offsets/spans in
block units, spans are powers of two) — precisely the DHT key the paper
describes.

Subtree sharing is what makes versioning cheap: a write for version *v*
creates new nodes **only along the paths covering its range**; children
outside the range are *references to older versions' nodes*.  The
version label of such a reference is computable without reading any
other writer's metadata: it is the highest version ``w <= v`` whose
write range intersects the child's range.  That is how BlobSeer lets a
writer "predict the values corresponding to the metadata that is being
written by concurrent writers" (§III-D) from the version manager's
hints alone — and it is implemented here by :func:`latest_intersecting`
over the write-history records the version manager hands out.

Reading is the inverse: descend from the root of the requested version,
following child references into older versions wherever the range was
not rewritten, collecting leaves.  :class:`DescentPlan` exposes the
traversal as an explicit frontier so the same algorithm drives both the
in-process store (plain loop) and the simulated client (parallel RPC
fetches per tree level).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.blob.block import AnyBlockDescriptor, BlockDescriptor, ZeroBlockDescriptor
from repro.errors import BlobError, InvalidRange
from repro.util.chunks import block_count

__all__ = [
    "NodeKey",
    "LeafNode",
    "RedirectLeaf",
    "InnerNode",
    "TreeNode",
    "root_span",
    "latest_intersecting",
    "build_patch",
    "build_tombstone_patch",
    "DescentPlan",
    "collect_blocks",
    "collect_blocks_batched",
    "iter_reachable",
    "iter_reachable_batched",
]


@dataclass(frozen=True)
class NodeKey:
    """DHT identity of a tree node: version + covered block range.

    ``offset`` is a multiple of ``span``; ``span`` is a power of two
    (canonical segment-tree decomposition, version-independent).
    """

    blob_id: str
    version: int
    offset: int
    span: int

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ValueError(f"tree nodes exist for versions >= 1, got {self.version}")
        if self.span < 1 or (self.span & (self.span - 1)) != 0:
            raise ValueError(f"span must be a positive power of two, got {self.span}")
        if self.offset < 0 or self.offset % self.span != 0:
            raise ValueError(
                f"offset must be a non-negative multiple of span, got "
                f"offset={self.offset} span={self.span}"
            )

    @property
    def end(self) -> int:
        """One past the last covered block."""
        return self.offset + self.span

    def covers(self, block_index: int) -> bool:
        """Whether this node's range contains *block_index*."""
        return self.offset <= block_index < self.end


@dataclass(frozen=True)
class LeafNode:
    """A leaf: covers one block and points at its descriptor.

    The descriptor is either a stored block (:class:`BlockDescriptor`)
    or a reader-synthesised zero block (:class:`ZeroBlockDescriptor`,
    published by tombstoned versions — see :func:`build_tombstone_patch`).
    """

    key: NodeKey
    block: AnyBlockDescriptor

    def __post_init__(self) -> None:
        if self.key.span != 1:
            raise ValueError(f"leaf span must be 1, got {self.key.span}")
        if self.block.index != self.key.offset:
            raise ValueError(
                f"leaf at offset {self.key.offset} carries block index {self.block.index}"
            )


@dataclass(frozen=True)
class RedirectLeaf:
    """A leaf-position node that defers to an older version's leaf.

    Tombstoned versions use redirects for blocks their dead write would
    have *overwritten*: the tombstone's content there is the woven
    prior state, and the prior leaf's descriptor is unknown to the
    aborting writer (it may even still be in flight), so the filler
    node names only the target *version* — exactly like an
    :class:`InnerNode` child reference, but at span 1.  Descents follow
    the redirect; chains (a redirect into an older tombstone) terminate
    because target versions strictly decrease.
    """

    key: NodeKey
    target_version: int

    def __post_init__(self) -> None:
        if self.key.span != 1:
            raise ValueError(f"redirect span must be 1, got {self.key.span}")
        if not (1 <= self.target_version < self.key.version):
            raise ValueError(
                f"redirect target must be an older version >= 1, got "
                f"{self.target_version} from {self.key.version}"
            )

    @property
    def target_key(self) -> NodeKey:
        """Key of the leaf this redirect resolves to."""
        return NodeKey(self.key.blob_id, self.target_version, self.key.offset, 1)


@dataclass(frozen=True)
class InnerNode:
    """An inner node: version references to its two half-range children.

    ``left_version``/``right_version`` name the snapshot whose node
    covers the child range (subtree sharing); ``None`` means the range
    lies entirely beyond the BLOB's size — no subtree exists there.
    """

    key: NodeKey
    left_version: Optional[int]
    right_version: Optional[int]

    def __post_init__(self) -> None:
        if self.key.span < 2:
            raise ValueError(f"inner span must be >= 2, got {self.key.span}")
        if self.left_version is None and self.right_version is not None:
            raise ValueError("right subtree cannot exist without the left one")

    @property
    def half(self) -> int:
        """Span of each child."""
        return self.key.span // 2

    @property
    def left_key(self) -> Optional[NodeKey]:
        """Key of the left child (None if absent)."""
        if self.left_version is None:
            return None
        return NodeKey(self.key.blob_id, self.left_version, self.key.offset, self.half)

    @property
    def right_key(self) -> Optional[NodeKey]:
        """Key of the right child (None if absent)."""
        if self.right_version is None:
            return None
        return NodeKey(
            self.key.blob_id, self.right_version, self.key.offset + self.half, self.half
        )

    def children(self) -> list[NodeKey]:
        """Existing child keys, left to right."""
        return [k for k in (self.left_key, self.right_key) if k is not None]


TreeNode = Union[LeafNode, RedirectLeaf, InnerNode]


def root_span(size_blocks: int) -> int:
    """Root coverage for a BLOB of *size_blocks* blocks (next power of 2).

    An empty BLOB has no tree; by convention its span is 1 so a tree can
    be rooted as soon as the first block arrives.
    """
    if size_blocks < 0:
        raise ValueError(f"size_blocks must be >= 0, got {size_blocks}")
    span = 1
    while span < size_blocks:
        span *= 2
    return span


#: One write-history record as hinted by the version manager:
#: (version, first_block, last_block_exclusive).
HistoryRecord = tuple[int, int, int]


def latest_intersecting(
    history: Sequence[HistoryRecord], lo: int, hi: int, at_most: int
) -> Optional[int]:
    """Highest version ``<= at_most`` whose write range intersects [lo, hi).

    This is the reference-prediction rule of §III-D: it determines which
    snapshot's node a new tree must point at for an untouched range,
    even while that snapshot's metadata is still being written by a
    concurrent writer.
    """
    best: Optional[int] = None
    for version, start, end in history:
        if version <= at_most and start < hi and end > lo:
            if best is None or version > best:
                best = version
    return best


def build_patch(
    blob_id: str,
    version: int,
    write_start: int,
    write_end: int,
    size_after_blocks: int,
    history: Sequence[HistoryRecord],
    leaf_descriptor: Callable[[int], BlockDescriptor],
) -> list[TreeNode]:
    """All tree nodes version *v* must publish for its write.

    Args:
        blob_id: the BLOB.
        version: the snapshot being created.
        write_start, write_end: written block range (block units,
            end-exclusive, non-empty).
        size_after_blocks: BLOB size in blocks once this snapshot is
            complete (defines the root span).
        history: write-history records for versions ``< version``
            (version-manager hints); own range is implied.
        leaf_descriptor: callback giving the :class:`BlockDescriptor`
            for each written absolute block index.

    Returns:
        New nodes, leaves before parents (children-first order), root
        last — safe to store in order.
    """
    return _build_nodes(
        blob_id,
        version,
        write_start,
        write_end,
        size_after_blocks,
        history,
        lambda key: LeafNode(key=key, block=leaf_descriptor(key.offset)),
    )


def build_tombstone_patch(
    blob_id: str,
    version: int,
    write_start: int,
    write_end: int,
    size_after: int,
    prior_size: int,
    block_size: int,
    history: Sequence[HistoryRecord],
) -> list[TreeNode]:
    """The filler patch a tombstoned (aborted) version must publish.

    Later writers already wove references to *version*'s canonical
    nodes from the version-manager hints, so the tombstone publishes a
    node at **every** canonical position its real patch would have
    occupied — same keys, different content:

    * blocks the dead write would have *overwritten* (fully covered by
      the prior woven state) become :class:`RedirectLeaf` nodes
      pointing at the latest prior version intersecting them;
    * blocks it would have *created* (beyond the prior size, or a
      prior trailing partial block the dead write extended) become
      zero-filled leaves readers synthesise locally;
    * ranges outside the dead write are ordinary version references,
      exactly as in :func:`build_patch`.

    Everything is computed from version-manager hints alone — no DHT
    read is needed, which matters because the abort is usually being
    taken *because* metadata providers are failing.

    Args:
        size_after: BLOB size in bytes had the write succeeded (the
            tombstone keeps it: later appends fixed their offsets on it).
        prior_size: BLOB size in bytes of the preceding snapshot.
        history: write-history records for versions ``< version``.
    """
    size_after_blocks = block_count(size_after, block_size)

    def filler_leaf(key: NodeKey) -> TreeNode:
        index = key.offset
        need = min(block_size, size_after - index * block_size)
        prior_len = min(block_size, max(0, prior_size - index * block_size))
        target = latest_intersecting(history, index, index + 1, at_most=version - 1)
        if target is not None and prior_len == need:
            return RedirectLeaf(key=key, target_version=target)
        # No prior coverage — or partial coverage the dead write would
        # have extended, which block-granularity sharing cannot express:
        # the tombstone defines the whole block as zeros (DESIGN.md §7).
        return LeafNode(
            key=key,
            block=ZeroBlockDescriptor(
                blob_id=blob_id, version=version, index=index, size=need
            ),
        )

    return _build_nodes(
        blob_id,
        version,
        write_start,
        write_end,
        size_after_blocks,
        history,
        filler_leaf,
    )


def _build_nodes(
    blob_id: str,
    version: int,
    write_start: int,
    write_end: int,
    size_after_blocks: int,
    history: Sequence[HistoryRecord],
    leaf_node: Callable[[NodeKey], TreeNode],
) -> list[TreeNode]:
    """Shared recursion behind :func:`build_patch` and the tombstone patch."""
    if write_end <= write_start:
        raise InvalidRange(f"empty write range [{write_start}, {write_end})")
    if write_start < 0:
        raise InvalidRange(f"negative write start {write_start}")
    if write_end > size_after_blocks:
        raise InvalidRange(
            f"write range [{write_start}, {write_end}) beyond size {size_after_blocks}"
        )
    span = root_span(size_after_blocks)
    full_history = list(history) + [(version, write_start, write_end)]
    nodes: list[TreeNode] = []

    def build(offset: int, node_span: int) -> None:
        # Invariant: [offset, offset+node_span) intersects the write range.
        key = NodeKey(blob_id, version, offset, node_span)
        if node_span == 1:
            nodes.append(leaf_node(key))
            return
        half = node_span // 2
        child_versions: list[Optional[int]] = []
        for child_offset in (offset, offset + half):
            child_end = child_offset + half
            if child_offset < write_end and child_end > write_start:
                build(child_offset, half)
                child_versions.append(version)
            elif child_offset < size_after_blocks:
                ref = latest_intersecting(
                    full_history, child_offset, child_end, at_most=version
                )
                if ref is None:  # pragma: no cover - excluded by no-holes rule
                    raise BlobError(
                        f"no snapshot covers blocks [{child_offset}, {child_end}) "
                        f"of blob {blob_id!r}"
                    )
                child_versions.append(ref)
            else:
                child_versions.append(None)
        nodes.append(
            InnerNode(key=key, left_version=child_versions[0], right_version=child_versions[1])
        )

    build(0, span)
    return nodes


class DescentPlan:
    """Iterative range traversal decoupled from node fetching.

    Usage (local or simulated — the driver chooses how to fetch)::

        plan = DescentPlan(root_key, lo, hi)
        while not plan.done:
            frontier = plan.take_frontier()        # keys to fetch now
            for key in frontier:
                plan.feed(key, fetch(key))         # any fetch mechanism
        blocks = plan.blocks()                     # ordered descriptors

    The frontier exposes one tree level at a time, so a simulated client
    can issue all fetches of a level in parallel — matching BlobSeer's
    "requests sent asynchronously and processed in parallel" read path.

    ``key_resolver`` supports *branched* BLOBs: child references name
    only a version, and on a branch, versions up to the branch point
    belong to the ancestor BLOB.  The resolver maps a child key to the
    blob that owns its version (default: same blob).
    """

    def __init__(
        self,
        root_key: NodeKey,
        lo: int,
        hi: int,
        key_resolver: Optional[Callable[[NodeKey], NodeKey]] = None,
    ):
        if lo < 0 or hi < lo:
            raise InvalidRange(f"bad block range [{lo}, {hi})")
        if hi > root_key.end:
            raise InvalidRange(
                f"range [{lo}, {hi}) outside root coverage [0, {root_key.end})"
            )
        self.lo = lo
        self.hi = hi
        self._resolve = key_resolver if key_resolver is not None else (lambda k: k)
        self._frontier: list[NodeKey] = [] if lo == hi else [self._resolve(root_key)]
        self._outstanding: set[NodeKey] = set()
        self._leaves: list[LeafNode] = []

    @property
    def done(self) -> bool:
        """True when no fetches remain."""
        return not self._frontier and not self._outstanding

    def take_frontier(self) -> list[NodeKey]:
        """Keys to fetch next; they become outstanding until fed back."""
        frontier, self._frontier = self._frontier, []
        self._outstanding.update(frontier)
        return frontier

    def feed(self, key: NodeKey, node: TreeNode) -> None:
        """Supply a fetched node; schedules its relevant children."""
        if key not in self._outstanding:
            raise BlobError(f"fed node {key} that was not requested")
        if node.key != key:
            raise BlobError(f"fetched node {node.key} does not match requested {key}")
        self._outstanding.discard(key)
        if isinstance(node, LeafNode):
            self._leaves.append(node)
            return
        if isinstance(node, RedirectLeaf):
            # Tombstone filler: the block lives under an older version's
            # leaf — chase it like one more frontier level.
            self._frontier.append(self._resolve(node.target_key))
            return
        for child in node.children():
            if child.offset < self.hi and child.end > self.lo:
                self._frontier.append(self._resolve(child))

    def blocks(self) -> list[AnyBlockDescriptor]:
        """Collected block descriptors in ascending block order."""
        if not self.done:
            raise BlobError("descent not finished")
        leaves = sorted(self._leaves, key=lambda leaf: leaf.key.offset)
        expected = range(self.lo, self.hi)
        got = [leaf.key.offset for leaf in leaves]
        if got != list(expected):
            raise BlobError(
                f"descent returned blocks {got}, expected {list(expected)}"
            )
        return [leaf.block for leaf in leaves]


def collect_blocks(
    fetch: Callable[[NodeKey], TreeNode],
    root_key: NodeKey,
    lo: int,
    hi: int,
    key_resolver: Optional[Callable[[NodeKey], NodeKey]] = None,
) -> list[AnyBlockDescriptor]:
    """Synchronous driver over :class:`DescentPlan` (functional layer)."""
    plan = DescentPlan(root_key, lo, hi, key_resolver=key_resolver)
    while not plan.done:
        for key in plan.take_frontier():
            plan.feed(key, fetch(key))
    return plan.blocks()


def collect_blocks_batched(
    fetch_many: Callable[[list[NodeKey]], dict[NodeKey, TreeNode]],
    root_key: NodeKey,
    lo: int,
    hi: int,
    key_resolver: Optional[Callable[[NodeKey], NodeKey]] = None,
) -> list[AnyBlockDescriptor]:
    """Level-parallel driver over :class:`DescentPlan`.

    Each frontier — one tree level, plus any redirect targets the
    previous level surfaced — is resolved through *fetch_many* in a
    single batched metadata pass, so the whole descent costs O(tree
    depth) round trips instead of O(nodes visited) (DESIGN.md §9).
    """
    plan = DescentPlan(root_key, lo, hi, key_resolver=key_resolver)
    while not plan.done:
        frontier = list(dict.fromkeys(plan.take_frontier()))
        nodes = fetch_many(frontier)
        for key in frontier:
            plan.feed(key, nodes[key])
    return plan.blocks()


def iter_reachable(
    fetch: Callable[[NodeKey], TreeNode],
    root_key: NodeKey,
    key_resolver: Optional[Callable[[NodeKey], NodeKey]] = None,
) -> Iterable[TreeNode]:
    """Every node reachable from *root_key* (GC marking traversal)."""
    resolve = key_resolver if key_resolver is not None else (lambda k: k)
    stack = [resolve(root_key)]
    while stack:
        node = fetch(stack.pop())
        yield node
        if isinstance(node, InnerNode):
            stack.extend(resolve(child) for child in node.children())
        elif isinstance(node, RedirectLeaf):
            stack.append(resolve(node.target_key))


def iter_reachable_batched(
    fetch_many: Callable[[list[NodeKey]], dict[NodeKey, TreeNode]],
    root_key: NodeKey,
    key_resolver: Optional[Callable[[NodeKey], NodeKey]] = None,
    skip: Optional[set[NodeKey]] = None,
) -> Iterable[TreeNode]:
    """:func:`iter_reachable`, one batched fetch per tree level.

    *skip* keys are neither fetched nor descended into: traversals that
    dedupe shared subtrees (GC marking, the scrub's block sweep) pass
    their seen-set, which both avoids re-yielding a node AND prunes its
    whole subtree — a node already marked had its subtree marked too.
    The caller may grow *skip* while consuming the iterator; keys
    already fetched for the current level are still yielded.
    """
    resolve = key_resolver if key_resolver is not None else (lambda k: k)
    frontier = [resolve(root_key)]
    while frontier:
        level = [
            key
            for key in dict.fromkeys(frontier)
            if skip is None or key not in skip
        ]
        if not level:
            return
        nodes = fetch_many(level)
        frontier = []
        for key in level:
            node = nodes[key]
            yield node
            if isinstance(node, InnerNode):
                frontier.extend(resolve(child) for child in node.children())
            elif isinstance(node, RedirectLeaf):
                frontier.append(resolve(node.target_key))
