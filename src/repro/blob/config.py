"""StoreConfig: the validated construction surface of a blob store.

``LocalBlobStore.__init__`` accreted sixteen loose keyword knobs over
six PRs.  Most combinations are fine; a few are silently broken — an
``overlap_publish`` store with no I/O engine never overlaps anything, a
``publish_window`` without ``group_commit`` is dead weight, and a
``replication`` level above the provider count constructs happily and
then fails on the first write.  This module consolidates the knobs into
one documented dataclass whose :meth:`~StoreConfig.validate` rejects
the broken combinations up front with actionable messages.

``LocalBlobStore(config=StoreConfig(...))`` is the canonical
construction path; the legacy keywords still work through a
deprecation shim that round-trips them into a ``StoreConfig``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence, Union

from repro.blob.provider_manager import PlacementPolicy, _POLICIES
from repro.util.bytesize import MB, parse_size

__all__ = ["StoreConfig", "DEFAULT_BLOCK_SIZE"]

#: The paper's block size: 64 MB, "equal to the chunk size in HDFS".
DEFAULT_BLOCK_SIZE = 64 * MB


def _resolve_names(spec: Union[int, Sequence[str]], prefix: str) -> list[str]:
    """Expand a count into generated names; pass explicit names through."""
    if isinstance(spec, bool):  # bool is an int; catch the likely typo
        raise ValueError(f"{prefix} spec must be a count or name list, got {spec!r}")
    if isinstance(spec, int):
        return [f"{prefix}-{i:03d}" for i in range(spec)]
    return list(spec)


@dataclass
class StoreConfig:
    """Everything a :class:`~repro.blob.store.LocalBlobStore` is built from.

    One field per former constructor keyword, same names and defaults,
    so migration is mechanical: ``LocalBlobStore(a=1, b=2)`` becomes
    ``LocalBlobStore(config=StoreConfig(a=1, b=2))``.

    Args:
        data_providers: count, or explicit provider names.
        metadata_providers: count, or explicit names, of DHT buckets.
        block_size: striping unit (default 64 MB; accepts "64MB" forms).
        replication: data-block replica count.
        metadata_replication: DHT replica count for tree nodes.
        placement: policy name or instance (default BlobSeer round-robin).
        seed: seed for any stochastic policy (random placement).
        io_workers: scatter-gather pool threads (0 = inline I/O).
            Under ``io_scheduler="async"`` this sizes the engine's
            small helper pool instead (read-ahead submit work).
        io_scheduler: data-plane scheduler backend — ``"threads"``
            (the :class:`~repro.blob.io_engine.ParallelIOEngine`
            pool; concurrency costs one OS thread per in-flight
            transfer) or ``"async"`` (the single-event-loop
            :class:`~repro.blob.async_engine.AsyncIOEngine`;
            in-flight transfers are coroutines, DESIGN.md §13).
        max_in_flight: in-flight transfer window of the async
            scheduler (ignored under ``"threads"``, where
            ``io_workers`` is the cap).
        provider_latency: simulated service time per data-provider op.
        metadata_latency: simulated service time per metadata-bucket
            *request* — a batched multi-get/put pays it once per bucket
            per round (DESIGN.md §9).
        metadata_cache_nodes: capacity of the immutable node cache
            (DESIGN.md §9); 0 disables it.
        metadata_batching: route descents through the level-batched
            metadata pipeline (O(tree-depth) round trips); ``False``
            keeps the per-node descent, the ablation baseline.
        vman_latency: simulated service time per serialized
            version-manager *interaction* (DESIGN.md §10).
        group_commit: batch concurrent writers' version assignments and
            completion reports through the publish pipeline; ``False``
            keeps per-writer interactions, the ablation baseline.
        publish_window: seconds the group-commit leader waits for more
            writers to join its batch (0 = opportunistic batching).
        overlap_publish: overlap the block scatter with metadata
            weaving/publication; requires ``io_workers > 0``.
    """

    data_providers: Union[int, Sequence[str]] = 16
    metadata_providers: Union[int, Sequence[str]] = 4
    block_size: Union[int, str] = DEFAULT_BLOCK_SIZE
    replication: int = 1
    metadata_replication: int = 1
    placement: Union[str, PlacementPolicy] = "round_robin"
    seed: int = 0
    io_workers: int = 0
    io_scheduler: str = "threads"
    max_in_flight: int = 1024
    provider_latency: float = 0.0
    metadata_latency: float = 0.0
    metadata_cache_nodes: int = 1024
    metadata_batching: bool = True
    vman_latency: float = 0.0
    group_commit: bool = True
    publish_window: float = 0.0
    overlap_publish: bool = False

    # -- derived views ---------------------------------------------------------

    def provider_names(self) -> list[str]:
        """Data-provider names (counts expand to ``provider-NNN``)."""
        return _resolve_names(self.data_providers, "provider")

    def metadata_bucket_names(self) -> list[str]:
        """Metadata-bucket names (counts expand to ``mdp-NNN``)."""
        return _resolve_names(self.metadata_providers, "mdp")

    def block_size_bytes(self) -> int:
        """The block size as an integer byte count."""
        return parse_size(self.block_size)

    def replace(self, **changes) -> "StoreConfig":
        """A copy with *changes* applied (convenience for sweeps)."""
        return dataclasses.replace(self, **changes)

    # -- validation ------------------------------------------------------------

    def validate(self) -> "StoreConfig":
        """Raise ``ValueError`` on any invalid or silently-broken combo.

        Every rejection here names the offending fields and what to
        change — these are exactly the configurations the sixteen loose
        keywords used to accept and then misbehave under.
        """
        providers = self.provider_names()
        buckets = self.metadata_bucket_names()
        if not providers:
            raise ValueError("data_providers must name at least one provider")
        if not buckets:
            raise ValueError("metadata_providers must name at least one bucket")
        if len(set(providers)) != len(providers):
            raise ValueError(f"duplicate data-provider names in {providers}")
        if len(set(buckets)) != len(buckets):
            raise ValueError(f"duplicate metadata-bucket names in {buckets}")
        if self.block_size_bytes() < 1:
            raise ValueError(f"block_size must be >= 1 byte, got {self.block_size!r}")
        if self.replication < 1:
            raise ValueError(f"replication must be >= 1, got {self.replication}")
        if self.replication > len(providers):
            raise ValueError(
                f"replication={self.replication} exceeds the "
                f"{len(providers)} configured data providers: every write "
                "would fail with ReplicationError — add providers or lower "
                "replication"
            )
        if self.metadata_replication < 1:
            raise ValueError(
                f"metadata_replication must be >= 1, got {self.metadata_replication}"
            )
        if self.metadata_replication > len(buckets):
            raise ValueError(
                f"metadata_replication={self.metadata_replication} exceeds the "
                f"{len(buckets)} configured metadata buckets: every publish "
                "would fail — add buckets or lower metadata_replication"
            )
        if isinstance(self.placement, str) and self.placement not in _POLICIES:
            raise ValueError(
                f"unknown placement policy {self.placement!r}; "
                f"choose from {sorted(_POLICIES)}"
            )
        if self.io_workers < 0:
            raise ValueError(f"io_workers must be >= 0, got {self.io_workers}")
        if self.io_scheduler not in ("threads", "async"):
            raise ValueError(
                f"io_scheduler must be 'threads' or 'async', "
                f"got {self.io_scheduler!r}"
            )
        if self.max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}"
            )
        for field in ("provider_latency", "metadata_latency", "vman_latency"):
            if getattr(self, field) < 0:
                raise ValueError(
                    f"{field} must be >= 0, got {getattr(self, field)}"
                )
        if self.metadata_cache_nodes < 0:
            raise ValueError(
                f"metadata_cache_nodes must be >= 0, got {self.metadata_cache_nodes}"
            )
        if self.publish_window < 0:
            raise ValueError(
                f"publish_window must be >= 0, got {self.publish_window}"
            )
        if (
            self.overlap_publish
            and self.io_workers == 0
            and self.io_scheduler != "async"
        ):
            raise ValueError(
                "overlap_publish=True requires io_workers > 0 (or "
                "io_scheduler='async'): the overlap launches the block "
                "scatter on the I/O engine, and with no engine it silently "
                "degrades to the serial path"
            )
        if self.publish_window > 0 and not self.group_commit:
            raise ValueError(
                "publish_window > 0 is dead weight with group_commit=False: "
                "the window is the group-commit leader's wait — enable "
                "group_commit or drop the window"
            )
        return self
