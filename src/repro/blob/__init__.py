"""BlobSeer core: the paper's contribution.

A versioning-oriented blob store built from: data striping over data
providers (round-robin placement), distributed segment-tree metadata in
a DHT, a version manager whose assignment step is the only serialized
part of a write, and lock-free version-based concurrency control with
linearizable publication (paper §III).
"""

from repro.blob.block import (
    AnyBlockDescriptor,
    BlockDescriptor,
    BlockId,
    BytesPayload,
    CopyStats,
    Payload,
    SyntheticPayload,
    ZeroBlockDescriptor,
    concat,
    materialize,
)
from repro.blob.async_engine import AsyncIOEngine
from repro.blob.config import StoreConfig
from repro.blob.data_provider import DataProviderCore
from repro.blob.diff import BlockRange, changed_ranges, diff_snapshots
from repro.blob.io_engine import EngineStats, ParallelIOEngine
from repro.blob.gc import GcReport, collect_garbage
from repro.blob.metadata import MetadataService, NodeCache
from repro.blob.provider_manager import (
    LeastLoadedPolicy,
    LocalFirstPolicy,
    PlacementPolicy,
    ProviderManagerCore,
    RandomPolicy,
    RoundRobinPolicy,
    TenantAccount,
    make_policy,
)
from repro.blob.replication import (
    RepairReport,
    find_under_replicated,
    live_replicas,
    repair_blob,
    repair_leaf,
)
from repro.blob.scrub import MaintenanceDaemon, ScrubReport, Throttle, scrub_store
from repro.blob.segment_tree import (
    DescentPlan,
    InnerNode,
    LeafNode,
    NodeKey,
    RedirectLeaf,
    TreeNode,
    build_patch,
    build_tombstone_patch,
    collect_blocks,
    collect_blocks_batched,
    iter_reachable,
    iter_reachable_batched,
    latest_intersecting,
    root_span,
)
from repro.blob.store import DEFAULT_BLOCK_SIZE, BlockLocation, LocalBlobStore
from repro.blob.version_manager import (
    BlobState,
    SnapshotInfo,
    TombstoneSpec,
    VersionManagerCore,
    WriteRecord,
    WriteTicket,
)

__all__ = [
    "BytesPayload",
    "SyntheticPayload",
    "Payload",
    "concat",
    "materialize",
    "CopyStats",
    "BlockDescriptor",
    "ZeroBlockDescriptor",
    "AnyBlockDescriptor",
    "BlockId",
    "NodeKey",
    "LeafNode",
    "RedirectLeaf",
    "InnerNode",
    "TreeNode",
    "root_span",
    "latest_intersecting",
    "build_patch",
    "build_tombstone_patch",
    "DescentPlan",
    "collect_blocks",
    "collect_blocks_batched",
    "iter_reachable",
    "iter_reachable_batched",
    "VersionManagerCore",
    "WriteRecord",
    "WriteTicket",
    "SnapshotInfo",
    "TombstoneSpec",
    "BlobState",
    "ProviderManagerCore",
    "PlacementPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "RandomPolicy",
    "LocalFirstPolicy",
    "make_policy",
    "DataProviderCore",
    "ParallelIOEngine",
    "AsyncIOEngine",
    "EngineStats",
    "MetadataService",
    "NodeCache",
    "LocalBlobStore",
    "StoreConfig",
    "TenantAccount",
    "BlockLocation",
    "DEFAULT_BLOCK_SIZE",
    "GcReport",
    "collect_garbage",
    "BlockRange",
    "changed_ranges",
    "diff_snapshots",
    "RepairReport",
    "find_under_replicated",
    "live_replicas",
    "repair_blob",
    "repair_leaf",
    "MaintenanceDaemon",
    "ScrubReport",
    "Throttle",
    "scrub_store",
]
