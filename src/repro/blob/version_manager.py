"""Version manager: snapshot assignment, ordering, publication.

"The version manager is in charge of assigning snapshot version numbers
in such a way that serialization and atomicity of writes and appends is
guaranteed" (paper §III-B).  Its state machine is deliberately tiny:

* :meth:`assign_write` / :meth:`assign_append` — hand out the next
  version number and, for appends, fix the offset to the size of the
  preceding snapshot (which may itself still be in flight, §III-D).
  The returned :class:`WriteTicket` carries the write history the
  client needs to weave its metadata without talking to anyone else.
* :meth:`commit` — the writer reports that data *and* metadata are
  stored; the publication watermark then advances to the highest
  version ``v`` such that every version ``<= v`` is committed, giving
  linearizability: readers only ever see complete snapshot prefixes
  (§III-A.5's two conditions).
* :meth:`assign_batch` / :meth:`commit_batch` — the group-commit
  surface (DESIGN.md §10): many concurrent writers' assignments or
  completion reports are admitted in **one** serialized step, so under
  heavy append concurrency the version manager costs O(batches) round
  trips instead of O(writers).  Per-item validation errors are
  isolated (one writer's bad request never poisons its batch-mates)
  and the watermark advances — publish hooks firing — once per batch
  per BLOB, with the full committed range.
* :meth:`abort` — a failed writer abandons its assigned version.  The
  highest assigned version is simply retracted (its number is reused);
  an *interior* version — one a later writer may already have woven
  references to — is converted into a **tombstone**: it commits as a
  no-op so the watermark can advance over it, and the returned
  :class:`TombstoneSpec` tells the caller which filler metadata to
  publish so those woven references still resolve.  This closes the
  availability gap the paper concedes in §VI-B (a dead writer blocking
  publication forever); see DESIGN.md §7.

This class is pure bookkeeping (no I/O, no clocks) so the in-process
store and the simulated version-manager service share it verbatim.
Assignment is the **only** serialized step of a write — everything else
in the protocol is designed to run concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from repro.blob.segment_tree import HistoryRecord, root_span
from repro.errors import (
    BlobError,
    BlobNotFound,
    InvalidRange,
    PublishHookError,
    VersionNotFound,
    VersionNotReady,
    WriteConflict,
)
from repro.util.chunks import block_count

__all__ = [
    "WriteRecord",
    "WriteTicket",
    "SnapshotInfo",
    "TombstoneSpec",
    "AssignRequest",
    "CommitOutcome",
    "BlobState",
    "VersionManagerCore",
]


@dataclass(frozen=True)
class WriteRecord:
    """One assigned version: what it wrote and the size afterwards."""

    version: int
    offset: int
    length: int
    size_after: int
    start_block: int
    end_block: int

    @property
    def history_record(self) -> HistoryRecord:
        """Projection used by metadata weaving: (version, block range)."""
        return (self.version, self.start_block, self.end_block)


@dataclass(frozen=True)
class WriteTicket:
    """Everything a writer needs after version assignment.

    ``history`` holds the block ranges of **all lower versions** — the
    version-manager "hints" that let this writer predict concurrent
    writers' metadata and weave its own without waiting for them.
    """

    blob_id: str
    version: int
    offset: int
    length: int
    size_after: int
    start_block: int
    end_block: int
    block_size: int
    replication: int
    history: tuple[HistoryRecord, ...]

    @property
    def size_after_blocks(self) -> int:
        """BLOB size in blocks once this snapshot completes."""
        return block_count(self.size_after, self.block_size)

    @property
    def root_span(self) -> int:
        """Root coverage of this snapshot's tree."""
        return root_span(self.size_after_blocks)


@dataclass(frozen=True)
class SnapshotInfo:
    """Read-side view of one published snapshot."""

    blob_id: str
    version: int
    size: int
    block_size: int
    root_span: int
    #: True for a tombstoned (aborted) version: it is readable — the
    #: woven prior state, zero-filled over the range the dead write
    #: would have created — but wrote nothing itself.
    tombstone: bool = False

    @property
    def size_blocks(self) -> int:
        """Size in blocks (ceiling)."""
        return block_count(self.size, self.block_size)


@dataclass(frozen=True)
class TombstoneSpec:
    """Everything needed to build a tombstone's filler metadata patch.

    Mirrors the write geometry the dead version was assigned, plus the
    history hints its filler patch must weave with — the arguments of
    :func:`repro.blob.segment_tree.build_tombstone_patch`.
    """

    blob_id: str
    version: int
    start_block: int
    end_block: int
    size_after: int
    prior_size: int
    block_size: int
    history: tuple[HistoryRecord, ...]


@dataclass(frozen=True)
class AssignRequest:
    """One writer's slot in an :meth:`VersionManagerCore.assign_batch`.

    ``offset=None`` requests an append (the version manager fixes the
    offset, §III-D); an explicit offset requests a write there.
    """

    blob_id: str
    length: int
    offset: Optional[int] = None


@dataclass
class CommitOutcome:
    """Per-item result of one :meth:`VersionManagerCore.commit_batch`.

    Exactly one of ``watermark``/``error`` is set.  ``hook_error``
    accompanies a *successful* commit whose batch's watermark advance
    tripped a publish hook — the snapshot IS published; the error is
    report-only, mirroring the scalar :meth:`~VersionManagerCore.commit`
    contract.
    """

    watermark: Optional[int] = None
    error: Optional[BlobError] = None
    hook_error: Optional[PublishHookError] = None


@dataclass
class BlobState:
    """Version-manager state for one BLOB."""

    blob_id: str
    block_size: int
    replication: int
    records: list[WriteRecord] = field(default_factory=list)
    committed: set[int] = field(default_factory=set)
    #: Aborted-but-unretractable versions (subset of ``committed``):
    #: they count as committed no-ops so the watermark can pass them,
    #: but their write never happened (readers see filler metadata).
    tombstoned: set[int] = field(default_factory=set)
    published: int = 0
    gc_floor: int = 0  # versions < gc_floor are no longer readable
    #: For branched BLOBs: (ancestor blob id, branch-base version).
    #: Versions <= base belong to the ancestor's metadata/data.
    parent: Optional[tuple[str, int]] = None

    @property
    def last_assigned(self) -> int:
        """Highest version number handed out so far."""
        return len(self.records) - 1


class VersionManagerCore:
    """Pure version-assignment and publication state machine.

    Alignment discipline enforced on writes (see DESIGN.md §6):
    ``offset`` must be block-aligned and ``offset <= current size`` (no
    holes); ``length`` must be a whole number of blocks unless the write
    extends exactly to the (new) end of the BLOB, which permits one
    trailing partial block.  These are the constraints under which the
    metadata-weaving rule of §III-D is exact.
    """

    def __init__(self) -> None:
        self._blobs: dict[str, BlobState] = {}
        self._publish_hooks: list[Callable[[str, int], None]] = []

    # -- hooks ----------------------------------------------------------------

    def on_publish(self, hook: Callable[[str, int], None]) -> None:
        """Register ``hook(blob_id, new_watermark)`` called on publication."""
        self._publish_hooks.append(hook)

    # -- blob lifecycle ---------------------------------------------------------

    def create_blob(self, blob_id: str, block_size: int, replication: int = 1) -> BlobState:
        """Register a new empty BLOB (snapshot version 0, size 0)."""
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        if blob_id in self._blobs:
            raise BlobError(f"blob {blob_id!r} already exists")
        state = BlobState(blob_id=blob_id, block_size=block_size, replication=replication)
        state.records.append(
            WriteRecord(version=0, offset=0, length=0, size_after=0, start_block=0, end_block=0)
        )
        state.committed.add(0)
        self._blobs[blob_id] = state
        return state

    def branch_blob(self, src_id: str, new_id: str, version: Optional[int] = None) -> BlobState:
        """Fork *src_id* at a published snapshot into a new BLOB.

        "Branching a dataset into two independent datasets that can
        evolve independently" (§II-A) is pure metadata: the branch
        inherits the source's write history up to *version* (default:
        latest published) and shares every block and tree node with it.
        Subsequent writes to either BLOB are invisible to the other.
        """
        src = self.blob(src_id)
        if new_id in self._blobs:
            raise BlobError(f"blob {new_id!r} already exists")
        base = src.published if version is None else version
        # Validates existence, publication and the GC floor.
        self.snapshot_info(src_id, base)
        state = BlobState(
            blob_id=new_id,
            block_size=src.block_size,
            replication=src.replication,
            records=list(src.records[: base + 1]),
            committed=set(range(base + 1)),
            tombstoned={v for v in src.tombstoned if v <= base},
            published=base,
            parent=(src_id, base),
        )
        self._blobs[new_id] = state
        return state

    def owner_of(self, blob_id: str, version: int) -> str:
        """The BLOB whose metadata/data owns *version* of *blob_id*.

        Walks the branch lineage: versions at or below a branch base
        belong to the ancestor.  Identity for unbranched BLOBs.
        """
        state = self.blob(blob_id)
        while state.parent is not None and version <= state.parent[1]:
            blob_id = state.parent[0]
            state = self.blob(blob_id)
        return blob_id

    def descends_from(self, blob_id: str, ancestor_id: str) -> bool:
        """Whether *blob_id*'s lineage includes *ancestor_id*."""
        state = self.blob(blob_id)
        while state.parent is not None:
            if state.parent[0] == ancestor_id:
                return True
            state = self.blob(state.parent[0])
        return False

    def blob(self, blob_id: str) -> BlobState:
        """State for *blob_id* (``BlobNotFound`` if absent)."""
        try:
            return self._blobs[blob_id]
        except KeyError:
            raise BlobNotFound(blob_id) from None

    def has_blob(self, blob_id: str) -> bool:
        """Existence check."""
        return blob_id in self._blobs

    def blob_ids(self) -> list[str]:
        """All registered BLOB ids."""
        return sorted(self._blobs)

    # -- assignment (the serialization point) -------------------------------------

    def assign_write(self, blob_id: str, offset: int, length: int) -> WriteTicket:
        """Assign the next version to a write at an explicit offset."""
        state = self.blob(blob_id)
        current_size = state.records[-1].size_after
        self._validate_range(state, offset, length, current_size)
        return self._assign(state, offset, length)

    def assign_append(self, blob_id: str, length: int) -> WriteTicket:
        """Assign the next version to an append.

        The offset is fixed *here*, to the size of the preceding
        snapshot — which may still be being written (§III-D: "the
        writing of this snapshot may still be in progress").
        """
        state = self.blob(blob_id)
        offset = state.records[-1].size_after
        if offset % state.block_size != 0:
            raise InvalidRange(
                f"append to blob {blob_id!r} requires a block-aligned size, "
                f"but current size is {offset} (block_size={state.block_size}); "
                f"use a trailing-partial write instead"
            )
        if length < 1:
            raise InvalidRange(f"append length must be positive, got {length}")
        return self._assign(state, offset, length)

    def assign_batch(
        self, requests: Sequence[AssignRequest]
    ) -> list[Union[WriteTicket, BlobError]]:
        """Assign versions to many writers in one serialized step.

        Requests are processed in order, so arrival order within the
        batch IS assignment order (the per-blob ordering the group
        commit must preserve).  Per-item isolation: a request that
        fails validation gets its :class:`~repro.errors.BlobError` in
        its slot — it consumes no version number (assignment validates
        before recording) and later requests in the same batch are
        unaffected.  The returned list is aligned with *requests*.
        """
        out: list[Union[WriteTicket, BlobError]] = []
        for request in requests:
            try:
                if request.offset is None:
                    out.append(self.assign_append(request.blob_id, request.length))
                else:
                    out.append(
                        self.assign_write(
                            request.blob_id, request.offset, request.length
                        )
                    )
            except BlobError as exc:
                out.append(exc)
        return out

    def _validate_range(self, state: BlobState, offset: int, length: int, current_size: int) -> None:
        if length < 1:
            raise InvalidRange(f"write length must be positive, got {length}")
        if offset < 0:
            raise InvalidRange(f"write offset must be >= 0, got {offset}")
        if offset % state.block_size != 0:
            raise InvalidRange(
                f"write offset {offset} not aligned to block size {state.block_size}"
            )
        if offset > current_size:
            raise InvalidRange(
                f"write at offset {offset} would leave a hole (size is {current_size})"
            )
        end = offset + length
        new_size = max(current_size, end)
        if length % state.block_size != 0 and end != new_size:
            raise InvalidRange(
                "partial-block writes must extend to the end of the blob "
                f"(offset={offset} length={length} size={current_size})"
            )
        # Rewriting an interior range with a partial trailing block would
        # truncate data the leaf model cannot merge back.
        if end < current_size and length % state.block_size != 0:
            raise InvalidRange(
                "interior writes must cover whole blocks "
                f"(offset={offset} length={length} size={current_size})"
            )

    def _assign(self, state: BlobState, offset: int, length: int) -> WriteTicket:
        current_size = state.records[-1].size_after
        version = len(state.records)
        end = offset + length
        size_after = max(current_size, end)
        start_block = offset // state.block_size
        end_block = block_count(end, state.block_size)
        record = WriteRecord(
            version=version,
            offset=offset,
            length=length,
            size_after=size_after,
            start_block=start_block,
            end_block=end_block,
        )
        state.records.append(record)
        history = tuple(
            r.history_record for r in state.records[1:version] if r.length > 0
        )
        return WriteTicket(
            blob_id=state.blob_id,
            version=version,
            offset=offset,
            length=length,
            size_after=size_after,
            start_block=start_block,
            end_block=end_block,
            block_size=state.block_size,
            replication=state.replication,
            history=history,
        )

    # -- completion and publication -----------------------------------------------

    def commit(self, blob_id: str, version: int) -> int:
        """Record that *version*'s data and metadata are fully stored.

        Returns the new publication watermark.  The watermark only
        advances past *version* once **all** lower versions are also
        committed — the order in which "new snapshots are revealed to
        the readers must respect the order in which version numbers
        have been assigned" (§III-A.4).  A batch of one: the group
        surface below is the single watermark-advance path.
        """
        outcome = self.commit_batch([(blob_id, version)])[0]
        if outcome.error is not None:
            raise outcome.error
        if outcome.hook_error is not None:
            raise outcome.hook_error
        assert outcome.watermark is not None
        return outcome.watermark

    def commit_batch(
        self, items: Sequence[tuple[str, int]]
    ) -> list[CommitOutcome]:
        """Record many completion reports in one serialized step.

        Every valid item is marked committed first; then each touched
        BLOB's watermark advances **once**, so the publish hooks fire
        once per batch per BLOB with the final watermark (the full
        committed range), not once per member.  Per-item isolation: an
        invalid item (unassigned version, double commit — including a
        duplicate *within* the batch) gets its error in its
        :class:`CommitOutcome` without disturbing batch-mates.  A
        raising publish hook is attached as ``hook_error`` to every
        successfully committed member of that BLOB in this batch: they
        are collectively the advancing commit, and the snapshots ARE
        published (same report-only contract as the scalar path).
        The returned list is aligned with *items*.
        """
        outcomes = [CommitOutcome() for _ in items]
        touched: dict[str, list[int]] = {}
        for i, (blob_id, version) in enumerate(items):
            try:
                state = self.blob(blob_id)
                if version < 1 or version > state.last_assigned:
                    raise VersionNotFound(
                        f"version {version} of blob {blob_id!r} was never assigned"
                    )
                if version in state.committed:
                    raise WriteConflict(
                        f"version {version} of blob {blob_id!r} committed twice"
                    )
            except BlobError as exc:
                outcomes[i].error = exc
                continue
            state.committed.add(version)
            touched.setdefault(blob_id, []).append(i)
        for blob_id, members in touched.items():
            state = self._blobs[blob_id]
            hook_error: Optional[PublishHookError] = None
            try:
                self._advance_watermark(state)
            except PublishHookError as exc:
                hook_error = exc
            for i in members:
                outcomes[i].watermark = state.published
                outcomes[i].hook_error = hook_error
        return outcomes

    def _advance_watermark(self, state: BlobState) -> None:
        """Advance the watermark; run every publish hook, then report.

        Hooks observe publication consistently: the watermark moves
        first, and a raising hook never prevents the remaining hooks
        from running (e.g. one stale cache must not stop the BSFS
        invalidation of another).  Hook failures are aggregated into a
        single :class:`PublishHookError` raised after the loop — state
        is already fully updated when it surfaces.
        """
        old = state.published
        while state.published + 1 in state.committed:
            state.published += 1
        if state.published == old:
            return
        errors: list[BaseException] = []
        for hook in self._publish_hooks:
            try:
                hook(state.blob_id, state.published)
            except Exception as exc:
                errors.append(exc)
        if errors:
            raise PublishHookError(state.blob_id, state.published, errors)

    def abort(
        self, blob_id: str, version: int, force_tombstone: bool = False
    ) -> Optional[TombstoneSpec]:
        """Abandon an assigned-but-uncommitted version.

        Two cases, decided by whether a later version was assigned:

        * **retract** — *version* is still the highest assigned: nothing
          can reference it yet, so its record is popped and the number
          will be reused.  Returns ``None``.
        * **tombstone** — a later writer may already have woven
          references to this version's range per the hint rule, so the
          record must stand.  The version commits as a no-op (the
          watermark advances over it — a dead writer can no longer
          wedge publication, closing §VI-B's availability gap) and the
          returned :class:`TombstoneSpec` describes the filler
          metadata the caller must publish so those references resolve.

        ``force_tombstone=True`` takes the tombstone path even for the
        highest version — required whenever any metadata node of the
        dead write may already have reached the DHT, because retracting
        would let the next writer reuse the version number and collide
        with those immutable nodes.

        Hook failures from the watermark advance surface as
        :class:`PublishHookError` *after* the tombstone is fully
        recorded (same contract as :meth:`commit`).
        """
        state = self.blob(blob_id)
        if version < 1 or version > state.last_assigned:
            raise VersionNotFound(f"version {version} of blob {blob_id!r} was never assigned")
        if version in state.committed:
            raise WriteConflict(f"version {version} already committed")
        if version == state.last_assigned and not force_tombstone:
            state.records.pop()
            return None
        state.tombstoned.add(version)
        state.committed.add(version)
        spec = self._tombstone_spec(state, version)
        self._advance_watermark(state)
        return spec

    def tombstone_spec(
        self, blob_id: str, version: int, pending: bool = False
    ) -> TombstoneSpec:
        """Filler-patch spec of a tombstoned version.

        Serves an already-tombstoned version so the filler can be
        re-published idempotently after the metadata-provider outage
        that caused the abort heals (see
        ``LocalBlobStore.republish_tombstone``).  ``pending=True``
        additionally serves a version still in flight — strictly for
        the aborting writer itself, which must publish the filler
        *before* finalising the abort; anyone else holding a pending
        spec could force-overwrite a healthy writer's metadata.  This
        is the single constructor of the spec: publish and republish
        derive the identical patch.
        """
        state = self.blob(blob_id)
        # Same gate as snapshot_info/history_upto: republishing a
        # collected tombstone would resurrect swept tree nodes.
        self._check_gc_floor(state, version)
        if version in state.tombstoned:
            return self._tombstone_spec(state, version)
        if version < 1 or version > state.last_assigned:
            raise VersionNotFound(f"version {version} of blob {blob_id!r} was never assigned")
        if version in state.committed or not pending:
            raise VersionNotFound(
                f"version {version} of blob {blob_id!r} is not a tombstone"
            )
        return self._tombstone_spec(state, version)

    def _tombstone_spec(self, state: BlobState, version: int) -> TombstoneSpec:
        record = state.records[version]
        return TombstoneSpec(
            blob_id=state.blob_id,
            version=version,
            start_block=record.start_block,
            end_block=record.end_block,
            size_after=record.size_after,
            prior_size=state.records[version - 1].size_after,
            block_size=state.block_size,
            history=tuple(
                r.history_record for r in state.records[1:version] if r.length > 0
            ),
        )

    # -- read-side queries ---------------------------------------------------------

    @staticmethod
    def _check_gc_floor(state: BlobState, version: int) -> None:
        """Reject versions below the GC floor (their trees were swept)."""
        if version < state.gc_floor:
            raise VersionNotFound(
                f"version {version} of blob {state.blob_id!r} was garbage-collected "
                f"(gc floor is {state.gc_floor})"
            )

    def published_version(self, blob_id: str) -> int:
        """Current publication watermark (highest readable version)."""
        return self.blob(blob_id).published

    def latest(self, blob_id: str) -> SnapshotInfo:
        """Info for the latest *published* snapshot (§III-A.1's special call)."""
        state = self.blob(blob_id)
        return self.snapshot_info(blob_id, state.published)

    def snapshot_info(self, blob_id: str, version: int) -> SnapshotInfo:
        """Read-side info for one snapshot; enforces the publication gate."""
        state = self.blob(blob_id)
        if version < 0 or version > state.last_assigned:
            raise VersionNotFound(f"version {version} of blob {blob_id!r} does not exist")
        self._check_gc_floor(state, version)
        if version > state.published:
            raise VersionNotReady(
                f"version {version} of blob {blob_id!r} is not yet published "
                f"(watermark is {state.published})"
            )
        record = state.records[version]
        size_blocks = block_count(record.size_after, state.block_size)
        return SnapshotInfo(
            blob_id=blob_id,
            version=version,
            size=record.size_after,
            block_size=state.block_size,
            root_span=root_span(size_blocks),
            tombstone=version in state.tombstoned,
        )

    def history_upto(self, blob_id: str, version: int) -> tuple[HistoryRecord, ...]:
        """Write-history records for versions 1..*version* (weaving/GC).

        Enforces the GC floor like :meth:`snapshot_info`: hints for a
        collected version would let a writer weave references into tree
        nodes the sweep already deleted.
        """
        state = self.blob(blob_id)
        if version > state.last_assigned:
            raise VersionNotFound(f"version {version} of blob {blob_id!r} does not exist")
        self._check_gc_floor(state, version)
        return tuple(r.history_record for r in state.records[1 : version + 1] if r.length > 0)

    def in_flight(self, blob_id: str) -> list[int]:
        """Assigned versions not yet committed (must be empty for GC).

        Tombstoned versions are *not* in flight: they committed as
        no-ops, so a dead writer no longer blocks garbage collection.
        """
        state = self.blob(blob_id)
        return [
            r.version
            for r in state.records[1:]
            if r.version not in state.committed
        ]

    def set_gc_floor(self, blob_id: str, floor: int) -> None:
        """Mark versions below *floor* unreadable (GC bookkeeping)."""
        state = self.blob(blob_id)
        if floor > state.published:
            raise BlobError(
                f"gc floor {floor} beyond published watermark {state.published}"
            )
        if floor < state.gc_floor:
            raise BlobError(f"gc floor must be monotone ({floor} < {state.gc_floor})")
        state.gc_floor = floor
