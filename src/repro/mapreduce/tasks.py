"""Map and reduce task execution.

Functional (real-bytes) task bodies: a map task reads its split's
records through the file system, runs the user mapper, partitions its
output by key hash; a reduce task merges its partition from all maps,
groups by key, runs the reducer.  Failures raise
:class:`~repro.errors.TaskFailed` so the runner can retry.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Optional

from repro.dht.ring import stable_hash
from repro.errors import TaskFailed
from repro.fsapi import FileSystem
from repro.mapreduce.io import FileSplit, Split, SyntheticSplit, iter_lines
from repro.mapreduce.job import Emitter, JobConf

__all__ = ["partition_for", "run_map_task", "run_reduce_task", "MapOutput"]


def partition_for(key: object, num_reducers: int) -> int:
    """Hadoop's HashPartitioner, with a stable cross-run hash."""
    return stable_hash(key, salt=b"partition") % num_reducers


class MapOutput:
    """One map task's partitioned, optionally combined, output."""

    def __init__(self, task_index: int, num_reducers: int):
        self.task_index = task_index
        self.partitions: dict[int, list[tuple[object, object]]] = {
            r: [] for r in range(num_reducers)
        }

    def add(self, key: object, value: object, num_reducers: int, partitioner=None) -> None:
        """Route one pair to its reducer partition."""
        if partitioner is None:
            partition = partition_for(key, num_reducers)
        else:
            partition = partitioner(key, num_reducers)
            if not 0 <= partition < num_reducers:
                raise ValueError(
                    f"partitioner returned {partition} for {num_reducers} reducers"
                )
        self.partitions[partition].append((key, value))

    @property
    def record_count(self) -> int:
        """Total pairs across partitions."""
        return sum(len(p) for p in self.partitions.values())

    @property
    def byte_size(self) -> int:
        """Approximate serialized size (shuffle-volume accounting)."""
        return sum(
            len(str(k)) + len(str(v)) + 2
            for pairs in self.partitions.values()
            for k, v in pairs
        )


def _apply_combiner(job: JobConf, output: MapOutput) -> None:
    """Run the combiner on each partition in place (mini-reduce)."""
    assert job.combiner is not None
    for partition, pairs in output.partitions.items():
        grouped: dict[object, list] = defaultdict(list)
        order: list[object] = []
        for key, value in pairs:
            if key not in grouped:
                order.append(key)
            grouped[key].append(value)
        emitter = Emitter()
        for key in order:
            job.combiner(key, grouped[key], emitter)
        output.partitions[partition] = emitter.pairs


def run_map_task(
    fs: FileSystem,
    job: JobConf,
    task_index: int,
    split: Split,
    counters: Optional[Counter] = None,
) -> MapOutput:
    """Execute one map task and return its partitioned output."""
    counters = counters if counters is not None else Counter()
    emitter = Emitter()
    try:
        if isinstance(split, SyntheticSplit):
            job.mapper(split.index, "", emitter)
            counters["map_records_read"] += 1
        else:
            assert isinstance(split, FileSplit)
            with fs.open(split.path) as stream:
                for offset, line in iter_lines(stream, split.offset, split.length):
                    job.mapper(offset, line, emitter)
                    counters["map_records_read"] += 1
                counters["map_bytes_read"] += split.length
    except Exception as exc:
        raise TaskFailed(f"map task {task_index} failed: {exc!r}") from exc
    output = MapOutput(task_index, job.num_reducers)
    for key, value in emitter.pairs:
        output.add(key, value, job.num_reducers, partitioner=job.partitioner)
    counters["map_records_emitted"] += output.record_count
    if job.combiner is not None:
        _apply_combiner(job, output)
        counters["combine_records_out"] += output.record_count
    return output


def run_reduce_task(
    job: JobConf,
    partition: int,
    map_outputs: list[MapOutput],
    counters: Optional[Counter] = None,
) -> list[tuple[object, object]]:
    """Merge one partition from every map, group, reduce.

    Returns the reducer's output pairs, key-sorted (Hadoop's merge sort
    guarantees reducer input order, and we keep output order too).
    """
    counters = counters if counters is not None else Counter()
    grouped: dict[object, list] = defaultdict(list)
    for output in map_outputs:
        for key, value in output.partitions.get(partition, []):
            grouped[key].append(value)
            counters["reduce_records_in"] += 1
    emitter = Emitter()
    assert job.reducer is not None
    try:
        for key in sorted(grouped, key=lambda k: (str(type(k)), str(k))):
            job.reducer(key, grouped[key], emitter)
    except Exception as exc:
        raise TaskFailed(f"reduce task {partition} failed: {exc!r}") from exc
    counters["reduce_records_out"] += len(emitter.pairs)
    return emitter.pairs
