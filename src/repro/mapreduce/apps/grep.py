"""Distributed grep (paper §V-G, Figure 6(b)).

"The application scans a huge text input file for occurrences of a
particular expression and counts the number of lines where the
expression occurs.  Mappers simply output the value of these counters,
then the reducers sum up the all the outputs of the mappers."

Access pattern: concurrent reads from the same shared file — the
workload where BSFS's balanced layout beats HDFS by 35-38 %.
"""

from __future__ import annotations

import re
from typing import Sequence

from repro.mapreduce.job import Emitter, JobConf

__all__ = ["grep_job", "MATCH_KEY"]

#: Reducer key under which matching-line counts are summed.
MATCH_KEY = "matching-lines"


def grep_job(
    input_paths: Sequence[str],
    output_dir: str,
    pattern: str,
    split_size: int | None = None,
) -> JobConf:
    """Build the distributed-grep job for a regular expression."""
    compiled = re.compile(pattern)

    def mapper(_offset, line: str, emit: Emitter) -> None:
        if compiled.search(line) is not None:
            emit(MATCH_KEY, 1)

    def combiner(key, values, emit: Emitter) -> None:
        # Per-mapper counter: collapses per-line 1s into one count, so
        # mappers "simply output the value of these counters".
        emit(key, sum(values))

    def reducer(key, values, emit: Emitter) -> None:
        emit(key, sum(values))

    return JobConf(
        name=f"grep[{pattern}]",
        output_dir=output_dir,
        mapper=mapper,
        combiner=combiner,
        reducer=reducer,
        input_paths=tuple(input_paths),
        num_reducers=1,
        split_size=split_size,
    )
