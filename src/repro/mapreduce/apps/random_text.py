"""RandomTextWriter (paper §V-G, Figure 6(a)).

"The application launches a fixed number of mappers, each of which
generates a huge sequence of random sentences formed from a list of
predefined words.  The reduce phase is missing altogether: the output
of each of the mappers is stored as a separate file."

The access pattern is what matters: concurrent, massively parallel
writes, each mapper to its own file.
"""

from __future__ import annotations

from repro.mapreduce.job import Emitter, JobConf
from repro.util.bytesize import parse_size
from repro.util.rng import derive_rng

__all__ = ["WORDS", "random_sentence", "random_text_job"]

#: The predefined vocabulary (Hadoop's RandomTextWriter ships a fixed
#: word list; any fixed list reproduces the workload shape).
WORDS = (
    "diurnalness habitudinal spermaphyte percent dolorous diffusible "
    "inexistency cubby overclement cervisial amatorially beadroll "
    "stormy airship pleasurehood chorograph nonrepetition crystallize "
    "unafraid precostal bromate pendular stereotypical squdge "
    "disfavour graphics kilocycle blurredness discipular unmarred "
    "weariful unlapsing sportswoman salt abdominous configuration "
    "undershrub workmanship blaze causticity rebellion momentous "
    "hexahedral muddlehead storage throughput concurrency versioning "
    "snapshot provider metadata segment balanced scatter append"
).split()


def random_sentence(rng, min_words: int = 10, max_words: int = 20) -> str:
    """One random sentence from the predefined vocabulary."""
    count = int(rng.integers(min_words, max_words + 1))
    picks = rng.integers(0, len(WORDS), size=count)
    return " ".join(WORDS[i] for i in picks)


def random_text_job(
    output_dir: str,
    num_mappers: int,
    bytes_per_mapper: int | str,
    seed: int = 0,
) -> JobConf:
    """Build the RandomTextWriter job.

    Each mapper emits random sentences until it has produced
    ``bytes_per_mapper`` of text.  Deterministic per ``(seed, mapper)``.
    """
    target = parse_size(bytes_per_mapper)
    if num_mappers < 1:
        raise ValueError("num_mappers must be >= 1")
    if target < 1:
        raise ValueError("bytes_per_mapper must be >= 1")

    def mapper(key, _value: str, emit: Emitter) -> None:
        rng = derive_rng(seed, int(key))
        produced = 0
        while produced < target:
            sentence = random_sentence(rng)
            emit(None, sentence)
            produced += len(sentence) + 1  # newline

    return JobConf(
        name="random-text-writer",
        output_dir=output_dir,
        mapper=mapper,
        synthetic_maps=num_mappers,
        reducer=None,
    )
