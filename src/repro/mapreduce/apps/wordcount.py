"""WordCount: the canonical MapReduce example.

Not part of the paper's evaluation, but the standard smoke-test for a
MapReduce engine and a natural third example application: it exercises
multi-reducer shuffles, combiners and text output end-to-end.
"""

from __future__ import annotations

from typing import Sequence

from repro.mapreduce.job import Emitter, JobConf

__all__ = ["wordcount_job"]


def wordcount_job(
    input_paths: Sequence[str],
    output_dir: str,
    num_reducers: int = 2,
    split_size: int | None = None,
) -> JobConf:
    """Count word occurrences across the input files."""

    def mapper(_offset, line: str, emit: Emitter) -> None:
        for word in line.split():
            emit(word, 1)

    def reducer(key, values, emit: Emitter) -> None:
        emit(key, sum(values))

    return JobConf(
        name="wordcount",
        output_dir=output_dir,
        mapper=mapper,
        combiner=reducer,  # sum is associative: reducer doubles as combiner
        reducer=reducer,
        input_paths=tuple(input_paths),
        num_reducers=num_reducers,
        split_size=split_size,
    )
