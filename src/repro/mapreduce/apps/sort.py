"""Distributed sort: Hadoop's canonical total-order job.

The classic two-piece recipe (Hadoop's ``Sort`` example with
``TotalOrderPartitioner`` + ``InputSampler``):

1. **sample** the input's keys and derive ``num_reducers - 1`` quantile
   cut points;
2. run an identity map with a **range partitioner** built from the cut
   points, so reducer *i* receives exactly the keys in its range; each
   reducer's input arrives key-sorted, hence the concatenation of
   ``part-r-*`` files in partition order is globally sorted.

Records are text lines; the sort key is the line itself.
"""

from __future__ import annotations

import bisect
from typing import Sequence

from repro.fsapi import FileSystem
from repro.mapreduce.io import compute_file_splits, iter_lines
from repro.mapreduce.job import Emitter, JobConf

__all__ = ["sample_cut_points", "range_partitioner", "sort_job"]


def sample_cut_points(
    fs: FileSystem,
    input_paths: Sequence[str],
    num_reducers: int,
    sample_records: int = 100,
) -> list[str]:
    """Quantile cut points from a prefix sample of every input split.

    Mirrors Hadoop's ``InputSampler.SplitSampler``: read up to
    ``sample_records`` records from the head of each split, sort the
    sample, pick ``num_reducers - 1`` evenly spaced keys.
    """
    if num_reducers < 1:
        raise ValueError("num_reducers must be >= 1")
    if sample_records < 1:
        raise ValueError("sample_records must be >= 1")
    if num_reducers == 1:
        return []
    sample: list[str] = []
    splits = compute_file_splits(
        fs, list(input_paths), fs.block_size, engine=getattr(fs, "io_engine", None)
    )
    for split in splits:
        with fs.open(split.path) as stream:
            taken = 0
            for _offset, line in iter_lines(stream, split.offset, split.length):
                sample.append(line)
                taken += 1
                if taken >= sample_records:
                    break
    if not sample:
        return []
    sample.sort()
    cuts = []
    for i in range(1, num_reducers):
        cuts.append(sample[(i * len(sample)) // num_reducers])
    # Duplicate cut points collapse partitions but stay correct.
    return cuts


def range_partitioner(cut_points: Sequence[str]):
    """``partitioner(key, R)``: index of the range *key* falls into."""
    cuts = list(cut_points)

    def partition(key, num_reducers: int) -> int:
        return min(bisect.bisect_right(cuts, key), num_reducers - 1)

    return partition


def sort_job(
    fs: FileSystem,
    input_paths: Sequence[str],
    output_dir: str,
    num_reducers: int = 4,
    sample_records: int = 100,
    split_size: int | None = None,
) -> JobConf:
    """Build the total-order sort job (samples the input now)."""

    def mapper(_offset, line: str, emit: Emitter) -> None:
        emit(line, "")

    def reducer(key, values, emit: Emitter) -> None:
        for _ in values:  # preserve duplicates
            emit(None, key)

    cuts = sample_cut_points(fs, input_paths, num_reducers, sample_records)
    return JobConf(
        name="total-order-sort",
        output_dir=output_dir,
        mapper=mapper,
        reducer=reducer,
        input_paths=tuple(input_paths),
        num_reducers=num_reducers,
        partitioner=range_partitioner(cuts),
        split_size=split_size,
    )
