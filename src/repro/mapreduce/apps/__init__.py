"""The paper's Map/Reduce applications plus canonical extras."""

from repro.mapreduce.apps.grep import MATCH_KEY, grep_job
from repro.mapreduce.apps.random_text import WORDS, random_sentence, random_text_job
from repro.mapreduce.apps.sort import range_partitioner, sample_cut_points, sort_job
from repro.mapreduce.apps.wordcount import wordcount_job

__all__ = [
    "grep_job",
    "MATCH_KEY",
    "random_text_job",
    "random_sentence",
    "WORDS",
    "wordcount_job",
    "sort_job",
    "sample_cut_points",
    "range_partitioner",
]
