"""The functional job runner: a whole Hadoop job on real bytes.

Runs the full pipeline — split, schedule (locality-aware), map,
combine, shuffle, sort, reduce, commit — against any
:class:`~repro.fsapi.FileSystem` (BSFS or HDFS).  Execution is
sequential and deterministic; timing belongs to the simulated
deployment, correctness and scheduling statistics belong here.

Task retry: a failing task attempt is retried up to ``max_attempts``
(Hadoop re-executes failed tasks, §II-B); a task that exhausts retries
fails the job.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import JobFailed, TaskFailed
from repro.fsapi import FileSystem
from repro.mapreduce.io import (
    SyntheticSplit,
    compute_file_splits,
    write_text_records,
)
from repro.mapreduce.job import JobConf
from repro.mapreduce.jobtracker import ScheduleStats, schedule_map_tasks
from repro.mapreduce.tasks import MapOutput, run_map_task, run_reduce_task

__all__ = ["JobResult", "LocalJobRunner"]


@dataclass
class JobResult:
    """What a finished job reports."""

    job_name: str
    output_paths: list[str]
    counters: Counter = field(default_factory=Counter)
    schedule: Optional[ScheduleStats] = None

    @property
    def locality(self) -> float:
        """Fraction of data-local map tasks."""
        return self.schedule.locality if self.schedule else 1.0


class LocalJobRunner:
    """In-process jobtracker + tasktrackers.

    Args:
        fs: the storage backend (BSFS or HDFS — the paper's whole point
            is that jobs run "out-of-the-box" on either).
        trackers: tasktracker host names; defaults to a synthetic pool.
            In a faithful deployment these are the same hosts as the
            data providers/datanodes (compute co-located with storage).
        slots_per_tracker: concurrent map slots per tracker (Hadoop's
            classic default is 2).
        max_attempts: per-task retry budget.
    """

    def __init__(
        self,
        fs: FileSystem,
        trackers: Optional[Sequence[str]] = None,
        slots_per_tracker: int = 2,
        max_attempts: int = 3,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.fs = fs
        self.trackers = list(trackers) if trackers else [f"tracker-{i}" for i in range(4)]
        self.slots_per_tracker = slots_per_tracker
        self.max_attempts = max_attempts

    def _attempt(self, fn, what: str, counters: Counter):
        last: Optional[Exception] = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except TaskFailed as exc:
                last = exc
                counters["task_retries"] += 1
        raise JobFailed(f"{what} failed after {self.max_attempts} attempts") from last

    def run(self, job: JobConf) -> JobResult:
        """Execute *job* to completion and return its result."""
        counters: Counter = Counter()

        # --- split -------------------------------------------------------
        if job.synthetic_maps:
            splits = [SyntheticSplit(index=i) for i in range(job.synthetic_maps)]
        else:
            split_size = job.split_size or self.fs.block_size
            splits = compute_file_splits(
                self.fs,
                list(job.input_paths),
                split_size,
                engine=getattr(self.fs, "io_engine", None),
            )
        if not splits:
            raise JobFailed(f"job {job.name!r} has no input")

        # --- schedule (locality bookkeeping) ------------------------------
        assignments, schedule = schedule_map_tasks(
            splits, self.trackers, self.slots_per_tracker
        )
        counters["maps_total"] = schedule.total
        counters["maps_local"] = schedule.local
        counters["maps_remote"] = schedule.remote

        # --- map phase -----------------------------------------------------
        self.fs.make_dirs(job.output_dir)
        map_outputs: list[MapOutput] = []
        output_paths: list[str] = []
        for assignment in assignments:
            output = self._attempt(
                lambda a=assignment: run_map_task(
                    self.fs, job, a.task_index, a.split, counters
                ),
                what=f"map task {assignment.task_index}",
                counters=counters,
            )
            if job.is_map_only:
                # RandomTextWriter shape: "the output of each of the
                # mappers is stored as a separate file" (§V-G).
                path = f"{job.output_dir}/part-m-{assignment.task_index:05d}"
                pairs = [
                    pair for r in sorted(output.partitions) for pair in output.partitions[r]
                ]
                counters["output_bytes"] += write_text_records(
                    self.fs, path, pairs, client=assignment.tracker
                )
                output_paths.append(path)
            else:
                map_outputs.append(output)

        # --- reduce phase ------------------------------------------------------
        if not job.is_map_only:
            for partition in range(job.num_reducers):
                pairs = self._attempt(
                    lambda p=partition: run_reduce_task(job, p, map_outputs, counters),
                    what=f"reduce task {partition}",
                    counters=counters,
                )
                path = f"{job.output_dir}/part-r-{partition:05d}"
                counters["output_bytes"] += write_text_records(self.fs, path, pairs)
                output_paths.append(path)

        return JobResult(
            job_name=job.name,
            output_paths=output_paths,
            counters=counters,
            schedule=schedule,
        )
