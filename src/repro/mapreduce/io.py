"""Input splits, record readers and output formats.

The split and record-reading rules follow Hadoop's ``TextInputFormat``:

* files are split at block boundaries and each split carries the hosts
  of its first block (the affinity data the jobtracker schedules by);
* a record reader at split offset > 0 skips the partial first line and
  reads past the split end to finish its last line, so every line of
  the file is processed exactly once across all splits.

Reads go through the file system's positioned reads in small steps
(Hadoop's few-KB accesses), which is exactly the access pattern the
§IV-B client cache exists to absorb.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Union

from repro.fsapi import FileSystem, ReadStream

__all__ = [
    "FileSplit",
    "SyntheticSplit",
    "Split",
    "compute_file_splits",
    "iter_lines",
    "write_text_records",
    "IO_CHUNK",
]

#: Granularity of record-reader reads: "small chunks of a few KB
#: (usually, 4 KB) at a time" (paper §IV-B).
IO_CHUNK = 4 * 1024


@dataclass(frozen=True)
class FileSplit:
    """One map task's slice of an input file."""

    path: str
    offset: int
    length: int
    hosts: tuple[str, ...]

    @property
    def end(self) -> int:
        """One past the last byte of the split."""
        return self.offset + self.length


@dataclass(frozen=True)
class SyntheticSplit:
    """A generator map task (no input data)."""

    index: int
    hosts: tuple[str, ...] = field(default=())


Split = Union[FileSplit, SyntheticSplit]


def compute_file_splits(
    fs: FileSystem, paths: Sequence[str], split_size: int, engine=None
) -> list[FileSplit]:
    """Block-aligned splits for every file under *paths* (dirs recurse).

    "Usually Hadoop assigns a single mapper to process such a data
    block" — with ``split_size == block_size`` each block is one split,
    located on the hosts storing that block.

    *engine* (a :class:`~repro.blob.io_engine.ParallelIOEngine`, e.g.
    the file system's own ``io_engine``) resolves the per-file block
    locations concurrently — split planning over a many-file input is
    pure metadata fan-out, the kind of job-startup latency §IV-C's
    layout primitive exists to keep cheap.
    """
    if split_size < 1:
        raise ValueError("split_size must be >= 1")
    files: list[str] = []
    for path in paths:
        status = fs.status(path)
        if status.is_dir:
            stack = [path]
            while stack:
                current = stack.pop()
                for child in fs.list_dir(current):
                    if fs.status(child).is_dir:
                        stack.append(child)
                    else:
                        files.append(child)
        else:
            files.append(path)

    def splits_of(file_path: str) -> list[FileSplit]:
        size = fs.status(file_path).size
        splits: list[FileSplit] = []
        offset = 0
        while offset < size:
            length = min(split_size, size - offset)
            locations = fs.block_locations(file_path, offset, length)
            hosts = locations[0].hosts if locations else ()
            splits.append(
                FileSplit(path=file_path, offset=offset, length=length, hosts=hosts)
            )
            offset += length
        return splits

    ordered = sorted(files)
    if engine is not None and len(ordered) > 1:
        per_file = engine.map(splits_of, ordered)
    else:
        per_file = [splits_of(f) for f in ordered]
    return [split for file_splits in per_file for split in file_splits]


def _scan_to_newline(stream: ReadStream, position: int) -> int:
    """First position after the next newline at/after *position*."""
    size = stream.size
    while position < size:
        chunk = stream.pread(position, min(IO_CHUNK, size - position))
        newline = chunk.find(b"\n")
        if newline >= 0:
            return position + newline + 1
        position += len(chunk)
    return size


def iter_lines(stream: ReadStream, offset: int, length: int) -> Iterator[tuple[int, str]]:
    """Yield ``(byte_offset, line)`` records owned by the split.

    Hadoop's ownership rule: a split owns every line that *starts*
    within ``[offset, offset+length)``, where a line "starts" right
    after the previous newline.  The reader skips a partial first line
    (when ``offset > 0``) and runs past the end to complete its last.
    """
    size = stream.size
    end = min(offset + length, size)
    position = offset
    if offset > 0:
        # A line starts at `offset` only if the previous byte is '\n';
        # otherwise the line belongs to the previous split — skip it.
        if stream.pread(offset - 1, 1) != b"\n":
            position = _scan_to_newline(stream, offset)
    while position < end:
        line_start = position
        first = stream.pread(position, min(IO_CHUNK, size - position))
        newline = first.find(b"\n")
        if newline >= 0:
            # Fast path — the whole line sits in one chunk (almost
            # always, at few-KB chunks): decode the slice directly,
            # no accumulator.
            position += newline + 1
            yield (line_start, first[:newline].decode("utf-8", errors="replace"))
            continue
        # Long line spanning chunks: grow ONE bytearray in place and
        # decode it directly — no pieces list, no ``b"".join`` copy.
        pieces = bytearray(first)
        position += len(first)
        while True:
            chunk = stream.pread(position, min(IO_CHUNK, size - position))
            if not chunk:
                break
            newline = chunk.find(b"\n")
            if newline >= 0:
                pieces += memoryview(chunk)[:newline]
                position += newline + 1
                break
            pieces += chunk
            position += len(chunk)
        yield (line_start, pieces.decode("utf-8", errors="replace"))


def write_text_records(
    fs: FileSystem,
    path: str,
    pairs: Sequence[tuple[object, object]],
    client: str | None = None,
) -> int:
    """Write key/value pairs as text lines; returns bytes written.

    Hadoop's ``TextOutputFormat``: ``key \\t value``; a ``None`` key
    writes the bare value (RandomTextWriter's output shape).
    """
    written = 0
    with fs.create(path, client=client) as out:
        for key, value in pairs:
            if key is None:
                line = f"{value}\n"
            else:
                line = f"{key}\t{value}\n"
            encoded = line.encode("utf-8")
            out.write(encoded)
            written += len(encoded)
    return written
