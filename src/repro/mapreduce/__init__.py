"""Hadoop-style MapReduce engine with locality-aware scheduling."""

from repro.mapreduce.io import (
    FileSplit,
    Split,
    SyntheticSplit,
    compute_file_splits,
    iter_lines,
    write_text_records,
)
from repro.mapreduce.job import Emitter, JobConf
from repro.mapreduce.jobtracker import (
    ScheduleStats,
    TaskAssignment,
    schedule_map_tasks,
)
from repro.mapreduce.runtime import JobResult, LocalJobRunner
from repro.mapreduce.tasks import MapOutput, partition_for, run_map_task, run_reduce_task

__all__ = [
    "JobConf",
    "Emitter",
    "FileSplit",
    "SyntheticSplit",
    "Split",
    "compute_file_splits",
    "iter_lines",
    "write_text_records",
    "schedule_map_tasks",
    "TaskAssignment",
    "ScheduleStats",
    "MapOutput",
    "partition_for",
    "run_map_task",
    "run_reduce_task",
    "LocalJobRunner",
    "JobResult",
]
