"""Locality-aware task scheduling (the jobtracker's core decision).

"Hadoop's job scheduler (the jobtracker) places computations as close
as possible to the data" (paper §II-B); tasks that land on a node
storing their input block are *local maps*, the rest are *remote maps*
(§V-E).  The wave-based greedy scheduler here is shared verbatim by the
functional runner (for locality statistics) and the simulated Hadoop
deployment (where placement decides which NICs carry the reads — the
effect Figure 6(b) measures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.mapreduce.io import Split

__all__ = ["TaskAssignment", "ScheduleStats", "schedule_map_tasks"]


@dataclass(frozen=True)
class TaskAssignment:
    """One map task placed on one tasktracker."""

    task_index: int
    split: Split
    tracker: str
    is_local: bool
    wave: int


@dataclass(frozen=True)
class ScheduleStats:
    """Aggregate placement quality of one schedule."""

    total: int
    local: int
    remote: int
    waves: int

    @property
    def locality(self) -> float:
        """Fraction of local maps (1.0 = perfect affinity)."""
        return self.local / self.total if self.total else 1.0


def schedule_map_tasks(
    splits: Sequence[Split],
    trackers: Sequence[str],
    slots_per_tracker: int = 2,
) -> tuple[list[TaskAssignment], ScheduleStats]:
    """Assign every split to a tracker in waves, preferring local data.

    Emulates Hadoop's pull model: each wave, every tracker asks for up
    to ``slots_per_tracker`` tasks; the jobtracker hands it a task whose
    input is local if one remains, otherwise an arbitrary pending task.

    Returns the assignments (in execution order) and placement stats.
    """
    if not trackers:
        raise ValueError("no tasktrackers")
    if slots_per_tracker < 1:
        raise ValueError("slots_per_tracker must be >= 1")
    pending: dict[int, Split] = dict(enumerate(splits))
    # Pre-index pending tasks by host for O(1) local lookups.
    by_host: dict[str, list[int]] = {}
    for index, split in pending.items():
        for host in split.hosts:
            by_host.setdefault(host, []).append(index)

    assignments: list[TaskAssignment] = []
    local = 0
    wave = 0
    while pending:
        progressed = False
        for _slot in range(slots_per_tracker):
            for tracker in trackers:
                if not pending:
                    break
                # Prefer a task whose data lives on this tracker.
                task_index = None
                queue = by_host.get(tracker, [])
                while queue:
                    candidate = queue.pop(0)
                    if candidate in pending:
                        task_index = candidate
                        break
                is_local = task_index is not None
                if task_index is None:
                    task_index = next(iter(pending))
                split = pending.pop(task_index)
                local += int(is_local)
                assignments.append(
                    TaskAssignment(
                        task_index=task_index,
                        split=split,
                        tracker=tracker,
                        is_local=is_local,
                        wave=wave,
                    )
                )
                progressed = True
        if not progressed:  # pragma: no cover - defensive
            raise RuntimeError("scheduler made no progress")
        wave += 1
    stats = ScheduleStats(
        total=len(assignments),
        local=local,
        remote=len(assignments) - local,
        waves=wave,
    )
    return assignments, stats
