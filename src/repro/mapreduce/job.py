"""Job definitions for the MapReduce engine.

Mirrors Hadoop's job configuration surface at the scale this
reproduction needs: input paths (or synthetic generator maps, for
RandomTextWriter-style jobs), a mapper, an optional combiner and
reducer, a reducer count, and a split size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

__all__ = ["Emitter", "JobConf"]


class Emitter:
    """Collects ``emit(key, value)`` pairs from mappers/reducers."""

    def __init__(self) -> None:
        self.pairs: list[tuple[object, object]] = []

    def __call__(self, key: object, value: object) -> None:
        """Record one output pair."""
        self.pairs.append((key, value))


#: ``mapper(key, value, emit)`` — for text input, key is the line's byte
#: offset and value the line (without newline); for synthetic maps, key
#: is the map index and value ''.
MapperFn = Callable[[object, str, Emitter], None]
#: ``reducer(key, values, emit)`` — values arrive grouped and sorted.
ReducerFn = Callable[[object, list, Emitter], None]


@dataclass
class JobConf:
    """One MapReduce job.

    Exactly one of ``input_paths`` / ``synthetic_maps`` drives the map
    phase: file inputs are split by block for locality scheduling;
    synthetic maps are generator tasks with no input (the paper's
    RandomTextWriter launches "a fixed number of mappers" that produce
    data from nothing).
    """

    name: str
    output_dir: str
    mapper: MapperFn
    input_paths: Sequence[str] = field(default_factory=tuple)
    synthetic_maps: int = 0
    reducer: Optional[ReducerFn] = None
    combiner: Optional[ReducerFn] = None
    num_reducers: int = 1
    split_size: Optional[int] = None
    #: ``partitioner(key, num_reducers) -> partition``; None = Hadoop's
    #: HashPartitioner.  Range partitioners (TotalOrderPartitioner)
    #: make concatenated reducer outputs globally sorted.
    partitioner: Optional[Callable[[object, int], int]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job needs a name")
        if bool(self.input_paths) == bool(self.synthetic_maps):
            raise ValueError(
                "exactly one of input_paths / synthetic_maps must be set"
            )
        if self.synthetic_maps < 0:
            raise ValueError("synthetic_maps must be >= 0")
        if self.num_reducers < 1:
            raise ValueError("num_reducers must be >= 1")
        if self.reducer is None and self.combiner is not None:
            raise ValueError("a combiner without a reducer is meaningless")

    @property
    def is_map_only(self) -> bool:
        """Map-only jobs write mapper output straight to part-m files."""
        return self.reducer is None
