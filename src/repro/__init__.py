"""repro — reproduction of *BlobSeer: Bringing High Throughput under
Heavy Concurrency to Hadoop Map-Reduce Applications* (IPDPS 2010).

Subpackages:

* ``repro.blob`` — the BlobSeer versioning blob store (the paper's
  contribution): striping, distributed segment-tree metadata, version
  manager, provider manager, replication, GC.
* ``repro.bsfs`` — the BlobSeer File System: Hadoop-style FileSystem API
  with namespace manager and client-side block caching.
* ``repro.gateway`` — the multi-tenant service front door: tenant
  authentication, per-tenant namespaces, token-bucket admission
  control, and stored-bytes quotas over one shared store.
* ``repro.hdfs`` — the HDFS baseline (namenode/datanodes, single-writer
  write-once semantics, local-first placement).
* ``repro.mapreduce`` — Hadoop-style MapReduce engine with locality
  scheduling, plus the paper's applications (RandomTextWriter, grep).
* ``repro.simulation`` — deterministic discrete-event engine, max-min
  fair flow network and cluster model (the Grid'5000 substitute).
* ``repro.deploy`` — BlobSeer/HDFS/Hadoop services deployed onto the
  simulated cluster.
* ``repro.harness`` — experiment drivers regenerating every figure of
  the paper's evaluation.
"""

from repro.blob.config import StoreConfig
from repro.gateway import Gateway, GatewayClient, TenantPolicy

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "StoreConfig",
    "Gateway",
    "GatewayClient",
    "TenantPolicy",
]
