"""Calibration of the simulated Grid'5000 platform (paper §V-A).

Two kinds of constants live here:

* **measured by the paper** — NIC throughput (117.5 MB/s for TCP over
  the 1 Gbit/s links) and intra-cluster latency (0.1 ms).  These are
  taken verbatim.
* **calibrated** — quantities the paper does not report but that its
  curves pin down.  Each is documented with the observation that fixes
  it; EXPERIMENTS.md discusses the residual gaps.

The important calibrated constants:

``client_stream_cap``
    A single client stream tops out near 70 MB/s even though the NIC
    does 117.5 — the paper's own single-client curves (Figures 3(a)
    and 4 at N=1 show ~60-70 MB/s) fix this.  It models per-stream
    client-side costs (serialization, copies, TCP windows in the 2009
    userland) and applies identically to BSFS and HDFS clients.

``datanode_disk`` / ``provider ack discipline``
    HDFS datanodes acknowledge a chunk only after it is durably
    written (write-through), so an HDFS chunk costs network *plus*
    disk in sequence; BlobSeer providers acknowledge on receive and
    flush asynchronously (the C++ prototype cached blocks in memory).
    With a 100 MB/s sequential disk this yields the paper's ~40-45
    vs ~65 MB/s single-writer split (Figure 3(a)).

``hdfs_target_reuse``
    The namenode's target choice for a remote client is random, but
    the paper's *measured* layout imbalance (Figure 3(b): distance
    ~430 at 246 chunks over ~267 datanodes) is ~2.3x worse than an
    independent-uniform choice would produce.  A target-reuse run of
    ~3 consecutive chunks reproduces their measured curve; the same
    single calibrated mechanism then drives the read-side hotspots of
    Figures 4 and 6(b).  Functional-layer HDFS keeps pure random.

Reads are served from the datanode/provider page cache (every
experiment reads data written moments earlier in its boot-up phase,
40-85 MB per node — comfortably cached on 2-4 GB machines), so the
read path charges network but not disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulation.cluster import GRID5000_LATENCY, GRID5000_NIC_RATE
from repro.simulation.disk import DiskSpec
from repro.util.bytesize import MB

__all__ = ["Calibration", "DEFAULT_CALIBRATION"]


@dataclass(frozen=True)
class Calibration:
    """All tunable constants of the simulated platform in one place."""

    # --- measured by the paper (§V-A) ---
    nic_rate: float = GRID5000_NIC_RATE
    latency: float = GRID5000_LATENCY

    # --- storage hardware (calibrated, see module docstring) ---
    disk: DiskSpec = field(
        default_factory=lambda: DiskSpec(
            read_rate=100 * MB, write_rate=100 * MB, seek_time=0.002, channels=1
        )
    )

    # --- client-side ---
    client_stream_cap: float = 70 * MB
    block_size: int = 64 * MB
    #: Transfers at or below this size are latency-bound control traffic
    #: and skip the max-min fluid model (simulation tractability; the
    #: experiments' bulk 64 MB flows always contend properly).
    small_flow_cutoff: float = 256 * 1024.0
    #: Max in-flight block commits for the BSFS write-behind client
    #: (BlobSeer writes blocks "in parallel to the providers", §III-D).
    bsfs_write_window: int = 4

    # --- control-plane service times ---
    rpc_bytes: float = 512.0
    #: Version manager: the serialization point (one worker!).
    vm_service: float = 3e-4
    #: Provider manager per allocation request.
    pm_service: float = 1e-4
    #: One metadata provider serving a tree-node get/put.
    mdp_service: float = 1e-4
    #: BSFS namespace manager per request.
    ns_service: float = 1e-4
    #: HDFS namenode per request (centralized: all metadata ops).
    nn_service: float = 2e-4

    # --- HDFS write path ---
    #: Datanodes ack a chunk only once durably on disk (write-through).
    hdfs_write_through: bool = True
    #: Calibrated namenode target-reuse run (see module docstring).
    hdfs_target_reuse: int = 3

    def __post_init__(self) -> None:
        if self.client_stream_cap <= 0:
            raise ValueError("client_stream_cap must be positive")
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")
        if self.bsfs_write_window < 1:
            raise ValueError("bsfs_write_window must be >= 1")
        if self.hdfs_target_reuse < 1:
            raise ValueError("hdfs_target_reuse must be >= 1")


#: The calibration used by every figure unless a bench overrides it.
DEFAULT_CALIBRATION = Calibration()
