"""BlobSeer deployed on the simulated cluster (paper Figure 2).

Every process of the paper's architecture becomes an RPC service on a
:class:`~repro.simulation.cluster.SimNode`:

* the **version manager** — one worker (``concurrency=1``): version
  assignment is the protocol's only serialization point (§III-A.4),
  and the simulation enforces that architecturally;
* the **provider manager** — placement requests;
* **metadata providers** — each holds its hash-ring share of segment
  tree nodes;
* **data providers** — store blocks, acknowledge on receive, flush to
  disk asynchronously (the prototype buffers blocks in memory);
* the **namespace manager** — file→BLOB bindings for the BSFS facade.

The *logic* inside each service is the very same core class the
functional layer uses (``VersionManagerCore`` etc.) — the deployment
only adds placement of that logic onto nodes, message costs, queueing
and failure surfaces.  Client operations are generator protocols that
run the paper's §III-C/§III-D sequences over real simulated RPCs and
bulk flows.
"""

from __future__ import annotations

import itertools
from typing import Generator, Optional, Union

import numpy as np

from repro.blob.block import (
    AnyBlockDescriptor,
    BlockDescriptor,
    BytesPayload,
    CopyStats,
    Payload,
    SyntheticPayload,
    concat,
)
from repro.blob.config import StoreConfig
from repro.blob.data_provider import DataProviderCore
from repro.blob.provider_manager import ProviderManagerCore
from repro.blob.segment_tree import DescentPlan, NodeKey, TreeNode, build_patch
from repro.blob.version_manager import VersionManagerCore, WriteTicket
from repro.bsfs.namespace import NamespaceManager
from repro.deploy.platform import Calibration, DEFAULT_CALIBRATION
from repro.dht.ring import HashRing
from repro.errors import ProviderUnavailable
from repro.simulation.cluster import SimCluster, SimNode
from repro.simulation.engine import Engine
from repro.simulation.resources import Gate
from repro.simulation.rpc import Reply, RpcServer, call
from repro.util.chunks import split_range

__all__ = ["SimBlobSeer"]

#: Approximate wire size of one serialized tree node / descriptor.
_NODE_BYTES = 160.0
#: Wire size of one history record inside a ticket.
_RECORD_BYTES = 24.0


class SimBlobSeer:
    """A full BlobSeer deployment over a :class:`SimCluster`."""

    def __init__(
        self,
        cluster: SimCluster,
        provider_nodes: list[SimNode],
        metadata_nodes: list[SimNode],
        version_manager_node: SimNode,
        provider_manager_node: SimNode,
        namespace_node: SimNode,
        calibration: Calibration = DEFAULT_CALIBRATION,
        placement: str = "round_robin",
        seed: int = 0,
        metadata_replication: int = 1,
        commit_window: Optional[float] = None,
        config: Optional[StoreConfig] = None,
    ):
        if not provider_nodes:
            raise ValueError("need at least one data provider node")
        if not metadata_nodes:
            raise ValueError("need at least one metadata provider node")
        if config is not None:
            # One description of a store for both layers: the functional
            # LocalBlobStore and this simulated deployment share a
            # StoreConfig, which overrides the matching loose kwargs.
            # Topology fields (provider counts, block size) stay with the
            # explicit node lists — the cluster defines the topology here.
            config.validate()
            placement = config.placement
            seed = config.seed
            metadata_replication = config.metadata_replication
            if config.group_commit and config.publish_window > 0:
                commit_window = config.publish_window
        self.cluster = cluster
        self.cal = calibration
        self.metadata_replication = metadata_replication

        # --- cores (the same classes the functional layer runs) ---
        self.vm_core = VersionManagerCore()
        self.pm_core = ProviderManagerCore(
            policy=placement, rng=np.random.default_rng(seed)
        )
        #: Data-plane byte accounting shared by every simulated
        #: provider (DESIGN.md §11).
        self.copy_stats = CopyStats()
        self.dp_cores: dict[str, DataProviderCore] = {}
        for node in provider_nodes:
            self.pm_core.register(node.name)
            self.dp_cores[node.name] = DataProviderCore(
                node.name, copy_stats=self.copy_stats
            )
        self.ring = HashRing([n.name for n in metadata_nodes])
        self.md_buckets: dict[str, dict[NodeKey, TreeNode]] = {
            n.name: {} for n in metadata_nodes
        }
        self.namespace = NamespaceManager()

        # --- publication gates (linearizability, §III-A.5) ---
        self._gates: dict[str, Gate] = {}
        self.vm_core.on_publish(self._on_publish)

        # --- services ---
        self.vm_server = RpcServer(
            version_manager_node,
            "version-manager",
            handler=self._vm_handler,
            service_time=calibration.vm_service,
            concurrency=1,  # THE serialization point
        )
        self.pm_server = RpcServer(
            provider_manager_node,
            "provider-manager",
            handler=self._pm_handler,
            service_time=calibration.pm_service,
            concurrency=1,
        )
        self.ns_server = RpcServer(
            namespace_node,
            "namespace-manager",
            handler=self._ns_handler,
            service_time=calibration.ns_service,
            concurrency=1,
        )
        self.mdp_servers: dict[str, RpcServer] = {
            node.name: RpcServer(
                node,
                f"mdp-{node.name}",
                handler=self._make_mdp_handler(node.name),
                service_time=calibration.mdp_service,
                concurrency=8,
            )
            for node in metadata_nodes
        }
        self.dp_servers: dict[str, RpcServer] = {
            node.name: RpcServer(
                node,
                f"dp-{node.name}",
                handler=self._make_dp_handler(node.name),
                service_time=1e-5,
                concurrency=32,  # provider throughput is NIC-bound
            )
            for node in provider_nodes
        }
        self._nonce = itertools.count(1)
        #: Batched metadata RPCs issued by client protocols (each one
        #: covers a whole per-provider key/node group — the round-trip
        #: count the batching refactor optimizes; diagnostics surface).
        self.meta_rpcs = 0
        #: Version-manager RPCs issued by client protocols — the
        #: write-path twin of ``meta_rpcs`` (DESIGN.md §10): with a
        #: ``commit_window`` every completion report coalesced into one
        #: ``commit_batch`` request counts once, so under concurrent
        #: appends this grows with batches, not writers.
        self.vman_rpcs = 0
        #: Group-commit window in simulated seconds (``None`` = the
        #: historical one-commit-RPC-per-writer behavior).  Commits
        #: arriving within one window ride a single ``commit_batch``
        #: RPC carried by the window's first writer.
        self.commit_window = commit_window
        self._commit_pending: list[tuple] = []
        self._commit_flusher_live = False

    @property
    def engine(self) -> Engine:
        """The driving engine."""
        return self.cluster.engine

    # ------------------------------------------------------------------
    # service handlers (run on the service's node)
    # ------------------------------------------------------------------

    def _on_publish(self, blob_id: str, watermark: int) -> None:
        self._gate(blob_id).advance(watermark)

    def _gate(self, blob_id: str) -> Gate:
        if blob_id not in self._gates:
            self._gates[blob_id] = Gate(self.engine)
        return self._gates[blob_id]

    def _vm_handler(self, message: tuple):
        op = message[0]
        if op == "create":
            _, blob_id, block_size, replication = message
            self.vm_core.create_blob(blob_id, block_size, replication)
            self._gate(blob_id)
            return Reply(blob_id)
        if op == "assign_write":
            _, blob_id, offset, length = message
            ticket = self.vm_core.assign_write(blob_id, offset, length)
            return Reply(ticket, size=64.0 + _RECORD_BYTES * len(ticket.history))
        if op == "assign_append":
            _, blob_id, length = message
            ticket = self.vm_core.assign_append(blob_id, length)
            return Reply(ticket, size=64.0 + _RECORD_BYTES * len(ticket.history))
        if op == "commit":
            _, blob_id, version = message
            return Reply(self.vm_core.commit(blob_id, version))
        if op == "commit_batch":
            # Group commit (DESIGN.md §10): one serialized step admits
            # a whole window's completion reports; the watermark
            # advances (and the publication gates open) once per batch.
            outcomes = self.vm_core.commit_batch(list(message[1]))
            return Reply(tuple(outcomes), size=16.0 * len(outcomes))
        if op == "info":
            _, blob_id, version = message
            if version is None:
                return Reply(self.vm_core.latest(blob_id))
            return Reply(self.vm_core.snapshot_info(blob_id, version))
        raise ValueError(f"unknown version-manager op {op!r}")

    def _pm_handler(self, message: tuple):
        op, count, sizes, replication, client = message
        assert op == "allocate"
        placements = self.pm_core.allocate(
            count, sizes, replication=replication, client=client
        )
        return Reply(placements, size=32.0 * count * replication)

    def _ns_handler(self, message: tuple):
        op = message[0]
        if op == "register":
            _, path, blob_id = message
            self.namespace.register_file(path, blob_id)
            return Reply(None)
        if op == "lookup":
            return Reply(self.namespace.lookup(message[1]).blob_id)
        raise ValueError(f"unknown namespace op {op!r}")

    def _make_mdp_handler(self, bucket_name: str):
        bucket = self.md_buckets[bucket_name]

        def handler(message: tuple):
            op = message[0]
            if op == "put":
                node = message[1]
                bucket[node.key] = node
                return Reply(None)
            if op == "get":
                key = message[1]
                return Reply(bucket[key], size=_NODE_BYTES)
            if op == "multi_put":
                # Batched publish: a writer's whole share of a patch
                # for this provider lands in one request (DESIGN.md §9).
                for node in message[1]:
                    bucket[node.key] = node
                return Reply(None)
            if op == "multi_get":
                # Batched descent: one request answers a whole frontier
                # level's worth of keys owned by this provider.
                keys = message[1]
                found = {key: bucket[key] for key in keys}
                return Reply(found, size=_NODE_BYTES * max(len(found), 1))
            raise ValueError(f"unknown metadata op {op!r}")

        return handler

    def _make_dp_handler(self, provider_name: str):
        core = self.dp_cores[provider_name]
        node = self.cluster.node(provider_name)

        def handler(message: tuple):
            op = message[0]
            if op == "put":
                _, block_id, payload = message
                core.put(block_id, payload)
                # Acknowledge on receive; the flush happens off the
                # critical path (the prototype buffers in memory).
                node.disk.write(payload.size)
                return Reply(None)
            if op == "get":
                _, block_id, start, length = message
                payload = core.get(block_id)
                part = payload.slice(start, length)
                # Page-cache read (data written moments ago): no disk.
                return Reply(part, size=float(part.size))
            raise ValueError(f"unknown data-provider op {op!r}")

        return handler

    # ------------------------------------------------------------------
    # client protocols (generators; run from any client node)
    # ------------------------------------------------------------------

    def create(
        self,
        client: SimNode,
        blob_id: str,
        block_size: Optional[int] = None,
        replication: int = 1,
    ) -> Generator:
        """Create an empty BLOB (one version-manager RPC)."""
        bs = block_size if block_size is not None else self.cal.block_size
        self.vman_rpcs += 1
        yield from call(client, self.vm_server, ("create", blob_id, bs, replication))
        return blob_id

    def write(
        self,
        client: SimNode,
        blob_id: str,
        data: Union[int, Payload],
        offset: Optional[int] = None,
        produce_rate: Optional[float] = None,
        replication: int = 1,
    ) -> Generator:
        """The §III-D write/append protocol.  ``offset=None`` appends.

        *data* is a payload (real or synthetic) or a plain byte count.
        ``produce_rate`` models the client generating/serializing the
        data concurrently with its transfer (a writer cannot ship bytes
        faster than it produces them); ``None`` means instantaneous.
        Returns the new snapshot version.
        """
        payload: Payload = (
            SyntheticPayload(int(data), tag=blob_id) if isinstance(data, int) else data
        )
        state = self.vm_core.blob(blob_id)
        block_size = state.block_size
        pieces = [
            payload.slice(s.offset, s.length)
            for s in split_range(0, payload.size, block_size)
        ]
        sizes = [p.size for p in pieces]

        # 1. placement (provider manager RPC).
        placements = yield from call(
            client,
            self.pm_server,
            ("allocate", len(pieces), sizes, replication, client.name),
        )

        # 2. first phase: publish data blocks — "as no synchronization
        # is necessary, this step can be performed in a fully parallel
        # fashion" (§III-A.4).  Production overlaps the transfers.
        nonce = next(self._nonce)
        puts = []
        for seq, (piece, replicas) in enumerate(zip(pieces, placements)):
            for provider in replicas:
                puts.append(
                    self.engine.process(
                        call(
                            client,
                            self.dp_servers[provider],
                            ("put", (blob_id, nonce, seq), piece),
                            request_size=float(piece.size),
                        ),
                        name=f"put-{blob_id}-{nonce}-{seq}",
                    )
                )
        if produce_rate is not None:
            yield self.engine.timeout(payload.size / produce_rate)
        yield self.engine.all_of(puts)

        # 3. version assignment — the only serialized step.
        self.vman_rpcs += 1
        if offset is None:
            ticket: WriteTicket = yield from call(
                client, self.vm_server, ("assign_append", blob_id, payload.size)
            )
        else:
            ticket = yield from call(
                client, self.vm_server, ("assign_write", blob_id, offset, payload.size)
            )

        # 4. weave metadata from the ticket's hints and publish the
        # patch to the DHT — fully parallel across nodes and writers.
        def leaf_descriptor(index: int) -> BlockDescriptor:
            seq = index - ticket.start_block
            return BlockDescriptor(
                blob_id=blob_id,
                version=ticket.version,
                index=index,
                size=sizes[seq],
                providers=placements[seq],
                nonce=nonce,
                seq=seq,
            )

        patch = build_patch(
            blob_id=blob_id,
            version=ticket.version,
            write_start=ticket.start_block,
            write_end=ticket.end_block,
            size_after_blocks=ticket.size_after_blocks,
            history=ticket.history,
            leaf_descriptor=leaf_descriptor,
        )
        by_owner: dict[str, list] = {}
        for node in patch:
            for owner in self.ring.replicas(node.key, self.metadata_replication):
                by_owner.setdefault(owner, []).append(node)
        meta_puts = []
        for owner, nodes in by_owner.items():
            # One batched RPC per metadata provider instead of one per
            # node per replica: the per-request overhead is paid once
            # per provider, the payload still travels in full.
            self.meta_rpcs += 1
            meta_puts.append(
                self.engine.process(
                    call(
                        client,
                        self.mdp_servers[owner],
                        ("multi_put", tuple(nodes)),
                        request_size=_NODE_BYTES * len(nodes),
                    ),
                    name=f"meta-put-{blob_id}-{ticket.version}",
                )
            )
        yield self.engine.all_of(meta_puts)

        # 5. report success; the watermark advances in version order —
        # through the group-commit window when one is configured.
        yield from self._commit_version(client, blob_id, ticket.version)
        return ticket.version

    def append(self, client: SimNode, blob_id: str, data, **kwargs) -> Generator:
        """Append = write with the offset fixed by the version manager."""
        version = yield from self.write(client, blob_id, data, offset=None, **kwargs)
        return version

    def _commit_version(self, client: SimNode, blob_id: str, version: int) -> Generator:
        """Report one write's completion; returns the new watermark.

        Without a ``commit_window`` this is the historical per-writer
        ``commit`` RPC.  With one, the report joins the current window:
        the window's first writer spawns the flusher, which waits out
        the window and ships **one** ``commit_batch`` RPC for every
        report that accumulated — O(batches), not O(writers), vman
        round trips under fig5-style append concurrency.  Per-item
        outcomes come back to their own writers (a batch-mate's invalid
        commit fails that writer alone).
        """
        if self.commit_window is None:
            self.vman_rpcs += 1
            watermark = yield from call(
                client, self.vm_server, ("commit", blob_id, version)
            )
            return watermark
        done = self.engine.event()
        self._commit_pending.append((blob_id, version, done))
        if not self._commit_flusher_live:
            self._commit_flusher_live = True
            self.engine.process(
                self._flush_commit_window(client), name="vman-commit-flush"
            )
        watermark = yield done
        return watermark

    def _flush_commit_window(self, client: SimNode) -> Generator:
        """Ship one ``commit_batch`` RPC for the window's reports.

        A failing RPC (version-manager node down, handler error) is
        delivered to **every** writer parked on the window — the
        per-writer path would have handed each of them the same
        failure, and a dead flusher must never strand its batch (the
        sim twin of ``_GroupBatcher``'s route-to-unsettled guard).
        """
        yield self.engine.timeout(self.commit_window)
        batch, self._commit_pending = self._commit_pending, []
        # Reports arriving during the RPC below open a fresh window.
        self._commit_flusher_live = False
        self.vman_rpcs += 1
        try:
            outcomes = yield from call(
                client,
                self.vm_server,
                ("commit_batch", tuple((b, v) for b, v, _ in batch)),
                request_size=24.0 * len(batch),
            )
        except Exception as exc:
            for _, _, done in batch:
                done.fail(exc)
            return
        for (_, _, done), outcome in zip(batch, outcomes):
            if outcome.error is not None:
                done.fail(outcome.error)
            elif outcome.hook_error is not None:
                done.fail(outcome.hook_error)
            else:
                done.succeed(outcome.watermark)

    def read(
        self,
        client: SimNode,
        blob_id: str,
        offset: int = 0,
        size: Optional[int] = None,
        version: Optional[int] = None,
        consume_rate: Optional[float] = None,
    ) -> Generator:
        """The §III-C read protocol; returns the assembled payload.

        ``consume_rate`` caps each block transfer (the reader processes
        data as it streams); ``None`` reads at wire speed.
        """
        self.vman_rpcs += 1
        info = yield from call(client, self.vm_server, ("info", blob_id, version))
        if size is None:
            size = info.size - offset
        if size == 0:
            return SyntheticPayload(0, tag=blob_id)
        if offset < 0 or offset + size > info.size:
            raise ValueError(
                f"read [{offset}, {offset + size}) outside snapshot of {info.size}B"
            )

        # Metadata descent: one parallel batched-RPC round per tree
        # level — frontier keys are grouped by owning provider and each
        # provider is asked once per level, so a read costs O(tree
        # depth) round trips instead of O(nodes visited) (DESIGN.md §9).
        lo = offset // info.block_size
        hi = -(-(offset + size) // info.block_size)
        root = NodeKey(blob_id, info.version, 0, info.root_span)
        plan = DescentPlan(root, lo, hi)
        while not plan.done:
            frontier = plan.take_frontier()
            by_server: dict[str, list[NodeKey]] = {}
            for key in frontier:
                by_server.setdefault(self.ring.lookup(key), []).append(key)
            fetches = {}
            for server_name, keys in by_server.items():
                self.meta_rpcs += 1
                fetches[server_name] = self.engine.process(
                    call(
                        client,
                        self.mdp_servers[server_name],
                        ("multi_get", tuple(keys)),
                        request_size=self.cal.rpc_bytes + 8.0 * len(keys),
                    ),
                    name="meta-get",
                )
            results = yield self.engine.all_of(list(fetches.values()))
            for server_name, keys in by_server.items():
                found = results[fetches[server_name]]
                for key in keys:
                    plan.feed(key, found[key])
        descriptors = plan.blocks()

        # Block fetches: "requests are sent asynchronously and processed
        # in parallel by the data providers"; only the required parts of
        # the extremal blocks travel (§III-C).
        fetches = []
        for piece, descriptor in zip(
            split_range(offset, size, info.block_size), descriptors
        ):
            fetches.append(
                self.engine.process(
                    self._fetch_block(
                        client, descriptor, piece.start, piece.length, consume_rate
                    ),
                    name=f"fetch-{descriptor.index}",
                )
            )
        results = yield self.engine.all_of(fetches)
        total = sum(results[p].size for p in fetches)
        # ``concat`` gathers real parts into ONE preallocated buffer
        # (vectored assembly, DESIGN.md §11); mixed/synthetic parts
        # degrade to a synthetic payload of the same size.
        return SyntheticPayload(total, tag=blob_id) if not all(
            results[p].is_real for p in fetches
        ) else concat([results[p] for p in fetches])

    def _fetch_block(
        self,
        client: SimNode,
        descriptor: AnyBlockDescriptor,
        start: int,
        length: int,
        consume_rate: Optional[float],
    ) -> Generator:
        if descriptor.is_zero:
            # Tombstone filler (DESIGN.md §7): synthesised by the
            # client, no provider RPC and no simulated transfer cost.
            return BytesPayload(bytes(length))
        last_error: Optional[Exception] = None
        for provider in descriptor.providers:
            server = self.dp_servers[provider]
            try:
                part = yield from call(
                    client,
                    server,
                    ("get", descriptor.block_id, start, length),
                    request_size=self.cal.rpc_bytes,
                    rate_cap=consume_rate,
                )
                return part
            except (ProviderUnavailable, KeyError) as exc:
                last_error = exc
        raise ProviderUnavailable(
            f"no live replica of block {descriptor.block_id}"
        ) from last_error

    def wait_published(self, blob_id: str, version: int):
        """Event firing once snapshot *version* is revealed to readers."""
        return self._gate(blob_id).wait_for(version)

    # -- BSFS facade bits ------------------------------------------------------

    def register_file(self, client: SimNode, path: str, blob_id: str) -> Generator:
        """Bind a path to a BLOB at the namespace manager."""
        yield from call(client, self.ns_server, ("register", path, blob_id))

    def lookup_file(self, client: SimNode, path: str) -> Generator:
        """Resolve a path to its BLOB id (the open-time interaction)."""
        blob_id = yield from call(client, self.ns_server, ("lookup", path))
        return blob_id

    # -- maintenance (anti-entropy, DESIGN.md §8) ---------------------------------

    def scrub_metadata(self) -> dict[str, int]:
        """One anti-entropy pass over the simulated metadata buckets.

        Reconciles each tree-node key against its ring-assigned replica
        set: a bucket that missed puts (down, or added after the write)
        is re-fed from any healthy holder, and replicas disagreeing on
        a leaf are converged on the copy its owners share (first owner
        in ring order wins — in the simulation nodes are immutable, so
        disagreement only arises from injected damage).  Mirrors the
        functional layer's :func:`repro.blob.scrub.scrub_store`
        metadata phase; returns ``{"keys_checked", "replicas_healed"}``.
        """
        all_keys: set[NodeKey] = set()
        for bucket in self.md_buckets.values():
            all_keys.update(bucket.keys())
        checked = healed = 0
        for key in all_keys:
            owners = self.ring.replicas(key, self.metadata_replication)
            holders = [name for name in owners if key in self.md_buckets[name]]
            if not holders:
                continue  # only non-owner debris holds it; nothing authoritative
            checked += 1
            authority = self.md_buckets[holders[0]][key]
            for name in owners:
                if self.md_buckets[name].get(key) != authority:
                    self.md_buckets[name][key] = authority
                    healed += 1
        return {"keys_checked": checked, "replicas_healed": healed}

    # -- diagnostics -------------------------------------------------------------

    def provider_block_counts(self) -> dict[str, int]:
        """Actually-stored blocks per provider (Figure 3(b) vector)."""
        return {name: core.block_count for name, core in sorted(self.dp_cores.items())}

    def block_hosts(self, blob_id: str, version: Optional[int] = None) -> list[tuple[str, ...]]:
        """Provider tuple per block of a snapshot (affinity data)."""
        info = (
            self.vm_core.latest(blob_id)
            if version is None
            else self.vm_core.snapshot_info(blob_id, version)
        )
        if info.size == 0:
            return []
        root = NodeKey(blob_id, info.version, 0, info.root_span)
        plan = DescentPlan(root, 0, info.size_blocks)
        while not plan.done:
            for key in plan.take_frontier():
                plan.feed(key, self.md_buckets[self.ring.lookup(key)][key])
        return [d.providers for d in plan.blocks()]
