"""Simulated deployments: BlobSeer/HDFS/Hadoop services on the DES cluster."""

from repro.deploy.blobseer import SimBlobSeer
from repro.deploy.deployment import (
    MapReduceDeployment,
    MicrobenchDeployment,
    deploy_mapreduce,
    deploy_microbench,
)
from repro.deploy.hadoop import (
    BlobSeerAdapter,
    HdfsAdapter,
    JobProfile,
    SimHadoop,
    StorageAdapter,
)
from repro.deploy.hdfs import CHUNK_STALL, DATANODE_INGEST, SimHDFS
from repro.deploy.platform import DEFAULT_CALIBRATION, Calibration

__all__ = [
    "Calibration",
    "DEFAULT_CALIBRATION",
    "SimBlobSeer",
    "SimHDFS",
    "DATANODE_INGEST",
    "CHUNK_STALL",
    "SimHadoop",
    "JobProfile",
    "StorageAdapter",
    "BlobSeerAdapter",
    "HdfsAdapter",
    "MicrobenchDeployment",
    "MapReduceDeployment",
    "deploy_microbench",
    "deploy_mapreduce",
]
