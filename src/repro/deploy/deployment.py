"""Deployment recipes from the paper's evaluation (§V-C, §V-G).

Microbenchmarks (§V-C), on 270 machines of one Grid'5000 cluster:

* HDFS — one dedicated namenode, datanodes on the remaining nodes;
* BSFS — one version manager, one provider manager, one namespace
  manager and 20 metadata providers on dedicated machines; data
  providers on the remaining nodes.

Application runs (§V-G) co-deploy a tasktracker with a datanode/data
provider per machine (50 for RandomTextWriter with 10 metadata
providers, 150 for grep with 20), all managers on dedicated nodes.

Clients are placed per scenario: the single writer and the boot-up
writers run on a dedicated non-storage node (so HDFS cannot take its
local-write shortcut — the paper is explicit about this); concurrent
readers run *on* storage machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.deploy.blobseer import SimBlobSeer
from repro.deploy.hadoop import (
    BlobSeerAdapter,
    HdfsAdapter,
    JobProfile,
    SimHadoop,
    StorageAdapter,
)
from repro.deploy.hdfs import SimHDFS
from repro.deploy.platform import Calibration, DEFAULT_CALIBRATION
from repro.simulation.cluster import NodeSpec, SimCluster, SimNode

__all__ = [
    "MicrobenchDeployment",
    "MapReduceDeployment",
    "deploy_microbench",
    "deploy_mapreduce",
]


@dataclass
class MicrobenchDeployment:
    """A §V-C deployment of one backend plus client machines."""

    backend: str
    cluster: SimCluster
    storage: object  # SimBlobSeer | SimHDFS
    storage_nodes: list[SimNode]
    dedicated_client: SimNode
    calibration: Calibration = field(default_factory=Calibration)

    def storage_node_names(self) -> list[str]:
        """Names of the datanode/provider machines."""
        return [n.name for n in self.storage_nodes]


def _node_spec(cal: Calibration) -> NodeSpec:
    return NodeSpec(nic_rate=cal.nic_rate, disk=cal.disk)


def deploy_microbench(
    backend: str,
    total_nodes: int = 270,
    metadata_providers: int = 20,
    calibration: Calibration = DEFAULT_CALIBRATION,
    placement: str = "round_robin",
    seed: int = 0,
) -> MicrobenchDeployment:
    """Build the §V-C deployment for ``backend`` ("bsfs" or "hdfs").

    One extra machine hosts the dedicated client used by the write
    scenarios (the paper always deploys clients on separate machines
    from the entity they exercise when fairness demands it).
    """
    if backend not in ("bsfs", "hdfs"):
        raise ValueError(f"backend must be 'bsfs' or 'hdfs', got {backend!r}")
    if total_nodes < 25:
        raise ValueError("deployment needs at least 25 nodes")
    cluster = SimCluster(
        latency=calibration.latency,
        small_flow_cutoff=calibration.small_flow_cutoff,
    )
    spec = _node_spec(calibration)
    client = cluster.add_node("client-writer", spec)

    if backend == "hdfs":
        namenode = cluster.add_node("namenode", spec)
        datanodes = cluster.add_nodes("datanode", total_nodes - 1, spec)
        storage = SimHDFS(
            cluster,
            datanode_nodes=datanodes,
            namenode_node=namenode,
            calibration=calibration,
            seed=seed,
        )
        return MicrobenchDeployment(
            backend=backend,
            cluster=cluster,
            storage=storage,
            storage_nodes=datanodes,
            dedicated_client=client,
            calibration=calibration,
        )

    vm_node = cluster.add_node("version-manager", spec)
    pm_node = cluster.add_node("provider-manager", spec)
    ns_node = cluster.add_node("namespace-manager", spec)
    mdp_nodes = cluster.add_nodes("mdp", metadata_providers, spec)
    n_providers = total_nodes - 3 - metadata_providers
    provider_nodes = cluster.add_nodes("provider", n_providers, spec)
    storage = SimBlobSeer(
        cluster,
        provider_nodes=provider_nodes,
        metadata_nodes=mdp_nodes,
        version_manager_node=vm_node,
        provider_manager_node=pm_node,
        namespace_node=ns_node,
        calibration=calibration,
        placement=placement,
        seed=seed,
    )
    return MicrobenchDeployment(
        backend=backend,
        cluster=cluster,
        storage=storage,
        storage_nodes=provider_nodes,
        dedicated_client=client,
        calibration=calibration,
    )


@dataclass
class MapReduceDeployment:
    """A §V-G co-deployment: tasktracker + storage daemon per machine."""

    backend: str
    cluster: SimCluster
    storage: object
    adapter: StorageAdapter
    hadoop: SimHadoop
    worker_nodes: list[SimNode]
    dedicated_client: SimNode
    calibration: Calibration = field(default_factory=Calibration)


def deploy_mapreduce(
    backend: str,
    workers: int = 50,
    metadata_providers: int = 10,
    calibration: Calibration = DEFAULT_CALIBRATION,
    profile: Optional[JobProfile] = None,
    placement: str = "round_robin",
    seed: int = 0,
    replication: int = 1,
) -> MapReduceDeployment:
    """Build a §V-G co-deployment for ``backend`` ("bsfs" or "hdfs").

    Each of the ``workers`` machines runs both a tasktracker and a
    datanode / data provider; managers (jobtracker, namenode or the
    BlobSeer managers, and the metadata providers) sit on dedicated
    machines, exactly as described for the application experiments.
    """
    if backend not in ("bsfs", "hdfs"):
        raise ValueError(f"backend must be 'bsfs' or 'hdfs', got {backend!r}")
    if workers < 1:
        raise ValueError("need at least one worker")
    cluster = SimCluster(
        latency=calibration.latency,
        small_flow_cutoff=calibration.small_flow_cutoff,
    )
    spec = _node_spec(calibration)
    client = cluster.add_node("job-client", spec)
    worker_nodes = cluster.add_nodes("worker", workers, spec)

    storage: object
    adapter: StorageAdapter
    if backend == "hdfs":
        namenode = cluster.add_node("namenode", spec)
        storage = SimHDFS(
            cluster,
            datanode_nodes=worker_nodes,
            namenode_node=namenode,
            calibration=calibration,
            seed=seed,
            replication=replication,
        )
        adapter = HdfsAdapter(storage)
    else:
        vm_node = cluster.add_node("version-manager", spec)
        pm_node = cluster.add_node("provider-manager", spec)
        ns_node = cluster.add_node("namespace-manager", spec)
        mdp_nodes = cluster.add_nodes("mdp", metadata_providers, spec)
        storage = SimBlobSeer(
            cluster,
            provider_nodes=worker_nodes,
            metadata_nodes=mdp_nodes,
            version_manager_node=vm_node,
            provider_manager_node=pm_node,
            namespace_node=ns_node,
            calibration=calibration,
            placement=placement,
            seed=seed,
        )
        adapter = BlobSeerAdapter(storage)

    hadoop = SimHadoop(
        cluster,
        adapter=adapter,
        tracker_nodes=worker_nodes,
        profile=profile if profile is not None else JobProfile(),
    )
    return MapReduceDeployment(
        backend=backend,
        cluster=cluster,
        storage=storage,
        adapter=adapter,
        hadoop=hadoop,
        worker_nodes=worker_nodes,
        dedicated_client=client,
        calibration=calibration,
    )
