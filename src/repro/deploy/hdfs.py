"""HDFS deployed on the simulated cluster.

One namenode service (every metadata operation funnels through it) and
one datanode service per storage node.  The write path reproduces the
Hadoop-0.20 client behaviour the paper benchmarks against:

* chunks stream **sequentially**, one pipeline at a time, at the
  effective rate ``min(client stream, NIC fair share, datanode
  ingest)`` — the datanode receive path (checksum verification plus
  synchronous small writes) tops out well below wire speed
  (``Calibration`` docs);
* each chunk boundary stalls the writer for the pipeline close +
  ``addBlock`` + finalize sequence (namenode RPCs plus the buffered
  tail draining to disk) before the next pipeline opens;
* placement is local-first, else (calibrated) random — see
  :class:`~repro.hdfs.placement.HdfsPlacementPolicy`.

Reads stream chunks sequentially from datanodes (page-cache served).
"""

from __future__ import annotations

from typing import Generator, Optional, Union

import numpy as np

from repro.blob.block import Payload, SyntheticPayload
from repro.deploy.platform import Calibration, DEFAULT_CALIBRATION
from repro.errors import ProviderUnavailable
from repro.hdfs.datanode import DatanodeCore
from repro.hdfs.namenode import ChunkInfo, NamenodeCore
from repro.hdfs.placement import HdfsPlacementPolicy
from repro.simulation.cluster import SimCluster, SimNode
from repro.simulation.engine import Engine
from repro.simulation.rpc import Reply, RpcServer, call
from repro.util.bytesize import MB
from repro.util.chunks import split_range

__all__ = ["SimHDFS"]

#: Datanode ingest ceiling: CRC verification + synchronous 64 KB writes
#: in the 0.20 receive path (calibrated on Figure 3(a), see platform.py).
DATANODE_INGEST = 48 * MB
#: Writer stall at each chunk boundary: pipeline close, addBlock RPC,
#: block finalize, next pipeline setup (calibrated on Figure 3(a)).
CHUNK_STALL = 0.28


class SimHDFS:
    """A namenode + datanodes deployment over a :class:`SimCluster`."""

    def __init__(
        self,
        cluster: SimCluster,
        datanode_nodes: list[SimNode],
        namenode_node: SimNode,
        calibration: Calibration = DEFAULT_CALIBRATION,
        replication: int = 1,
        seed: int = 0,
        datanode_ingest: float = DATANODE_INGEST,
        chunk_stall: float = CHUNK_STALL,
    ):
        if not datanode_nodes:
            raise ValueError("need at least one datanode")
        self.cluster = cluster
        self.cal = calibration
        self.replication = replication
        self.datanode_ingest = datanode_ingest
        self.chunk_stall = chunk_stall
        self.nn_core = NamenodeCore(
            placement=HdfsPlacementPolicy(
                rng=np.random.default_rng(seed),
                target_reuse=calibration.hdfs_target_reuse,
            )
        )
        self.dn_cores: dict[str, DatanodeCore] = {}
        for node in datanode_nodes:
            self.nn_core.register_datanode(node.name)
            self.dn_cores[node.name] = DatanodeCore(node.name)
        self.nn_server = RpcServer(
            namenode_node,
            "namenode",
            handler=self._nn_handler,
            service_time=calibration.nn_service,
            concurrency=1,  # the centralized metadata server
        )
        self.dn_servers: dict[str, RpcServer] = {
            node.name: RpcServer(
                node,
                f"dn-{node.name}",
                handler=self._make_dn_handler(node.name),
                service_time=1e-5,
                concurrency=32,
            )
            for node in datanode_nodes
        }

    @property
    def engine(self) -> Engine:
        """The driving engine."""
        return self.cluster.engine

    # -- handlers --------------------------------------------------------------

    def _nn_handler(self, message: tuple):
        op = message[0]
        if op == "create":
            _, path, client = message
            self.nn_core.create_file(path, client)
            return Reply(None)
        if op == "allocate":
            _, path, client, replication = message
            return Reply(self.nn_core.allocate_chunk(path, client, replication))
        if op == "commit_chunk":
            _, path, client, chunk, size = message
            self.nn_core.commit_chunk(path, client, chunk, size)
            return Reply(None)
        if op == "complete":
            _, path, client = message
            self.nn_core.complete_file(path, client)
            return Reply(None)
        if op == "locations":
            _, path, offset, size = message
            locations = self.nn_core.block_locations(path, offset, size)
            return Reply(locations, size=48.0 * max(1, len(locations)))
        if op == "status":
            return Reply(self.nn_core.status(message[1]))
        raise ValueError(f"unknown namenode op {op!r}")

    def _make_dn_handler(self, name: str):
        core = self.dn_cores[name]
        node = self.cluster.node(name)

        def handler(message: tuple):
            op = message[0]
            if op == "put":
                _, chunk_id, payload = message
                core.put_chunk(chunk_id, payload)
                node.disk.write(payload.size)  # flush off the ack path;
                # the synchronous-write cost is in the ingest ceiling.
                return Reply(None)
            if op == "get":
                _, chunk_id, start, length = message
                part = core.get_chunk(chunk_id).slice(start, length)
                return Reply(part, size=float(part.size))  # page-cache read
            raise ValueError(f"unknown datanode op {op!r}")

        return handler

    # -- client protocols ---------------------------------------------------------

    def write_file(
        self,
        client: SimNode,
        path: str,
        data: Union[int, Payload],
        produce_rate: Optional[float] = None,
    ) -> Generator:
        """Create and write a whole file, chunk pipeline by pipeline."""
        payload: Payload = (
            SyntheticPayload(int(data), tag=path) if isinstance(data, int) else data
        )
        yield from call(client, self.nn_server, ("create", path, client.name))
        for piece_info in split_range(0, payload.size, self.cal.block_size):
            piece = payload.slice(piece_info.offset, piece_info.length)
            yield from self.write_chunk(client, path, piece, produce_rate=produce_rate)
        yield from call(client, self.nn_server, ("complete", path, client.name))

    def write_chunk(
        self,
        client: SimNode,
        path: str,
        piece: Payload,
        produce_rate: Optional[float] = None,
    ) -> Generator:
        """One chunk: allocate → stream through the pipeline → stall.

        The stream rate composes the producer, the NIC fair share and
        the datanode ingest ceiling; replication forwards sequentially
        (store-and-forward approximation of the pipeline).
        """
        chunk: ChunkInfo = yield from call(
            client, self.nn_server, ("allocate", path, client.name, self.replication)
        )
        cap = self.datanode_ingest
        if produce_rate is not None:
            cap = min(cap, produce_rate)
        previous = client
        for dn_name in chunk.datanodes:
            yield from call(
                previous,
                self.dn_servers[dn_name],
                ("put", chunk.chunk_id, piece),
                request_size=float(piece.size),
                rate_cap=cap,
            )
            previous = self.cluster.node(dn_name)
        yield from call(
            client, self.nn_server, ("commit_chunk", path, client.name, chunk, piece.size)
        )
        if self.chunk_stall:
            yield self.engine.timeout(self.chunk_stall)

    def read(
        self,
        client: SimNode,
        path: str,
        offset: int = 0,
        size: Optional[int] = None,
        consume_rate: Optional[float] = None,
    ) -> Generator:
        """Stream a byte range (sequential chunk fetches, like DFSClient)."""
        if size is None:
            status = yield from call(client, self.nn_server, ("status", path))
            size = status.size - offset
        if size == 0:
            return SyntheticPayload(0, tag=path)
        locations = yield from call(
            client, self.nn_server, ("locations", path, offset, size)
        )
        total = 0
        for location in locations:
            chunk_index = location.offset // self.cal.block_size
            start = location.offset - chunk_index * self.cal.block_size
            part = yield from self._fetch_chunk(
                client, path, location, start, location.length, consume_rate
            )
            total += part.size
        return SyntheticPayload(total, tag=path)

    def _fetch_chunk(
        self, client, path, location, start, length, consume_rate
    ) -> Generator:
        last_error: Optional[Exception] = None
        meta = self.nn_core.file_meta(path)
        chunk = next(
            c
            for c, loc_offset in _chunks_with_offsets(meta.chunks)
            if loc_offset <= location.offset < loc_offset + c.size
        )
        # Replica choice, DFSClient-style: the local replica if the
        # reader hosts one, otherwise a client-dependent rotation so
        # different readers (e.g. a speculative twin on another node)
        # spread over the replica set.
        hosts = list(location.hosts)
        if client.name in hosts:
            hosts.sort(key=lambda h: (h != client.name,))
        elif len(hosts) > 1:
            from repro.dht.ring import stable_hash

            pivot = stable_hash(client.name) % len(hosts)
            hosts = hosts[pivot:] + hosts[:pivot]
        for dn_name in hosts:
            try:
                part = yield from call(
                    client,
                    self.dn_servers[dn_name],
                    ("get", chunk.chunk_id, start, length),
                    request_size=self.cal.rpc_bytes,
                    rate_cap=consume_rate,
                )
                return part
            except (ProviderUnavailable, KeyError) as exc:
                last_error = exc
        raise ProviderUnavailable(
            f"no live replica of chunk {chunk.chunk_id}"
        ) from last_error

    # -- diagnostics ---------------------------------------------------------------

    def datanode_chunk_counts(self) -> dict[str, int]:
        """Actually-stored chunks per datanode (Figure 3(b) vector)."""
        return {name: core.chunk_count for name, core in sorted(self.dn_cores.items())}

    def chunk_hosts(self, path: str) -> list[tuple[str, ...]]:
        """Datanode tuple per chunk of a file (affinity data)."""
        return [c.datanodes for c in self.nn_core.file_meta(path).chunks]


def _chunks_with_offsets(chunks):
    offset = 0
    for chunk in chunks:
        yield chunk, offset
        offset += chunk.size
