"""Hadoop MapReduce over the simulated cluster (paper §V-G).

A pull-model jobtracker and heartbeat-driven tasktrackers, faithful to
Hadoop 0.20's scheduling: each tracker asks for work every heartbeat,
the jobtracker prefers a task whose input block is local to the asking
tracker ("local maps"), otherwise hands out any pending task ("remote
maps").  Map tasks consume simulated time for JVM start, input reading
(through the storage backend's client protocol — so placement skew and
NIC contention shape the read times) and/or output writing.

Two job shapes cover the paper's applications:

* **scan jobs** (distributed grep): one map per input block; the map
  streams its block at the application's scan rate — local blocks via
  loopback, remote blocks across NICs where hotspots throttle them;
* **write jobs** (RandomTextWriter): fixed number of generator maps,
  each producing a stream of bytes into its own output file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Protocol

from repro.simulation.cluster import SimCluster, SimNode
from repro.simulation.engine import Engine, Event

__all__ = ["JobProfile", "StorageAdapter", "BlobSeerAdapter", "HdfsAdapter", "SimHadoop"]


@dataclass(frozen=True)
class JobProfile:
    """Per-job framework constants (calibrated; see EXPERIMENTS.md).

    Attributes:
        jvm_start: per-task JVM launch cost (classic 0.20 overhead).
        heartbeat: tasktracker polling interval (0.20 default: 3 s).
        job_init: job client setup/submission before tasks can start.
        slots_per_tracker: concurrent map slots (0.20 default: 2).
        reduce_time: cost of the (tiny) reduce+commit phase for scan
            jobs — grep's reducers only sum a handful of counters.
        speculative: enable speculative execution — idle trackers run
            duplicate attempts of straggling tasks; the first attempt
            to finish wins (Hadoop's classic straggler mitigation,
            paper ref [17]).
        speculative_slowdown: a running task becomes a speculation
            candidate once its elapsed time exceeds this multiple of
            the median completed-task duration.
        max_task_attempts: a failing task (storage errors, dead
            datanodes) is re-queued and re-executed up to this many
            times before the whole job aborts ("re-executing the
            failed tasks", §II-B).
    """

    jvm_start: float = 1.0
    heartbeat: float = 3.0
    job_init: float = 4.0
    slots_per_tracker: int = 2
    reduce_time: float = 1.5
    speculative: bool = False
    speculative_slowdown: float = 1.5
    max_task_attempts: int = 4


class StorageAdapter(Protocol):
    """What SimHadoop needs from a storage deployment."""

    def block_hosts(self, handle: str) -> list[tuple[str, ...]]:
        """Hosts per block of an input file (affinity primitive)."""
        ...  # pragma: no cover

    def read_block(
        self, client: SimNode, handle: str, index: int, rate: Optional[float]
    ) -> Generator:
        """Stream one input block to *client* at up to *rate*."""
        ...  # pragma: no cover

    def write_output(
        self, client: SimNode, path: str, nbytes: int, produce_rate: Optional[float]
    ) -> Generator:
        """Create and write one mapper output file from *client*."""
        ...  # pragma: no cover


class BlobSeerAdapter:
    """BSFS-backed storage for simulated Hadoop."""

    def __init__(self, blobseer) -> None:
        self.blobseer = blobseer
        self._block_size = blobseer.cal.block_size

    def block_hosts(self, handle: str) -> list[tuple[str, ...]]:
        """Provider tuples per block (BlobSeer's §IV-C primitive)."""
        return self.blobseer.block_hosts(handle)

    def read_block(self, client, handle, index, rate) -> Generator:
        """One whole-block prefetch (§IV-B) via the §III-C protocol."""
        info = self.blobseer.vm_core.latest(handle)
        offset = index * self._block_size
        length = min(self._block_size, info.size - offset)
        result = yield from self.blobseer.read(
            client, handle, offset=offset, size=length, consume_rate=rate
        )
        return result

    def write_output(self, client, path, nbytes, produce_rate) -> Generator:
        """Register a fresh BLOB and append block-by-block (write-behind)."""
        blob_id = f"blob:{path}"
        yield from self.blobseer.create(client, blob_id)
        yield from self.blobseer.register_file(client, path, blob_id)
        remaining = nbytes
        while remaining > 0:
            piece = min(self._block_size, remaining)
            yield from self.blobseer.append(
                client, blob_id, piece, produce_rate=produce_rate
            )
            remaining -= piece


class HdfsAdapter:
    """HDFS-backed storage for simulated Hadoop."""

    def __init__(self, hdfs) -> None:
        self.hdfs = hdfs
        self._block_size = hdfs.cal.block_size

    def block_hosts(self, handle: str) -> list[tuple[str, ...]]:
        """Datanode tuples per chunk (namenode metadata)."""
        return self.hdfs.chunk_hosts(handle)

    def read_block(self, client, handle, index, rate) -> Generator:
        """Stream one chunk from a datanode."""
        meta = self.hdfs.nn_core.file_meta(handle)
        offset = index * self._block_size
        length = min(self._block_size, meta.size - offset)
        result = yield from self.hdfs.read(
            client, handle, offset=offset, size=length, consume_rate=rate
        )
        return result

    def write_output(self, client, path, nbytes, produce_rate) -> Generator:
        """Write a file chunk pipeline by chunk pipeline."""
        yield from self.hdfs.write_file(client, path, nbytes, produce_rate=produce_rate)


class SimHadoop:
    """Jobtracker + tasktrackers over simulated storage."""

    def __init__(
        self,
        cluster: SimCluster,
        adapter: StorageAdapter,
        tracker_nodes: list[SimNode],
        profile: JobProfile = JobProfile(),
    ):
        if not tracker_nodes:
            raise ValueError("need at least one tasktracker")
        self.cluster = cluster
        self.adapter = adapter
        self.trackers = tracker_nodes
        self.profile = profile
        #: Scheduling statistics of the last job.
        self.last_local = 0
        self.last_remote = 0
        self.last_speculative = 0
        self.last_failures = 0

    @property
    def engine(self) -> Engine:
        """The driving engine."""
        return self.cluster.engine

    # -- the scheduling core (shared by both job shapes) -----------------------------

    def _run_tasks(self, tasks: dict[int, tuple[str, ...]], task_body) -> Generator:
        """Heartbeat scheduling loop.

        *tasks* maps task index → preferred hosts (empty = no affinity);
        ``task_body(tracker_node, task_index)`` is a generator run per
        task.  Returns when every task has completed.
        """
        profile = self.profile
        pending = dict(tasks)
        by_host: dict[str, list[int]] = {}
        for index, hosts in tasks.items():
            for host in hosts:
                by_host.setdefault(host, []).append(index)
        free_slots = {node.name: profile.slots_per_tracker for node in self.trackers}
        done_event = Event(self.engine)
        remaining = [len(tasks)]
        started_at: dict[int, float] = {}
        attempts: dict[int, int] = {}
        finished: set[int] = set()
        durations: list[float] = []
        self.last_local = 0
        self.last_remote = 0
        self.last_speculative = 0
        self.last_failures = 0

        def speculation_candidate() -> Optional[int]:
            """A running straggler worth duplicating (Hadoop [17])."""
            if not profile.speculative or pending or not durations:
                return None
            ordered = sorted(durations)
            median = ordered[len(ordered) // 2]
            threshold = profile.speculative_slowdown * median
            now = self.engine.now
            candidates = [
                index
                for index, t0 in started_at.items()
                if index not in finished
                and attempts.get(index, 0) < 2
                and now - t0 > threshold
            ]
            if not candidates:
                return None
            # Duplicate the longest-running straggler first.
            return min(candidates, key=lambda i: started_at[i])

        def next_task(tracker: str) -> Optional[int]:
            queue = by_host.get(tracker, [])
            while queue:
                candidate = queue.pop(0)
                if candidate in pending:
                    self.last_local += 1
                    return candidate
            if pending:
                self.last_remote += 1
                return next(iter(pending))
            straggler = speculation_candidate()
            if straggler is not None:
                self.last_speculative += 1
                attempts[straggler] = attempts.get(straggler, 0) + 1
                return straggler
            return None

        def task_wrapper(node: SimNode, index: int) -> Generator:
            from repro.errors import JobFailed, ReproError

            yield self.engine.timeout(profile.jvm_start)
            try:
                yield from task_body(node, index)
            except ReproError as exc:
                free_slots[node.name] += 1
                if index in finished:
                    return  # a twin already succeeded; the loss is moot
                self.last_failures += 1
                if attempts.get(index, 0) >= profile.max_task_attempts:
                    if not done_event.triggered:
                        done_event.fail(
                            JobFailed(
                                f"task {index} failed "
                                f"{profile.max_task_attempts} times: {exc!r}"
                            )
                        )
                    return
                # Re-queue for another attempt on any tracker.
                pending[index] = tasks[index]
                for host in tasks[index]:
                    by_host.setdefault(host, []).append(index)
                return
            free_slots[node.name] += 1
            if index in finished:
                return  # a speculative twin already won
            finished.add(index)
            durations.append(self.engine.now - started_at[index])
            remaining[0] -= 1
            if remaining[0] == 0:
                done_event.succeed()

        def tracker_loop(node: SimNode, stagger: float) -> Generator:
            yield self.engine.timeout(stagger)
            while remaining[0] > 0:
                # Hadoop 0.20 assigned at most ONE task per heartbeat;
                # slots fill over successive heartbeats.
                if free_slots[node.name] > 0:
                    index = next_task(node.name)
                    if index is not None:
                        if index in pending:
                            pending.pop(index)
                            started_at[index] = self.engine.now
                            attempts[index] = attempts.get(index, 0) + 1
                        free_slots[node.name] -= 1
                        self.engine.process(
                            task_wrapper(node, index), name=f"task-{index}"
                        )
                if done_event.triggered:
                    break
                yield self.engine.timeout(profile.heartbeat)

        for i, node in enumerate(self.trackers):
            # Heartbeats are staggered across trackers, as in a real
            # cluster where trackers started at different times.
            stagger = profile.heartbeat * (i / max(1, len(self.trackers)))
            self.engine.process(tracker_loop(node, stagger), name=f"tracker-{node.name}")
        yield done_event

    # -- job shapes ----------------------------------------------------------------

    def run_scan_job(
        self, input_handle: str, scan_rate: float, reduce_phase: bool = True
    ) -> Generator:
        """Distributed-grep shape: one map per input block.

        Returns the job completion time in simulated seconds.
        """
        start = self.engine.now
        hosts_per_block = self.adapter.block_hosts(input_handle)
        if not hosts_per_block:
            raise ValueError(f"input {input_handle!r} is empty")
        yield self.engine.timeout(self.profile.job_init)
        tasks = {i: hosts for i, hosts in enumerate(hosts_per_block)}

        def body(node: SimNode, index: int) -> Generator:
            yield from self.adapter.read_block(node, input_handle, index, rate=scan_rate)

        yield from self._run_tasks(tasks, body)
        if reduce_phase:
            yield self.engine.timeout(self.profile.reduce_time)
        return self.engine.now - start

    def run_write_job(
        self,
        output_prefix: str,
        num_mappers: int,
        bytes_per_mapper: int,
        generate_rate: float,
    ) -> Generator:
        """RandomTextWriter shape: generator maps, one output file each.

        Returns the job completion time in simulated seconds.
        """
        if num_mappers < 1:
            raise ValueError("num_mappers must be >= 1")
        start = self.engine.now
        yield self.engine.timeout(self.profile.job_init)
        tasks = {i: () for i in range(num_mappers)}

        def body(node: SimNode, index: int) -> Generator:
            yield from self.adapter.write_output(
                node,
                f"{output_prefix}/part-m-{index:05d}",
                bytes_per_mapper,
                produce_rate=generate_rate,
            )

        yield from self._run_tasks(tasks, body)
        return self.engine.now - start
