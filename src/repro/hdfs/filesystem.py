"""HDFS: the baseline file system (paper §II-B).

Single-writer, write-once, no append.  Chunks stream sequentially
through one pipeline at a time (HDFS's DFSClient writes one block
pipeline at a time), the namenode is on every metadata path, and
placement is local-first-else-random — the exact properties the paper's
microbenchmarks expose against BSFS.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.blob.block import BytesPayload, Payload
from repro.bsfs.cache import BlockReadCache, WriteBuffer
from repro.errors import (
    AppendNotSupported,
    IsADirectory,
    ProviderUnavailable,
)
from repro.fsapi import FileStatus, FileSystem, RangeLocation, ReadStream, WriteStream
from repro.hdfs.datanode import DatanodeCore
from repro.hdfs.namenode import NamenodeCore
from repro.hdfs.placement import HdfsPlacementPolicy
from repro.util.bytesize import MB, parse_size
from repro.util.chunks import split_range

__all__ = ["HDFSFileSystem", "HDFSWriteStream", "HDFSReadStream", "DEFAULT_CHUNK_SIZE"]

#: HDFS's chunk size in the paper: 64 MB.
DEFAULT_CHUNK_SIZE = 64 * MB


class HDFSWriteStream(WriteStream):
    """Sequential single-writer stream: one chunk pipeline at a time."""

    def __init__(self, fs: "HDFSFileSystem", path: str, client: str):
        self._fs = fs
        self._path = path
        self._client = client
        self._closed = False
        self._buffer = WriteBuffer(commit=self._commit, block_size=fs.block_size)

    def _commit(self, offset: int, data: Union[bytes, Payload]) -> None:
        payload: Payload = BytesPayload(data) if isinstance(data, bytes) else data
        # WriteBuffer only ever hands us whole chunks (plus one trailing
        # partial at close); each becomes one pipeline.
        for piece in split_range(0, payload.size, self._fs.block_size):
            chunk = self._fs.namenode.allocate_chunk(
                self._path, self._client, replication=self._fs.replication
            )
            part = payload.slice(piece.offset, piece.length)
            for datanode_name in chunk.datanodes:
                self._fs.datanodes[datanode_name].put_chunk(chunk.chunk_id, part)
            self._fs.namenode.commit_chunk(self._path, self._client, chunk, part.size)

    def write(self, data: bytes) -> None:
        """Buffer *data*; full chunks are pipelined as they fill."""
        if self._closed:
            raise ValueError("write to a closed stream")
        self._buffer.write(data)

    def close(self) -> None:
        """Flush the trailing chunk and seal the file (write-once)."""
        if self._closed:
            return
        self._closed = True
        self._buffer.close()
        self._fs.namenode.complete_file(self._path, self._client)

    @property
    def size(self) -> int:
        """Bytes written so far."""
        return self._buffer.size


class HDFSReadStream(ReadStream):
    """Chunk-prefetching reader (client-side read-ahead, §II-B)."""

    def __init__(self, fs: "HDFSFileSystem", path: str):
        meta = fs.namenode.file_meta(path)
        self._fs = fs
        self._chunks = list(meta.chunks)
        self._size = meta.size
        self._pos = 0
        self._cache = BlockReadCache(
            fetch_block=self._fetch_chunk,
            block_size=fs.block_size,
            file_size=self._size,
        )

    def _fetch_chunk(self, index: int) -> memoryview:
        chunk = self._chunks[index]
        last_error: Optional[Exception] = None
        for datanode_name in chunk.datanodes:
            datanode = self._fs.datanodes[datanode_name]
            if not datanode.online:
                last_error = ProviderUnavailable(f"{datanode_name} is down")
                continue
            try:
                # View, not ``.tobytes()``: a partial read of a 64 MB
                # chunk used to materialize all 64 MB before slicing —
                # stored chunks are immutable, so the cache can alias
                # them and let pread() copy only the requested bytes.
                return datanode.get_chunk(chunk.chunk_id).view()
            except KeyError as exc:
                last_error = exc
        raise ProviderUnavailable(
            f"no live replica of chunk {chunk.chunk_id} ({chunk.datanodes})"
        ) from last_error

    @property
    def size(self) -> int:
        """File size at open time."""
        return self._size

    @property
    def prefetches(self) -> int:
        """Datanode chunk fetches so far."""
        return self._cache.fetches

    def read(self, size: int = -1) -> bytes:
        """Sequential read from the cursor."""
        if size < 0:
            size = self._size - self._pos
        size = min(size, self._size - self._pos)
        data = self._cache.pread(self._pos, size)
        self._pos += len(data)
        return data

    def pread(self, offset: int, size: int) -> bytes:
        """Positional read."""
        size = max(0, min(size, self._size - offset))
        return self._cache.pread(offset, size)

    def seek(self, offset: int) -> None:
        """Move the cursor."""
        if offset < 0:
            raise ValueError(f"seek to negative offset {offset}")
        self._pos = min(offset, self._size)


class HDFSFileSystem(FileSystem):
    """The baseline: GoogleFS-style architecture with HDFS semantics."""

    def __init__(
        self,
        datanodes: Union[int, list[str]] = 16,
        block_size: Union[int, str] = DEFAULT_CHUNK_SIZE,
        replication: int = 1,
        seed: int = 0,
    ):
        if isinstance(datanodes, int):
            datanodes = [f"datanode-{i:03d}" for i in range(datanodes)]
        self.block_size = parse_size(block_size)
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.replication = replication
        self.namenode = NamenodeCore(
            placement=HdfsPlacementPolicy(rng=np.random.default_rng(seed))
        )
        self.datanodes: dict[str, DatanodeCore] = {}
        for name in datanodes:
            self.namenode.register_datanode(name)
            self.datanodes[name] = DatanodeCore(name)

    # -- streams -----------------------------------------------------------------

    def create(self, path: str, client: Optional[str] = None) -> HDFSWriteStream:
        """Open a new file under a single-writer lease."""
        client = client if client is not None else "client"
        self.namenode.create_file(path, client)
        return HDFSWriteStream(self, path, client)

    def open(self, path: str, client: Optional[str] = None) -> HDFSReadStream:
        """Open for reading."""
        return HDFSReadStream(self, path)

    def append(self, path: str, client: Optional[str] = None) -> WriteStream:
        """Refused: "HDFS does not implement the append operation" (§V-F)."""
        raise AppendNotSupported(
            "HDFS files cannot be appended to; this is the capability gap "
            "BSFS closes (paper §V-F)"
        )

    # -- namespace --------------------------------------------------------------------

    def status(self, path: str) -> FileStatus:
        """File/directory status (namenode holds all sizes)."""
        return self.namenode.status(path)

    def list_dir(self, path: str) -> list[str]:
        """Immediate children."""
        return self.namenode.list_dir(path)

    def make_dirs(self, path: str) -> None:
        """``mkdir -p``."""
        self.namenode.make_dirs(path)

    def delete(self, path: str, recursive: bool = False) -> None:
        """Remove entries and free their chunks on the datanodes."""
        metas = self.namenode.delete(path, recursive=recursive)
        for meta in metas:
            for chunk in meta.chunks:
                for datanode_name in chunk.datanodes:
                    datanode = self.datanodes[datanode_name]
                    if datanode.online:
                        datanode.delete_chunk(chunk.chunk_id)

    def rename(self, src: str, dst: str) -> None:
        """Move a file or subtree."""
        self.namenode.rename(src, dst)

    def exists(self, path: str) -> bool:
        """Existence check."""
        return self.namenode.exists(path)

    def block_locations(self, path: str, offset: int, size: int) -> list[RangeLocation]:
        """Chunk layout for the scheduler (namenode metadata)."""
        if self.namenode.is_dir(path):
            raise IsADirectory(path)
        return self.namenode.block_locations(path, offset, size)

    # -- diagnostics & failure injection -----------------------------------------------

    def datanode_chunk_counts(self) -> dict[str, int]:
        """Chunks per datanode — the HDFS side of Figure 3(b)."""
        return {name: d.chunk_count for name, d in sorted(self.datanodes.items())}

    def fail_datanode(self, name: str) -> None:
        """Take a datanode offline."""
        self.datanodes[name].fail()
        self.namenode.mark_datanode(name, online=False)

    def recover_datanode(self, name: str) -> None:
        """Bring a datanode back."""
        self.datanodes[name].recover()
        self.namenode.mark_datanode(name, online=True)
