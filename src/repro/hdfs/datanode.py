"""HDFS datanode: chunk storage.

"Files are split in 64 MB blocks that are distributed among datanodes"
(paper §II-B).  A datanode stores whole chunks keyed by chunk id; like
HDFS, chunks are written once and never modified.
"""

from __future__ import annotations

from typing import Iterator

from repro.blob.block import Payload
from repro.errors import ProviderUnavailable, WriteConflict

__all__ = ["DatanodeCore"]


class DatanodeCore:
    """One datanode's chunk map."""

    def __init__(self, name: str):
        self.name = name
        self.online = True
        self._chunks: dict[int, Payload] = {}
        self.stored_bytes = 0

    def _check_online(self) -> None:
        if not self.online:
            raise ProviderUnavailable(f"datanode {self.name} is down")

    def put_chunk(self, chunk_id: int, payload: Payload) -> None:
        """Store a chunk (write-once).

        Copy-on-publish, like the BlobSeer provider (DESIGN.md §11): a
        payload viewing mutable client memory is snapshotted here so
        readers may alias stored chunks freely.
        """
        self._check_online()
        if chunk_id in self._chunks:
            raise WriteConflict(f"chunk {chunk_id} already on datanode {self.name}")
        frozen = payload.freeze()
        self._chunks[chunk_id] = frozen
        self.stored_bytes += frozen.size

    def get_chunk(self, chunk_id: int) -> Payload:
        """Fetch a chunk (KeyError if absent)."""
        self._check_online()
        return self._chunks[chunk_id]

    def has_chunk(self, chunk_id: int) -> bool:
        """Existence check (False when offline)."""
        return self.online and chunk_id in self._chunks

    def delete_chunk(self, chunk_id: int) -> int:
        """Remove a chunk; returns bytes freed."""
        self._check_online()
        payload = self._chunks.pop(chunk_id, None)
        if payload is None:
            return 0
        self.stored_bytes -= payload.size
        return payload.size

    def chunk_ids(self) -> Iterator[int]:
        """Snapshot iterator over stored chunk ids."""
        return iter(list(self._chunks.keys()))

    @property
    def chunk_count(self) -> int:
        """Number of stored chunks."""
        return len(self._chunks)

    def fail(self) -> None:
        """Failure injection."""
        self.online = False

    def recover(self) -> None:
        """Return to service."""
        self.online = True
