"""HDFS chunk placement (paper §II-B, §V-D).

"The policy used by HDFS consists in writing locally whenever a write
is initiated on a datanode" — otherwise the namenode picks a random
datanode.  This local-first-else-random rule is the root cause of both
HDFS behaviours the paper measures: the pathological all-on-one-node
layout when the writer is co-located (§V-E first experiment), and the
unbalanced random layout (Figure 3(b)) when it is not.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ReplicationError

__all__ = ["HdfsPlacementPolicy"]


class HdfsPlacementPolicy:
    """Pick a replication pipeline for one new chunk.

    Args:
        rng: randomness source (seeded for reproducible experiments).
        target_reuse: reuse the randomly chosen remote target for this
            many consecutive chunks.  1 (the default) is independent
            uniform choice; ~3 reproduces the layout imbalance the
            paper *measured* in Figure 3(b) — see
            :mod:`repro.deploy.platform` for the calibration argument.
    """

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        target_reuse: int = 1,
    ):
        if target_reuse < 1:
            raise ValueError(f"target_reuse must be >= 1, got {target_reuse}")
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.target_reuse = target_reuse
        self._current: Optional[str] = None
        self._remaining = 0

    def choose_pipeline(
        self,
        live_datanodes: Sequence[str],
        replication: int,
        client: Optional[str],
    ) -> tuple[str, ...]:
        """Datanodes for one chunk, primary first.

        The primary is the client itself when the client runs a
        datanode (local write), else a (possibly reused) random pick;
        remaining replicas are distinct random picks.
        """
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        live = list(live_datanodes)
        if len(live) < replication:
            raise ReplicationError(
                f"replication {replication} impossible with {len(live)} live datanodes"
            )
        if client is not None and client in live:
            primary = client
        else:
            if self._remaining > 0 and self._current in live:
                primary = self._current
                self._remaining -= 1
            else:
                primary = live[int(self._rng.integers(0, len(live)))]
                self._current = primary
                self._remaining = self.target_reuse - 1
        pipeline = [primary]
        others = [d for d in live if d != primary]
        if replication > 1:
            picks = self._rng.permutation(len(others))[: replication - 1]
            pipeline.extend(others[i] for i in picks)
        return tuple(pipeline)
