"""HDFS namenode: centralized namespace + chunk-layout metadata.

"A centralized namenode is responsible to maintain both chunk layout
and directory structure metadata" (paper §II-B).  This is the
architectural contrast with BlobSeer: one server owns *all* metadata,
while data requests go straight to datanodes.

Write semantics enforced here are the paper's: "it allows only one
writer at a time, and, once written, data cannot be altered, neither by
overwriting nor by appending."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import (
    FileNotFound,
    LeaseConflict,
    ReadOnlyFile,
)
from repro.fsapi import DirectoryTree, FileStatus, RangeLocation, normalize_path
from repro.hdfs.placement import HdfsPlacementPolicy

__all__ = ["ChunkInfo", "HdfsFileMeta", "NamenodeCore"]


@dataclass(frozen=True)
class ChunkInfo:
    """One chunk of one file: identity, size, datanode pipeline."""

    chunk_id: int
    size: int
    datanodes: tuple[str, ...]


@dataclass
class HdfsFileMeta:
    """Namenode record for one file."""

    chunks: list[ChunkInfo] = field(default_factory=list)
    complete: bool = False

    @property
    def size(self) -> int:
        """Total file size (sum of sealed chunks)."""
        return sum(c.size for c in self.chunks)


class NamenodeCore:
    """The metadata server: namespace, chunk maps, leases, placement."""

    def __init__(self, placement: Optional[HdfsPlacementPolicy] = None):
        self._tree = DirectoryTree()
        self._leases: dict[str, str] = {}
        self._datanodes: dict[str, bool] = {}  # name -> online
        self._chunk_ids = itertools.count(1)
        self.placement = placement if placement is not None else HdfsPlacementPolicy()
        #: Served requests — every client metadata op funnels through here.
        self.requests = 0

    # -- datanode membership -------------------------------------------------------

    def register_datanode(self, name: str) -> None:
        """A datanode reports for duty."""
        if name in self._datanodes:
            raise ValueError(f"datanode {name!r} already registered")
        self._datanodes[name] = True

    def mark_datanode(self, name: str, online: bool) -> None:
        """Heartbeat bookkeeping (failure injection hooks here)."""
        if name not in self._datanodes:
            raise FileNotFound(f"unknown datanode {name!r}")
        self._datanodes[name] = online

    def live_datanodes(self) -> list[str]:
        """Currently live datanodes, name order."""
        return sorted(n for n, up in self._datanodes.items() if up)

    # -- write path -------------------------------------------------------------------

    def create_file(self, path: str, client: str) -> None:
        """Open a new file for writing under a single-writer lease."""
        self.requests += 1
        path = normalize_path(path)
        if path in self._leases:
            raise LeaseConflict(f"{path} is already open for writing")
        self._tree.add_file(path, HdfsFileMeta())
        self._leases[path] = client

    def _writable_meta(self, path: str, client: str) -> HdfsFileMeta:
        path = normalize_path(path)
        lease_holder = self._leases.get(path)
        if lease_holder is None:
            meta = self._tree.handle(path)
            assert isinstance(meta, HdfsFileMeta)
            if meta.complete:
                raise ReadOnlyFile(f"{path} is complete; HDFS files are write-once")
            raise LeaseConflict(f"{path} has no active lease")
        if lease_holder != client:
            raise LeaseConflict(
                f"{path} is leased to {lease_holder!r}, not {client!r}"
            )
        meta = self._tree.handle(path)
        assert isinstance(meta, HdfsFileMeta)
        return meta

    def allocate_chunk(
        self, path: str, client: str, replication: int = 1
    ) -> ChunkInfo:
        """Assign the next chunk id and its datanode pipeline."""
        self.requests += 1
        self._writable_meta(path, client)  # validates lease
        pipeline = self.placement.choose_pipeline(
            self.live_datanodes(), replication, client
        )
        return ChunkInfo(chunk_id=next(self._chunk_ids), size=0, datanodes=pipeline)

    def commit_chunk(self, path: str, client: str, chunk: ChunkInfo, size: int) -> None:
        """Record a fully-written chunk in the file's chunk list."""
        self.requests += 1
        meta = self._writable_meta(path, client)
        if size < 1:
            raise ValueError(f"chunk size must be positive, got {size}")
        meta.chunks.append(
            ChunkInfo(chunk_id=chunk.chunk_id, size=size, datanodes=chunk.datanodes)
        )

    def complete_file(self, path: str, client: str) -> None:
        """Seal the file: it becomes immutable and the lease is released."""
        self.requests += 1
        meta = self._writable_meta(path, client)
        meta.complete = True
        del self._leases[normalize_path(path)]

    # -- read path ------------------------------------------------------------------------

    def file_meta(self, path: str) -> HdfsFileMeta:
        """Metadata for a file (readers tolerate in-progress files not)."""
        self.requests += 1
        meta = self._tree.handle(path)
        assert isinstance(meta, HdfsFileMeta)
        return meta

    def block_locations(self, path: str, offset: int, size: int) -> list[RangeLocation]:
        """Chunks overlapping a byte range, with their datanodes."""
        self.requests += 1
        meta = self._tree.handle(path)
        assert isinstance(meta, HdfsFileMeta)
        locations = []
        position = 0
        end = offset + size
        for chunk in meta.chunks:
            chunk_start, chunk_end = position, position + chunk.size
            if chunk_start < end and chunk_end > offset:
                lo = max(offset, chunk_start)
                hi = min(end, chunk_end)
                locations.append(
                    RangeLocation(offset=lo, length=hi - lo, hosts=chunk.datanodes)
                )
            position = chunk_end
        return locations

    # -- namespace --------------------------------------------------------------------------

    def exists(self, path: str) -> bool:
        """Existence check."""
        self.requests += 1
        return self._tree.exists(path)

    def is_dir(self, path: str) -> bool:
        """Directory check."""
        self.requests += 1
        return self._tree.is_dir(path)

    def status(self, path: str) -> FileStatus:
        """File or directory status."""
        self.requests += 1
        path = normalize_path(path)
        if self._tree.is_dir(path):
            return FileStatus(path=path, is_dir=True, size=0)
        meta = self._tree.handle(path)
        assert isinstance(meta, HdfsFileMeta)
        return FileStatus(path=path, is_dir=False, size=meta.size)

    def list_dir(self, path: str) -> list[str]:
        """Immediate children."""
        self.requests += 1
        return self._tree.list_dir(path)

    def make_dirs(self, path: str) -> None:
        """``mkdir -p``."""
        self.requests += 1
        self._tree.make_dirs(path)

    def delete(self, path: str, recursive: bool = False) -> list[HdfsFileMeta]:
        """Remove namespace entries; returns metas whose chunks to free."""
        self.requests += 1
        path = normalize_path(path)
        if path in self._leases:
            raise LeaseConflict(f"{path} is open for writing")
        removed = self._tree.remove(path, recursive=recursive)
        return [m for m in removed if isinstance(m, HdfsFileMeta)]

    def rename(self, src: str, dst: str) -> None:
        """Move a file or subtree."""
        self.requests += 1
        if normalize_path(src) in self._leases:
            raise LeaseConflict(f"{src} is open for writing")
        self._tree.rename(src, dst)

    def iter_files(self, path: str = "/") -> list[str]:
        """All files under *path*."""
        self.requests += 1
        return list(self._tree.iter_files(path))
