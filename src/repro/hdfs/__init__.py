"""HDFS baseline: namenode, datanodes, single-writer write-once files."""

from repro.hdfs.datanode import DatanodeCore
from repro.hdfs.filesystem import (
    DEFAULT_CHUNK_SIZE,
    HDFSFileSystem,
    HDFSReadStream,
    HDFSWriteStream,
)
from repro.hdfs.namenode import ChunkInfo, HdfsFileMeta, NamenodeCore
from repro.hdfs.placement import HdfsPlacementPolicy

__all__ = [
    "HDFSFileSystem",
    "HDFSReadStream",
    "HDFSWriteStream",
    "DEFAULT_CHUNK_SIZE",
    "NamenodeCore",
    "ChunkInfo",
    "HdfsFileMeta",
    "DatanodeCore",
    "HdfsPlacementPolicy",
]
