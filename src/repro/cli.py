"""Command-line interface.

Regenerate any figure of the paper's evaluation::

    repro figure 3a            # quick scale (small cluster, seconds)
    repro figure 4 --full      # the paper's 270-node deployment
    repro figure all --full
    repro calibration          # dump the platform constants

Exercise the anti-entropy maintenance pass (DESIGN.md §8)::

    repro scrub                # chaos demo: outage + abort, then heal
    repro scrub --buckets 16 --replication 2 --writes 8

``python -m repro.cli ...`` works identically.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import Optional, Sequence

from repro.deploy.platform import DEFAULT_CALIBRATION
from repro.harness import ALL_FIGURES, FULL, QUICK, render_figure

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "BlobSeer reproduction (IPDPS 2010): regenerate the paper's "
            "evaluation figures on the simulated Grid'5000 platform."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figure = sub.add_parser("figure", help="regenerate one figure (or 'all')")
    figure.add_argument(
        "which",
        choices=sorted(ALL_FIGURES) + ["all"],
        help="figure id from the paper",
    )
    figure.add_argument(
        "--full",
        action="store_true",
        help="use the paper's full deployment sizes (slower)",
    )
    figure.add_argument("--seed", type=int, default=0, help="experiment seed")
    figure.add_argument(
        "--no-chart", action="store_true", help="table only, no ASCII chart"
    )

    sub.add_parser("calibration", help="print the platform calibration constants")

    scrub = sub.add_parser(
        "scrub",
        help="anti-entropy demo: metadata outage + write abort, then one scrub pass heals it",
    )
    scrub.add_argument("--buckets", type=int, default=12, help="metadata buckets")
    scrub.add_argument("--providers", type=int, default=6, help="data providers")
    scrub.add_argument(
        "--replication", type=int, default=2, help="data-block replica count"
    )
    scrub.add_argument(
        "--metadata-replication",
        type=int,
        default=2,
        help="metadata replica count (>= 2 exercises replica reconciliation)",
    )
    scrub.add_argument(
        "--writes", type=int, default=6, help="healthy appends before the outage"
    )
    scrub.add_argument("--seed", type=int, default=0, help="scenario seed")
    scrub.add_argument(
        "--ops-per-sec",
        type=float,
        default=None,
        help="throttle the scrub pass (default: unpaced)",
    )
    return parser


def _next_append_keys(store, blob_id: str, nblocks: int):
    """Canonical metadata keys the NEXT append of *nblocks* will publish.

    Computable from version-manager state alone (the same property the
    abort protocol relies on), which lets the demo deterministically
    kill every replica of one key the doomed write needs.
    """
    from repro.blob.segment_tree import build_tombstone_patch

    state = store.version_manager.blob(blob_id)
    prior = state.records[-1].size_after
    block_size = state.block_size
    start = prior // block_size
    patch = build_tombstone_patch(
        blob_id=blob_id,
        version=len(state.records),
        write_start=start,
        write_end=start + nblocks,
        size_after=prior + nblocks * block_size,
        prior_size=prior,
        block_size=block_size,
        history=tuple(r.history_record for r in state.records[1:] if r.length > 0),
    )
    return [node.key for node in patch]


def _run_scrub_demo(args) -> int:
    """Drive the acceptance scenario end to end and report it.

    Two injuries, one cure: (1) a metadata bucket sleeps through some
    writes and recovers lagging (with ``--metadata-replication >= 2``);
    (2) every replica of one key dies mid-protocol, so a write aborts
    into a tombstone whose filler cannot fully land until the buckets
    recover.  One scrub pass must then restore full, digest-verified
    replica convergence and make every version readable — with no
    manual ``republish_tombstone``.
    """
    from repro.blob import LocalBlobStore
    from repro.errors import ProviderError, ReplicationError

    bs = 1024
    store = LocalBlobStore(
        data_providers=args.providers,
        metadata_providers=args.buckets,
        block_size=bs,
        replication=args.replication,
        metadata_replication=args.metadata_replication,
        seed=args.seed,
    )
    blob = store.create()
    expected: dict[int, bytes] = {}
    content = b""

    def healthy_append(i: int, nblocks: int) -> None:
        nonlocal content
        data = bytes([65 + i % 26]) * (nblocks * bs)
        version = store.append(blob, data)
        content += data
        expected[version] = content

    for i in range(max(args.writes, 1)):
        healthy_append(i, 1 + i % 3)

    # Injury 1: a replica lags (only meaningful with replication >= 2 —
    # at replication 1 the writes below would have no live copy to hit).
    lag_victim = None
    if args.metadata_replication >= 2:
        lag_victim = sorted(store.metadata.store.buckets)[args.seed % args.buckets]
        store.metadata.store.fail_bucket(lag_victim)
        print(f"bucket {lag_victim} down; two appends succeed on its co-replicas")
        healthy_append(97, 2)
        healthy_append(98, 2)
        store.metadata.store.recover_bucket(lag_victim)

    # Injury 2: every replica of one key the next append must publish
    # dies, so the write aborts into a tombstone mid-protocol.
    doomed_key = _next_append_keys(store, blob, 2)[0]
    outage = store.metadata.store.owners(doomed_key)
    for name in outage:
        store.metadata.store.fail_bucket(name)
    print(f"buckets {outage} down (all replicas of {doomed_key}); appending ...")
    try:
        store.append(blob, b"x" * (2 * bs))
    except (ProviderError, ReplicationError) as exc:
        print(f"write aborted into a tombstone ({type(exc).__name__}), as designed")
    else:
        print("FAIL: the doomed append survived a total replica outage")
        store.close()
        return 1
    aborted = store.latest_version(blob)
    expected[aborted] = content + bytes(2 * bs)  # tombstone: zero-filled tail
    for name in outage:
        store.metadata.store.recover_bucket(name)

    report = store.scrub(ops_per_sec=args.ops_per_sec)
    print("\nscrub report after recovery:")
    for name, value in sorted(dataclasses.asdict(report).items()):
        print(f"  {name} = {value!r}")

    failures = []
    divergent = store.metadata.divergent_keys()
    if divergent:
        failures.append(f"{len(divergent)} divergent metadata keys remain")
    if report.filler_republished == 0:
        failures.append("expected the scrub to republish tombstone filler")
    if lag_victim is not None and report.replicas_healed == 0:
        failures.append("expected the scrub to re-feed the lagging replica")
    for version, want in sorted(expected.items()):
        if store.read(blob, version=version) != want:
            failures.append(f"version {version} reads back wrong")
    store.close()
    if failures:
        print("\nFAIL: " + "; ".join(failures))
        return 1
    print(
        f"\nOK: {report.replicas_healed} lagging replicas re-fed, "
        f"{report.filler_republished} filler nodes republished, all "
        f"{len(expected)} versions read back byte-identical — no manual "
        "republish_tombstone needed"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "calibration":
        for field in dataclasses.fields(DEFAULT_CALIBRATION):
            print(f"{field.name} = {getattr(DEFAULT_CALIBRATION, field.name)!r}")
        return 0

    if args.command == "scrub":
        return _run_scrub_demo(args)

    scale = FULL if args.full else QUICK
    which = sorted(ALL_FIGURES) if args.which == "all" else [args.which]
    for figure_id in which:
        started = time.time()
        result = ALL_FIGURES[figure_id](scale, seed=args.seed)
        elapsed = time.time() - started
        print(render_figure(result, chart=not args.no_chart))
        print(f"[{scale.name} scale, computed in {elapsed:.1f}s wall time]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
