"""Command-line interface.

Regenerate any figure of the paper's evaluation::

    repro figure 3a            # quick scale (small cluster, seconds)
    repro figure 4 --full      # the paper's 270-node deployment
    repro figure all --full
    repro calibration          # dump the platform constants

``python -m repro.cli ...`` works identically.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import Optional, Sequence

from repro.deploy.platform import DEFAULT_CALIBRATION
from repro.harness import ALL_FIGURES, FULL, QUICK, render_figure

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "BlobSeer reproduction (IPDPS 2010): regenerate the paper's "
            "evaluation figures on the simulated Grid'5000 platform."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figure = sub.add_parser("figure", help="regenerate one figure (or 'all')")
    figure.add_argument(
        "which",
        choices=sorted(ALL_FIGURES) + ["all"],
        help="figure id from the paper",
    )
    figure.add_argument(
        "--full",
        action="store_true",
        help="use the paper's full deployment sizes (slower)",
    )
    figure.add_argument("--seed", type=int, default=0, help="experiment seed")
    figure.add_argument(
        "--no-chart", action="store_true", help="table only, no ASCII chart"
    )

    sub.add_parser("calibration", help="print the platform calibration constants")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "calibration":
        for field in dataclasses.fields(DEFAULT_CALIBRATION):
            print(f"{field.name} = {getattr(DEFAULT_CALIBRATION, field.name)!r}")
        return 0

    scale = FULL if args.full else QUICK
    which = sorted(ALL_FIGURES) if args.which == "all" else [args.which]
    for figure_id in which:
        started = time.time()
        result = ALL_FIGURES[figure_id](scale, seed=args.seed)
        elapsed = time.time() - started
        print(render_figure(result, chart=not args.no_chart))
        print(f"[{scale.name} scale, computed in {elapsed:.1f}s wall time]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
