"""Command-line interface.

Regenerate any figure of the paper's evaluation::

    repro figure 3a            # quick scale (small cluster, seconds)
    repro figure 4 --full      # the paper's 270-node deployment
    repro figure all --full
    repro calibration          # dump the platform constants

Exercise the anti-entropy maintenance pass (DESIGN.md §8)::

    repro scrub                # chaos demo: outage + abort, then heal
    repro scrub --buckets 16 --replication 2 --writes 8

Demonstrate the batched metadata pipeline (DESIGN.md §9)::

    repro metadata             # sequential vs batched descent, with stats
    repro metadata --blocks 96 --latency 0.002

Demonstrate the group-commit publish pipeline (DESIGN.md §10)::

    repro append               # per-writer vs batched vman round trips
    repro append --writers 32 --vman-latency 0.005

Demonstrate the zero-copy data plane (DESIGN.md §11)::

    repro zerocopy             # per-layer bytes copied vs transferred
    repro zerocopy --blocks 128 --block-size 1m

Demonstrate the multi-tenant gateway (DESIGN.md §12)::

    repro gateway              # N tenants, one greedy; fairness table
    repro gateway --tenants 8 --clients 64 --greedy-kbps 128

Demonstrate the async I/O scheduler (DESIGN.md §13)::

    repro asyncio              # threads vs coroutines on one big gather
    repro asyncio --blocks 8192 --latency 0.003

``python -m repro.cli ...`` works identically.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import Optional, Sequence

from repro.deploy.platform import DEFAULT_CALIBRATION
from repro.harness import ALL_FIGURES, FULL, QUICK, render_figure

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "BlobSeer reproduction (IPDPS 2010): regenerate the paper's "
            "evaluation figures on the simulated Grid'5000 platform."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figure = sub.add_parser("figure", help="regenerate one figure (or 'all')")
    figure.add_argument(
        "which",
        choices=sorted(ALL_FIGURES) + ["all"],
        help="figure id from the paper",
    )
    figure.add_argument(
        "--full",
        action="store_true",
        help="use the paper's full deployment sizes (slower)",
    )
    figure.add_argument("--seed", type=int, default=0, help="experiment seed")
    figure.add_argument(
        "--no-chart", action="store_true", help="table only, no ASCII chart"
    )

    sub.add_parser("calibration", help="print the platform calibration constants")

    scrub = sub.add_parser(
        "scrub",
        help="anti-entropy demo: metadata outage + write abort, then one scrub pass heals it",
    )
    scrub.add_argument("--buckets", type=int, default=12, help="metadata buckets")
    scrub.add_argument("--providers", type=int, default=6, help="data providers")
    scrub.add_argument(
        "--replication", type=int, default=2, help="data-block replica count"
    )
    scrub.add_argument(
        "--metadata-replication",
        type=int,
        default=2,
        help="metadata replica count (>= 2 exercises replica reconciliation)",
    )
    scrub.add_argument(
        "--writes", type=int, default=6, help="healthy appends before the outage"
    )
    scrub.add_argument("--seed", type=int, default=0, help="scenario seed")
    scrub.add_argument(
        "--ops-per-sec",
        type=float,
        default=None,
        help="throttle the scrub pass (default: unpaced)",
    )

    metadata = sub.add_parser(
        "metadata",
        help=(
            "batched-metadata demo: the same read workload through the "
            "sequential per-node descent and the batched pipeline, with "
            "round-trip counts and cache hit rates"
        ),
    )
    metadata.add_argument(
        "--blocks", type=int, default=48, help="blocks written before reading"
    )
    metadata.add_argument(
        "--buckets", type=int, default=8, help="metadata buckets"
    )
    metadata.add_argument(
        "--latency",
        type=float,
        default=2e-3,
        help="simulated metadata service time per bucket request (s)",
    )
    metadata.add_argument(
        "--io-workers", type=int, default=8, help="parallel I/O engine threads"
    )
    metadata.add_argument(
        "--reads", type=int, default=3, help="whole-BLOB reads per configuration"
    )

    append = sub.add_parser(
        "append",
        help=(
            "group-commit demo: the same concurrent-append workload through "
            "per-writer version-manager interactions and the batched publish "
            "pipeline, with vman round-trip counts and batch sizes"
        ),
    )
    append.add_argument(
        "--writers", type=int, default=16, help="concurrent appender threads"
    )
    append.add_argument(
        "--rounds", type=int, default=2, help="appends per writer"
    )
    append.add_argument(
        "--blocks", type=int, default=4, help="blocks per append"
    )
    append.add_argument(
        "--vman-latency",
        type=float,
        default=3e-3,
        help="simulated service time per serialized version-manager interaction (s)",
    )
    append.add_argument(
        "--window",
        type=float,
        default=2e-3,
        help="group-commit window the batch leader waits out (s)",
    )
    append.add_argument(
        "--io-workers", type=int, default=8, help="parallel I/O engine threads"
    )

    zerocopy = sub.add_parser(
        "zerocopy",
        help=(
            "zero-copy data-plane demo: one large append and read with the "
            "per-layer CopyStats byte accounting (bytes copied vs transferred)"
        ),
    )
    zerocopy.add_argument(
        "--blocks", type=int, default=64, help="blocks appended then read back"
    )
    zerocopy.add_argument(
        "--block-size", type=str, default="64k", help="block size (e.g. 64k, 1m)"
    )
    zerocopy.add_argument(
        "--io-workers", type=int, default=8, help="parallel I/O engine threads"
    )

    gateway = sub.add_parser(
        "gateway",
        help=(
            "multi-tenant front-door demo: N tenants share one store, one "
            "turns greedy under a bytes/s cap; prints the per-tenant "
            "fairness table and fails if anyone was starved"
        ),
    )
    gateway.add_argument(
        "--tenants", type=int, default=6, help="tenants sharing the store"
    )
    gateway.add_argument(
        "--clients", type=int, default=32, help="client sessions per tenant"
    )
    gateway.add_argument(
        "--ops", type=int, default=2, help="file writes per client session"
    )
    gateway.add_argument(
        "--payload", type=str, default="8k", help="bytes per write (e.g. 8k)"
    )
    gateway.add_argument(
        "--greedy-kbps",
        type=float,
        default=256.0,
        help="the greedy tenant's bytes/s cap, in KB/s",
    )
    gateway.add_argument(
        "--workers", type=int, default=16, help="OS threads multiplexing clients"
    )
    gateway.add_argument("--seed", type=int, default=0, help="store RNG seed")

    aio = sub.add_parser(
        "asyncio",
        help=(
            "async-scheduler demo: one latency-bound gather of thousands "
            "of blocks, thread pool vs coroutine engine; prints both "
            "backends' throughput and EngineStats and fails if the "
            "coroutine run grew more than a handful of OS threads"
        ),
    )
    aio.add_argument(
        "--blocks", type=int, default=4096, help="blocks in the gathered read"
    )
    aio.add_argument(
        "--block-size", type=str, default="2k", help="block size (e.g. 2k, 64k)"
    )
    aio.add_argument(
        "--latency",
        type=float,
        default=0.002,
        help="simulated provider service time per block op, seconds",
    )
    aio.add_argument(
        "--providers", type=int, default=16, help="data providers striped over"
    )
    aio.add_argument(
        "--io-workers", type=int, default=8, help="threads-backend pool size"
    )
    aio.add_argument(
        "--max-in-flight",
        type=int,
        default=8192,
        help="async backend's in-flight coroutine window",
    )
    return parser


def _next_append_keys(store, blob_id: str, nblocks: int):
    """Canonical metadata keys the NEXT append of *nblocks* will publish.

    Computable from version-manager state alone (the same property the
    abort protocol relies on), which lets the demo deterministically
    kill every replica of one key the doomed write needs.
    """
    from repro.blob.segment_tree import build_tombstone_patch

    state = store.version_manager.blob(blob_id)
    prior = state.records[-1].size_after
    block_size = state.block_size
    start = prior // block_size
    patch = build_tombstone_patch(
        blob_id=blob_id,
        version=len(state.records),
        write_start=start,
        write_end=start + nblocks,
        size_after=prior + nblocks * block_size,
        prior_size=prior,
        block_size=block_size,
        history=tuple(r.history_record for r in state.records[1:] if r.length > 0),
    )
    return [node.key for node in patch]


def _run_scrub_demo(args) -> int:
    """Drive the acceptance scenario end to end and report it.

    Two injuries, one cure: (1) a metadata bucket sleeps through some
    writes and recovers lagging (with ``--metadata-replication >= 2``);
    (2) every replica of one key dies mid-protocol, so a write aborts
    into a tombstone whose filler cannot fully land until the buckets
    recover.  One scrub pass must then restore full, digest-verified
    replica convergence and make every version readable — with no
    manual ``republish_tombstone``.
    """
    from repro.blob import LocalBlobStore, StoreConfig
    from repro.errors import ProviderError, ReplicationError

    bs = 1024
    store = LocalBlobStore(config=StoreConfig(
        data_providers=args.providers,
        metadata_providers=args.buckets,
        block_size=bs,
        replication=args.replication,
        metadata_replication=args.metadata_replication,
        seed=args.seed,
    ))
    blob = store.create()
    expected: dict[int, bytes] = {}
    content = b""

    def healthy_append(i: int, nblocks: int) -> None:
        nonlocal content
        data = bytes([65 + i % 26]) * (nblocks * bs)
        version = store.append(blob, data)
        content += data
        expected[version] = content

    for i in range(max(args.writes, 1)):
        healthy_append(i, 1 + i % 3)

    # Injury 1: a replica lags (only meaningful with replication >= 2 —
    # at replication 1 the writes below would have no live copy to hit).
    lag_victim = None
    if args.metadata_replication >= 2:
        lag_victim = sorted(store.metadata.store.buckets)[args.seed % args.buckets]
        store.metadata.store.fail_bucket(lag_victim)
        print(f"bucket {lag_victim} down; two appends succeed on its co-replicas")
        healthy_append(97, 2)
        healthy_append(98, 2)
        store.metadata.store.recover_bucket(lag_victim)

    # Injury 2: every replica of one key the next append must publish
    # dies, so the write aborts into a tombstone mid-protocol.
    doomed_key = _next_append_keys(store, blob, 2)[0]
    outage = store.metadata.store.owners(doomed_key)
    for name in outage:
        store.metadata.store.fail_bucket(name)
    print(f"buckets {outage} down (all replicas of {doomed_key}); appending ...")
    try:
        store.append(blob, b"x" * (2 * bs))
    except (ProviderError, ReplicationError) as exc:
        print(f"write aborted into a tombstone ({type(exc).__name__}), as designed")
    else:
        print("FAIL: the doomed append survived a total replica outage")
        store.close()
        return 1
    aborted = store.latest_version(blob)
    expected[aborted] = content + bytes(2 * bs)  # tombstone: zero-filled tail
    for name in outage:
        store.metadata.store.recover_bucket(name)

    report = store.scrub(ops_per_sec=args.ops_per_sec)
    print("\nscrub report after recovery:")
    for name, value in sorted(dataclasses.asdict(report).items()):
        print(f"  {name} = {value!r}")
    print("metadata I/O stats (DESIGN.md §9 batched pipeline):")
    for name, value in sorted(store.metadata.stats().items()):
        print(f"  {name} = {value!r}")

    failures = []
    divergent = store.metadata.divergent_keys()
    if divergent:
        failures.append(f"{len(divergent)} divergent metadata keys remain")
    if report.filler_republished == 0:
        failures.append("expected the scrub to republish tombstone filler")
    if lag_victim is not None and report.replicas_healed == 0:
        failures.append("expected the scrub to re-feed the lagging replica")
    for version, want in sorted(expected.items()):
        if store.read(blob, version=version) != want:
            failures.append(f"version {version} reads back wrong")
    store.close()
    if failures:
        print("\nFAIL: " + "; ".join(failures))
        return 1
    print(
        f"\nOK: {report.replicas_healed} lagging replicas re-fed, "
        f"{report.filler_republished} filler nodes republished, all "
        f"{len(expected)} versions read back byte-identical — no manual "
        "republish_tombstone needed"
    )
    return 0


def _run_metadata_demo(args) -> int:
    """Drive one read workload through both descent pipelines.

    Builds two otherwise-identical stores with simulated metadata
    service latency — one descending the segment tree one blocking
    ``get_node`` at a time (the pre-refactor behavior, kept as the
    ablation baseline), one using the level-batched pipeline plus the
    immutable node cache (DESIGN.md §9) — and reads the same BLOB back.
    Reports wall time, metadata round trips, and cache hit rate, and
    fails if batching does not deliver its O(tree depth) bound.
    """
    from repro.blob import LocalBlobStore, StoreConfig

    bs = 1024
    nblocks = max(args.blocks, 2)
    depth = 1
    while (1 << (depth - 1)) < nblocks:
        depth += 1

    def measure(label: str, **store_kwargs):
        store = LocalBlobStore(config=StoreConfig(
            data_providers=4,
            metadata_providers=args.buckets,
            block_size=bs,
            io_workers=args.io_workers,
            metadata_latency=args.latency,
            **store_kwargs,
        ))
        blob = store.create()
        store.append(blob, b"m" * (nblocks * bs))
        stats = store.metadata.store.stats
        stats.reset()
        first_trips = None
        started = time.time()
        for i in range(max(args.reads, 1)):
            before = stats.snapshot()["round_trips"]
            data = store.read(blob)
            if first_trips is None:
                first_trips = stats.snapshot()["round_trips"] - before
            assert data == b"m" * (nblocks * bs), "read corrupted"
        elapsed = time.time() - started
        out = dict(store.metadata.stats())
        store.close()
        print(
            f"  {label:<28} {elapsed:7.3f}s wall   "
            f"{first_trips:4d} round trips (cold read)   "
            f"hit rate {out.get('cache_hit_rate', 0.0):.0%}"
        )
        return elapsed, first_trips

    print(
        f"reading {nblocks} blocks x{max(args.reads, 1)} over {args.buckets} "
        f"buckets at {args.latency * 1e3:.1f}ms/request (tree depth {depth}):"
    )
    seq_time, seq_trips = measure(
        "sequential descent", metadata_batching=False, metadata_cache_nodes=0
    )
    bat_time, bat_trips = measure("batched descent + cache")

    failures = []
    # The O(tree depth) bound, with slack for the root round and the
    # version-manager-free levels a partial range may add.
    if bat_trips > depth + 2:
        failures.append(
            f"batched cold read took {bat_trips} round trips, "
            f"expected <= depth + 2 = {depth + 2}"
        )
    if seq_trips <= bat_trips:
        failures.append(
            f"sequential descent used {seq_trips} round trips, not more "
            f"than the batched pipeline's {bat_trips}"
        )
    if bat_time >= seq_time:
        failures.append(
            f"batched pipeline not faster ({bat_time:.3f}s vs {seq_time:.3f}s)"
        )
    if failures:
        print("\nFAIL: " + "; ".join(failures))
        return 1
    print(
        f"\nOK: O(nodes)={seq_trips} -> O(depth)={bat_trips} metadata round "
        f"trips per cold read, {seq_time / bat_time:.1f}x faster wall clock"
    )
    return 0


def _run_append_demo(args) -> int:
    """Drive one concurrent-append workload through both publish paths.

    Builds two otherwise-identical stores with simulated version-manager
    service latency — one paying a serialized vman interaction per
    writer per phase (the pre-refactor behavior, kept as the ablation
    baseline), one batching assignments and completion reports through
    the group-commit :class:`~repro.blob.store.PublishPipeline` with
    the scatter/weave overlap (DESIGN.md §10) — and appends the same
    data from N concurrent writers.  Reports wall time, vman round
    trips and batch sizes, and fails unless round trips scale with
    batches (not writers) and the pipeline wins wall-clock.
    """
    import threading

    from repro.blob import LocalBlobStore, StoreConfig

    bs = 1024
    writers = max(args.writers, 2)
    rounds = max(args.rounds, 1)
    payload_len = max(args.blocks, 1) * bs
    total_ops = writers * rounds

    def measure(label: str, group_commit: bool):
        store = LocalBlobStore(config=StoreConfig(
            data_providers=8,
            metadata_providers=4,
            block_size=bs,
            io_workers=args.io_workers,
            vman_latency=args.vman_latency,
            group_commit=group_commit,
            publish_window=args.window if group_commit else 0.0,
            overlap_publish=group_commit,
        ))
        blob = store.create()
        store.vman_stats.reset()
        barrier = threading.Barrier(writers)
        errors: list[Exception] = []

        def appender(tid: int) -> None:
            try:
                barrier.wait()
                for _ in range(rounds):
                    store.append(blob, bytes([65 + tid % 26]) * payload_len)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=appender, args=(t,)) for t in range(writers)
        ]
        started = time.time()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.time() - started
        stats = store.vman_stats.snapshot()
        ok = not errors and store.latest_version(blob) == total_ops
        size_ok = store.snapshot(blob).size == total_ops * payload_len
        store.close()
        if errors:
            raise errors[0]
        print(
            f"  {label:<28} {elapsed:7.3f}s wall   "
            f"{stats['vman_round_trips']:4d} vman round trips   "
            f"max batch {max(stats['vman_max_assign_batch'], stats['vman_max_commit_batch']):3d}"
        )
        return elapsed, stats, ok and size_ok

    print(
        f"{writers} writers x{rounds} appends of {payload_len // bs} blocks at "
        f"{args.vman_latency * 1e3:.1f}ms/vman interaction "
        f"(window {args.window * 1e3:.1f}ms):"
    )
    per_time, per_stats, per_ok = measure("per-writer commits", group_commit=False)
    grp_time, grp_stats, grp_ok = measure("group-commit pipeline", group_commit=True)

    failures = []
    if not per_ok or not grp_ok:
        failures.append("a store finished with wrong version/size state")
    # Per-writer: one assign + one commit interaction per append.
    if per_stats["vman_round_trips"] < 2 * total_ops:
        failures.append(
            f"per-writer path took {per_stats['vman_round_trips']} round trips, "
            f"expected >= {2 * total_ops}"
        )
    # Grouped: batches, not writers — demand at least a 2x reduction.
    if grp_stats["vman_round_trips"] > total_ops:
        failures.append(
            f"group commit took {grp_stats['vman_round_trips']} round trips for "
            f"{total_ops} appends; batching is not engaging"
        )
    if grp_stats["vman_max_commit_batch"] < 2:
        failures.append("no commit batch ever coalesced two writers")
    if grp_time >= per_time:
        failures.append(
            f"group commit not faster ({grp_time:.3f}s vs {per_time:.3f}s)"
        )
    if failures:
        print("\nFAIL: " + "; ".join(failures))
        return 1
    print(
        f"\nOK: O(writers)={per_stats['vman_round_trips']} -> "
        f"O(batches)={grp_stats['vman_round_trips']} vman round trips "
        f"(largest batch {grp_stats['vman_max_commit_batch']}), "
        f"{per_time / grp_time:.1f}x faster wall clock"
    )
    return 0


def _run_zerocopy_demo(args) -> int:
    """One large append + read with per-layer byte accounting.

    Exercises the zero-copy data plane end-to-end (DESIGN.md §11): the
    append chunks the caller's buffer into ``memoryview`` windows (the
    only copy is each provider's copy-on-publish freeze), the read
    gathers every block into ONE preallocated buffer, and the shared
    :class:`~repro.blob.block.CopyStats` counters prove it — the demo
    fails if a read of N bytes materializes more than N bytes
    client-side, or if the write path copies anything beyond the
    provider freezes.
    """
    from repro.blob import LocalBlobStore, StoreConfig
    from repro.util.bytesize import parse_size

    bs = parse_size(args.block_size)
    nblocks = max(args.blocks, 2)
    size = nblocks * bs

    def show(label: str, layers: dict) -> None:
        print(f"  {label}:")
        print(f"    {'layer':<18} {'copied':>12} {'transferred':>12} {'result':>12}")
        for name, counts in layers.items():
            print(
                f"    {name:<18} {counts['copied']:>12,} "
                f"{counts['transferred']:>12,} {counts['result']:>12,}"
            )

    store = LocalBlobStore(config=StoreConfig(
        data_providers=8,
        metadata_providers=4,
        block_size=bs,
        io_workers=args.io_workers,
    ))
    try:
        blob = store.create()
        data = bytes(bytearray(range(256))) * (size // 256) + b"x" * (size % 256)

        store.copy_stats.reset()
        store.append(blob, data)
        write_layers = store.copy_stats.layers()
        write_stats = store.copy_stats.snapshot()

        store.copy_stats.reset()
        result = store.read(blob)
        read_layers = store.copy_stats.layers()
        read_stats = store.copy_stats.snapshot()
    finally:
        store.close()

    print(
        f"append + read of {nblocks} x {bs:,}B blocks ({size:,}B) "
        f"over 8 providers:"
    )
    show("append (copy-on-publish only)", write_layers)
    show("read (one vectored gather)", read_layers)

    failures = []
    if result != data:
        failures.append("read returned corrupted bytes")
    # Writes: immutable ``bytes`` input means the provider freeze is
    # a no-op — the scatter must move bytes without copying any.
    if write_stats["bytes_copied"] != 0:
        failures.append(
            f"append of immutable bytes copied {write_stats['bytes_copied']:,}B "
            "client-side, expected 0"
        )
    if write_stats["bytes_transferred"] != size:
        failures.append(
            f"append transferred {write_stats['bytes_transferred']:,}B, "
            f"expected {size:,}"
        )
    # Reads: ONE gather into the preallocated result buffer — never
    # more than N bytes materialized for an N-byte read (the
    # pre-refactor path paid ~3-4x here).
    if read_stats["bytes_copied"] > size:
        failures.append(
            f"read of {size:,}B materialized {read_stats['bytes_copied']:,}B "
            "client-side, expected <= 1x"
        )
    if read_stats["bytes_result"] != size:
        failures.append(
            f"read result accounted {read_stats['bytes_result']:,}B, "
            f"expected {size:,}"
        )
    if failures:
        print("\nFAIL: " + "; ".join(failures))
        return 1
    print(
        f"\nOK: append copied 0B client-side (freeze elided for immutable "
        f"bytes), read materialized {read_stats['bytes_copied']:,}B "
        f"<= 1x the {size:,}B payload"
    )
    return 0


def _run_gateway_demo(args) -> int:
    """Share one store between N tenants, let one turn greedy, and
    prove the front door keeps everyone else whole (DESIGN.md §12).

    Phase 1 runs one tenant alone for a latency reference.  Phase 2
    runs all tenants at once — the last one greedy under a bytes/s
    token bucket, hammering the store until the polite cohort drains.
    Exits nonzero if the greedy tenant broke its cap or any polite
    tenant was starved (pooled p99 beyond 3x the solo reference).
    """
    import math
    import threading

    from repro.blob import StoreConfig
    from repro.gateway import Gateway, TenantPolicy
    from repro.util.bytesize import parse_size

    payload_size = parse_size(args.payload)
    payload = b"g" * payload_size
    cap_bps = args.greedy_kbps * 1024
    burst_seconds = 0.25
    config = StoreConfig(
        data_providers=8,
        metadata_providers=4,
        block_size=max(1024, payload_size // 2),
        io_workers=8,
        seed=args.seed,
    )

    def p99(samples):
        ordered = sorted(samples)
        return ordered[max(0, math.ceil(0.99 * len(ordered)) - 1)]

    def run_pool(jobs):
        errors = []
        cursor = iter(range(len(jobs)))
        lock = threading.Lock()

        def worker():
            while True:
                with lock:
                    index = next(cursor, None)
                if index is None:
                    return
                try:
                    jobs[index]()
                except Exception as exc:
                    errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(args.workers)]
        start = time.monotonic()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return time.monotonic() - start, errors

    def timed_write(client, path, latencies, lock):
        def job():
            start = time.monotonic()
            client.write_file(path, payload)
            sample = time.monotonic() - start
            with lock:
                latencies.append(sample)

        return job

    print(
        f"multi-tenant gateway: {args.tenants} tenants x {args.clients} "
        f"clients x {args.ops} writes of {payload_size:,}B, greedy tenant "
        f"capped at {cap_bps / 1024:.0f} KB/s"
    )

    # -- phase 1: solo latency reference --------------------------------------
    with Gateway(config=config) as gw:
        token = gw.register_tenant("solo")
        clients = [gw.connect("solo", token) for _ in range(args.clients)]
        latencies: list[float] = []
        lock = threading.Lock()
        jobs = [
            timed_write(client, f"/f{c}o{o}", latencies, lock)
            for c, client in enumerate(clients)
            for o in range(args.ops)
        ]
        _, errors = run_pool(jobs)
        if errors:
            print(f"FAIL: solo phase raised {errors[:3]}")
            return 1
        solo_p99 = p99(latencies)
    print(f"phase 1  solo tenant reference p99 = {solo_p99 * 1e3:.2f} ms")

    # -- phase 2: everyone at once, one tenant greedy -------------------------
    with Gateway(config=config.replace(seed=args.seed + 1)) as gw:
        polite_ids = [f"tenant-{i}" for i in range(args.tenants - 1)]
        sessions = {}
        for tid in polite_ids:
            token = gw.register_tenant(tid)
            sessions[tid] = [gw.connect(tid, token) for _ in range(args.clients)]
        greedy_token = gw.register_tenant(
            "greedy",
            TenantPolicy(bytes_per_sec=cap_bps, burst_seconds=burst_seconds),
        )
        greedy_clients = [
            gw.connect("greedy", greedy_token) for _ in range(args.clients)
        ]

        latencies_by: dict[str, list[float]] = {tid: [] for tid in polite_ids}
        lock = threading.Lock()
        stop = threading.Event()

        def greedy_worker(shard: int):
            mine = greedy_clients[shard::2] or greedy_clients
            count = 0
            while not stop.is_set():
                client = mine[count % len(mine)]
                client.write_file(f"/s{shard}n{count}", payload)
                count += 1

        greedy_threads = [
            threading.Thread(target=greedy_worker, args=(k,)) for k in range(2)
        ]
        jobs = [
            timed_write(client, f"/f{c}o{o}", latencies_by[tid], lock)
            for tid in polite_ids
            for c, client in enumerate(sessions[tid])
            for o in range(args.ops)
        ]
        # The greedy tenant runs for at least 2s of wall clock even if
        # the polite cohort drains faster — a shorter window would let
        # the one-time burst allowance dominate the rate measurement.
        window_start = time.monotonic()
        for t in greedy_threads:
            t.start()
        elapsed, errors = run_pool(jobs)
        hold = 2.0 - (time.monotonic() - window_start)
        if hold > 0:
            time.sleep(hold)
        stop.set()
        for t in greedy_threads:
            t.join()
        window = time.monotonic() - window_start
        if errors:
            print(f"FAIL: mixed phase raised {errors[:3]}")
            return 1

        stats = gw.tenant_stats()

    print(
        f"phase 2  mixed run drained in {elapsed:.2f}s; per-tenant fairness:"
    )
    header = (
        f"  {'tenant':<12} {'appends':>8} {'MB':>8} {'KB/s':>9} "
        f"{'p50 ms':>8} {'p99 ms':>8} {'wait s':>7} {'rej':>4}"
    )
    print(header)
    pooled: list[float] = []
    for tid in polite_ids + ["greedy"]:
        s = stats[tid]
        if tid == "greedy":
            p50_ms = p99_ms = float("nan")
        else:
            samples = sorted(latencies_by[tid])
            pooled += samples
            p50_ms = samples[len(samples) // 2] * 1e3
            p99_ms = p99(samples) * 1e3
        rate_window = window if tid == "greedy" else elapsed
        print(
            f"  {tid:<12} {s['ops']['append']:>8} "
            f"{s['bytes_in'] / 2**20:>8.2f} "
            f"{s['bytes_in'] / rate_window / 1024:>9.1f} "
            f"{p50_ms:>8.2f} {p99_ms:>8.2f} "
            f"{s['throttle_wait_s']:>7.2f} {s['admission_rejections']:>4}"
        )

    failures = []
    greedy_bps = stats["greedy"]["bytes_in"] / window
    allowed = 1.25 * (cap_bps + cap_bps * burst_seconds / window)
    if greedy_bps > allowed:
        failures.append(
            f"greedy tenant ran at {greedy_bps / 1024:.1f} KB/s, past its "
            f"{cap_bps / 1024:.0f} KB/s cap"
        )
    if stats["greedy"]["throttle_wait_s"] <= 0:
        failures.append("greedy tenant was never paced by its bucket")
    expected_ops = args.clients * args.ops
    for tid in polite_ids:
        if len(latencies_by[tid]) != expected_ops:
            failures.append(f"{tid} finished {len(latencies_by[tid])}/{expected_ops} ops")
    mixed_p99 = p99(pooled)
    if mixed_p99 > 3 * solo_p99:
        failures.append(
            f"polite cohort starved: pooled p99 {mixed_p99 * 1e3:.2f} ms "
            f"is {mixed_p99 / solo_p99:.1f}x the solo reference"
        )
    if failures:
        print("\nFAIL: " + "; ".join(failures))
        return 1
    print(
        f"\nOK: greedy held to {greedy_bps / 1024:.1f} KB/s "
        f"(cap {cap_bps / 1024:.0f} KB/s, waited "
        f"{stats['greedy']['throttle_wait_s']:.2f}s), polite pooled p99 "
        f"{mixed_p99 * 1e3:.2f} ms <= 3x solo {solo_p99 * 1e3:.2f} ms"
    )
    return 0


#: The async backend's whole point: a handful of OS threads no matter
#: how many transfers are in flight.  The demo fails past this.
_ASYNC_THREAD_BUDGET = 8


def _run_asyncio_demo(args) -> int:
    """One latency-bound gather, thread pool vs coroutine scheduler.

    Exercises the async I/O engine end-to-end (DESIGN.md §13): the same
    whole-file read of thousands of simulated-latency block fetches runs
    once on the ``io_workers`` thread pool and once on the coroutine
    scheduler, and the :class:`~repro.blob.io_engine.EngineStats`
    counters tell the story — the pool's concurrency IS its thread
    count, while the event loop holds thousands of transfers in flight
    on one thread.  The demo fails if the coroutine run grew more OS
    threads than ``_ASYNC_THREAD_BUDGET``.
    """
    from repro.blob import LocalBlobStore, StoreConfig
    from repro.util.bytesize import parse_size

    bs = parse_size(args.block_size)
    nblocks = max(args.blocks, 2)
    size = nblocks * bs

    def measure(label: str, **engine):
        store = LocalBlobStore(config=StoreConfig(
            data_providers=args.providers,
            metadata_providers=4,
            block_size=bs,
            provider_latency=args.latency,
            **engine,
        ))
        try:
            blob = store.create()
            data = b"s" * size
            store.append(blob, data)
            version = store.latest_version(blob)
            store.io_engine.stats.reset()
            start = time.perf_counter()
            ok = store.read(blob, version=version) == data
            elapsed = time.perf_counter() - start
            stats = store.io_engine.stats.snapshot()
        finally:
            store.close()
        return {
            "label": label,
            "ok": ok,
            "wall_s": elapsed,
            "mb_per_s": size / elapsed / 2**20,
            "stats": stats,
        }

    print(
        f"gather of {nblocks} x {bs:,}B blocks over {args.providers} "
        f"providers at {args.latency * 1e3:.1f}ms/op:"
    )
    runs = [
        measure(
            f"threads (io_workers={args.io_workers})", io_workers=args.io_workers
        ),
        measure(
            f"async (max_in_flight={args.max_in_flight})",
            io_scheduler="async",
            max_in_flight=args.max_in_flight,
        ),
    ]
    header = (
        f"  {'backend':<28} {'wall':>8} {'MB/s':>9} {'threads':>8} "
        f"{'in-flight hwm':>14} {'queue wait':>11}"
    )
    print(header)
    for run in runs:
        stats = run["stats"]
        print(
            f"  {run['label']:<28} {run['wall_s']:>7.2f}s {run['mb_per_s']:>9.2f} "
            f"{stats['threads_started']:>8} {stats['in_flight_hwm']:>14} "
            f"{stats['queue_wait_total']:>10.3f}s"
        )

    threads_run, async_run = runs
    failures = []
    for run in runs:
        if not run["ok"]:
            failures.append(f"{run['label']} returned corrupted bytes")
    async_threads = async_run["stats"]["threads_started"]
    if async_threads > _ASYNC_THREAD_BUDGET:
        failures.append(
            f"async backend grew {async_threads} OS threads "
            f"(budget {_ASYNC_THREAD_BUDGET}) — that is a thread pool "
            "wearing a coroutine costume"
        )
    if failures:
        print("\nFAIL: " + "; ".join(failures))
        return 1
    print(
        f"\nOK: {async_run['stats']['in_flight_hwm']} transfers in flight "
        f"on {async_threads} OS thread(s) "
        f"({async_run['mb_per_s'] / threads_run['mb_per_s']:.1f}x the "
        f"{args.io_workers}-worker pool's throughput)"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "calibration":
        for field in dataclasses.fields(DEFAULT_CALIBRATION):
            print(f"{field.name} = {getattr(DEFAULT_CALIBRATION, field.name)!r}")
        return 0

    if args.command == "scrub":
        return _run_scrub_demo(args)

    if args.command == "metadata":
        return _run_metadata_demo(args)

    if args.command == "append":
        return _run_append_demo(args)

    if args.command == "zerocopy":
        return _run_zerocopy_demo(args)

    if args.command == "gateway":
        return _run_gateway_demo(args)

    if args.command == "asyncio":
        return _run_asyncio_demo(args)

    scale = FULL if args.full else QUICK
    which = sorted(ALL_FIGURES) if args.which == "all" else [args.which]
    for figure_id in which:
        started = time.time()
        result = ALL_FIGURES[figure_id](scale, seed=args.seed)
        elapsed = time.time() - started
        print(render_figure(result, chart=not args.no_chart))
        print(f"[{scale.name} scale, computed in {elapsed:.1f}s wall time]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
