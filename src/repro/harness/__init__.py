"""Experiment harness: scenario drivers, per-figure experiments, reports."""

from repro.harness.experiments import (
    ALL_FIGURES,
    FULL,
    GREP_SCAN_RATE,
    QUICK,
    RTW_GENERATE_RATE,
    FigureResult,
    Scale,
    figure_3a,
    figure_3b,
    figure_4,
    figure_5,
    figure_6a,
    figure_6b,
)
from repro.harness.report import render_chart, render_figure, render_table
from repro.harness.scenarios import (
    AppendResult,
    ReadResult,
    WriteResult,
    concurrent_appenders,
    concurrent_readers,
    single_writer,
)

__all__ = [
    "Scale",
    "QUICK",
    "FULL",
    "FigureResult",
    "figure_3a",
    "figure_3b",
    "figure_4",
    "figure_5",
    "figure_6a",
    "figure_6b",
    "ALL_FIGURES",
    "RTW_GENERATE_RATE",
    "GREP_SCAN_RATE",
    "render_table",
    "render_chart",
    "render_figure",
    "single_writer",
    "concurrent_readers",
    "concurrent_appenders",
    "WriteResult",
    "ReadResult",
    "AppendResult",
]
