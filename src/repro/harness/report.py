"""Text rendering of regenerated figures.

The benchmark harness and the CLI print each figure as an aligned table
(one row per x value, one column per series) plus a crude ASCII chart —
enough to eyeball the shapes the paper plots.
"""

from __future__ import annotations

from repro.harness.experiments import FigureResult

__all__ = ["render_table", "render_chart", "render_figure"]


def render_table(result: FigureResult) -> str:
    """Aligned table: x column plus one column per series."""
    names = sorted(result.series)
    xs = sorted({x for points in result.series.values() for x, _ in points})
    by_series = {
        name: {x: y for x, y in result.series[name]} for name in names
    }
    header = [result.x_label] + names
    rows = []
    for x in xs:
        row = [f"{x:g}"]
        for name in names:
            y = by_series[name].get(x)
            row.append("-" if y is None else f"{y:.2f}")
        rows.append(row)
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_chart(result: FigureResult, width: int = 60, height: int = 12) -> str:
    """Crude ASCII scatter of every series (one glyph per series)."""
    glyphs = "ox+*#@"
    points = [
        (x, y, glyphs[i % len(glyphs)])
        for i, name in enumerate(sorted(result.series))
        for x, y in result.series[name]
    ]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, glyph in points:
        col = min(width - 1, int((x - x_lo) / x_span * (width - 1)))
        row = min(height - 1, int((y - y_lo) / y_span * (height - 1)))
        grid[height - 1 - row][col] = glyph
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(sorted(result.series))
    )
    body = "\n".join(f"|{''.join(row)}|" for row in grid)
    return (
        f"{result.y_label}: {y_lo:.1f} .. {y_hi:.1f}   "
        f"{result.x_label}: {x_lo:g} .. {x_hi:g}\n{body}\n{legend}"
    )


def render_figure(result: FigureResult, chart: bool = True) -> str:
    """Full text report for one figure."""
    parts = [
        f"=== Figure {result.figure}: {result.title} ===",
        render_table(result),
    ]
    if chart:
        parts.append(render_chart(result))
    if result.notes:
        parts.append(f"paper: {result.notes}")
    return "\n\n".join(parts) + "\n"
