"""One experiment per figure of the paper's evaluation (§V).

Each ``figure_*`` function returns a :class:`FigureResult` holding the
same series the paper plots, at either ``quick`` scale (small cluster,
few points — used by tests) or ``full`` scale (the paper's 270-node
deployments and full sweeps — used by the benchmark harness and the
CLI).

Application-level calibration (see EXPERIMENTS.md for the discussion):

* RandomTextWriter mappers generate text at ~26.5 MB/s — fixed by the
  paper's Figure 6(a) completion times (~240 s for 6.4 GB through one
  mapper including I/O).
* grep mappers scan at ~50 MB/s — grep is I/O-sensitive ("note the
  high impact of I/O in such applications", §V-G), so the scan rate
  sits near the storage read rate rather than far below it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.deploy.deployment import deploy_mapreduce
from repro.deploy.hadoop import JobProfile
from repro.deploy.platform import DEFAULT_CALIBRATION, Calibration
from repro.harness.scenarios import (
    concurrent_appenders,
    concurrent_readers,
    single_writer,
)
from repro.util.bytesize import GB, MB

__all__ = [
    "Scale",
    "QUICK",
    "FULL",
    "FigureResult",
    "figure_3a",
    "figure_3b",
    "figure_4",
    "figure_5",
    "figure_6a",
    "figure_6b",
    "ALL_FIGURES",
    "RTW_GENERATE_RATE",
    "GREP_SCAN_RATE",
]

#: RandomTextWriter per-mapper text generation rate (calibrated).
RTW_GENERATE_RATE = 26.5 * MB
#: Distributed-grep per-mapper scan rate (calibrated).
GREP_SCAN_RATE = 50 * MB


@dataclass(frozen=True)
class Scale:
    """Sweep sizes for one run of the experiment suite."""

    name: str
    total_nodes: int
    fig3_blocks: tuple[int, ...]
    fig4_clients: tuple[int, ...]
    fig5_clients: tuple[int, ...]
    fig6a_mapper_mb: tuple[int, ...]
    fig6a_total_mb: int
    fig6a_workers: int
    fig6b_input_gb: tuple[float, ...]
    fig6b_workers: int


#: Small deployments and sparse sweeps — seconds, for tests/smoke runs.
QUICK = Scale(
    name="quick",
    total_nodes=64,
    fig3_blocks=(4, 16, 32),
    fig4_clients=(1, 10, 25),
    fig5_clients=(1, 10, 25),
    fig6a_mapper_mb=(128, 320, 1600),
    fig6a_total_mb=1600,
    fig6a_workers=12,
    fig6b_input_gb=(1.6, 3.2),
    fig6b_workers=40,
)

#: The paper's deployments and sweeps.
FULL = Scale(
    name="full",
    total_nodes=270,
    fig3_blocks=(16, 48, 96, 160, 246),
    fig4_clients=(1, 50, 100, 150, 200, 250),
    fig5_clients=(1, 50, 100, 150, 200, 250),
    fig6a_mapper_mb=(128, 256, 640, 1280, 3200, 6400),
    fig6a_total_mb=6400,
    fig6a_workers=50,
    fig6b_input_gb=(6.4, 8.0, 9.6, 11.2, 12.8),
    fig6b_workers=150,
)


@dataclass
class FigureResult:
    """Series for one regenerated figure."""

    figure: str
    title: str
    x_label: str
    y_label: str
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    notes: str = ""

    def add(self, series_name: str, x: float, y: float) -> None:
        """Append one point to a named series."""
        self.series.setdefault(series_name, []).append((x, y))

    def ys(self, series_name: str) -> list[float]:
        """Y values of one series, in x order."""
        return [y for _, y in sorted(self.series[series_name])]


def _fig3_runs(scale: Scale, calibration: Calibration, seed: int):
    """Shared sweep for Figures 3(a) and 3(b): the same write runs."""
    runs = {}
    for backend in ("hdfs", "bsfs"):
        runs[backend] = [
            single_writer(
                backend,
                n_blocks=blocks,
                total_nodes=scale.total_nodes,
                calibration=calibration,
                seed=seed,
            )
            for blocks in scale.fig3_blocks
        ]
    return runs


def figure_3a(
    scale: Scale = QUICK,
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 0,
    _runs: Optional[dict] = None,
) -> FigureResult:
    """Figure 3(a): single-writer throughput vs. file size."""
    runs = _runs if _runs is not None else _fig3_runs(scale, calibration, seed)
    result = FigureResult(
        figure="3a",
        title="Single writer, single file: throughput vs file size",
        x_label="File size (GB)",
        y_label="Throughput (MB/s)",
        notes="Paper: BSFS ~60-70 MB/s sustained; HDFS ~40-47 MB/s.",
    )
    for backend, records in runs.items():
        name = backend.upper()
        for record in records:
            result.add(name, record.file_bytes / GB, record.throughput / MB)
    return result


def figure_3b(
    scale: Scale = QUICK,
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 0,
    _runs: Optional[dict] = None,
) -> FigureResult:
    """Figure 3(b): layout unbalance vs. file size (same runs as 3(a))."""
    runs = _runs if _runs is not None else _fig3_runs(scale, calibration, seed)
    result = FigureResult(
        figure="3b",
        title="Load-balancing: Manhattan distance to the ideal layout",
        x_label="File size (GB)",
        y_label="Degree of unbalance",
        notes=(
            "Paper: HDFS grows to ~450 at 16 GB; BSFS stays < 50. "
            "HDFS placement is calibrated on this very figure "
            "(target_reuse=3, see deploy/platform.py)."
        ),
    )
    for backend, records in runs.items():
        name = backend.upper()
        for record in records:
            result.add(name, record.file_bytes / GB, record.unbalance)
    return result


def figure_4(
    scale: Scale = QUICK,
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 0,
) -> FigureResult:
    """Figure 4: per-client read throughput vs. number of readers."""
    result = FigureResult(
        figure="4",
        title="Concurrent readers of a shared file",
        x_label="Number of clients",
        y_label="Average throughput (MB/s)",
        notes="Paper: BSFS flat near its single-client rate; HDFS degrades.",
    )
    for backend in ("hdfs", "bsfs"):
        for clients in scale.fig4_clients:
            record = concurrent_readers(
                backend,
                n_clients=clients,
                total_nodes=scale.total_nodes,
                calibration=calibration,
                seed=seed,
            )
            result.add(backend.upper(), clients, record.mean_client_throughput / MB)
    return result


def figure_5(
    scale: Scale = QUICK,
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 0,
) -> FigureResult:
    """Figure 5: aggregate append throughput vs. number of appenders."""
    result = FigureResult(
        figure="5",
        title="Concurrent appenders to a shared file (BSFS only)",
        x_label="Number of clients",
        y_label="Aggregated throughput (MB/s)",
        notes=(
            "Paper: near-linear scaling to ~10000 MB/s at 250 clients. "
            "HDFS cannot run this scenario (no append)."
        ),
    )
    for clients in scale.fig5_clients:
        record = concurrent_appenders(
            "bsfs",
            n_clients=clients,
            total_nodes=scale.total_nodes,
            calibration=calibration,
            seed=seed,
        )
        result.add("BSFS", clients, record.aggregate_throughput / MB)
    return result


def figure_6a(
    scale: Scale = QUICK,
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 0,
    profile: Optional[JobProfile] = None,
) -> FigureResult:
    """Figure 6(a): RandomTextWriter job completion time.

    Total output fixed; the per-mapper share sweeps from many small
    mappers to one big mapper (the paper: 6.4 GB total, 128 MB → 6.4 GB
    per mapper on 50 co-deployed machines).
    """
    result = FigureResult(
        figure="6a",
        title="RandomTextWriter: job completion time",
        x_label="Data per mapper (GB)",
        y_label="Job completion time (s)",
        notes="Paper: BSFS 7-11% faster; the gap grows as mappers get fewer.",
    )
    for backend in ("hdfs", "bsfs"):
        for mapper_mb in scale.fig6a_mapper_mb:
            mappers = max(1, scale.fig6a_total_mb // mapper_mb)
            deployment = deploy_mapreduce(
                backend,
                workers=scale.fig6a_workers,
                metadata_providers=10,
                calibration=calibration,
                profile=profile,
                seed=seed,
            )
            engine = deployment.cluster.engine

            def job():
                elapsed = yield from deployment.hadoop.run_write_job(
                    "/rtw",
                    num_mappers=mappers,
                    bytes_per_mapper=mapper_mb * MB,
                    generate_rate=RTW_GENERATE_RATE,
                )
                return elapsed

            elapsed = engine.run(engine.process(job()))
            result.add(backend.upper(), mapper_mb / 1024.0, elapsed)
    return result


def figure_6b(
    scale: Scale = QUICK,
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 0,
    profile: Optional[JobProfile] = None,
) -> FigureResult:
    """Figure 6(b): distributed grep job completion time.

    The input file is written in a boot-up phase from a dedicated node
    (so HDFS spreads chunks remotely), then one map per 64 MB block
    scans it — concurrent reads from a shared file at job scale.
    """
    result = FigureResult(
        figure="6b",
        title="Distributed grep: job completion time",
        x_label="Input size (GB)",
        y_label="Job completion time (s)",
        notes="Paper: BSFS 35-38% faster, gap steady-to-growing with input size.",
    )
    for backend in ("hdfs", "bsfs"):
        for input_gb in scale.fig6b_input_gb:
            n_blocks = max(1, round(input_gb * GB / calibration.block_size))
            deployment = deploy_mapreduce(
                backend,
                workers=scale.fig6b_workers,
                metadata_providers=20,
                calibration=calibration,
                profile=profile,
                seed=seed,
            )
            engine = deployment.cluster.engine
            client = deployment.dedicated_client
            storage = deployment.storage

            def boot_and_run():
                if backend == "bsfs":
                    yield from storage.create(client, "grep-input")
                    for _ in range(n_blocks):
                        yield from storage.append(
                            client,
                            "grep-input",
                            calibration.block_size,
                            produce_rate=calibration.client_stream_cap,
                        )
                    handle = "grep-input"
                else:
                    yield from storage.write_file(
                        client,
                        "/grep-input",
                        n_blocks * calibration.block_size,
                        produce_rate=calibration.client_stream_cap,
                    )
                    handle = "/grep-input"
                elapsed = yield from deployment.hadoop.run_scan_job(
                    handle, scan_rate=GREP_SCAN_RATE
                )
                return elapsed

            elapsed = engine.run(engine.process(boot_and_run()))
            result.add(backend.upper(), input_gb, elapsed)
    return result


#: Figure id → experiment function (used by the CLI and the benches).
ALL_FIGURES = {
    "3a": figure_3a,
    "3b": figure_3b,
    "4": figure_4,
    "5": figure_5,
    "6a": figure_6a,
    "6b": figure_6b,
}
