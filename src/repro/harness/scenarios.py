"""Microbenchmark scenario drivers (paper §V-C through §V-F).

Each scenario builds the §V deployment, runs the access pattern and
returns the numbers the paper plots.  Scenarios follow the paper's
protocol to the letter where it is specified:

* measurements repeat ``repeats`` times and report the mean (the paper
  used 5 repetitions "for better accuracy");
* the single writer and the boot-up writers run on a dedicated
  non-storage machine, so HDFS cannot write everything locally;
* concurrent readers run *on* storage machines and each reads a
  distinct 64 MB chunk in 4 KB logical reads — which the §IV-B cache
  turns into one whole-block fetch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.deploy.deployment import deploy_microbench
from repro.deploy.platform import Calibration, DEFAULT_CALIBRATION
from repro.util.bytesize import MB
from repro.util.stats import manhattan_unbalance, summarize

__all__ = [
    "WriteResult",
    "ReadResult",
    "AppendResult",
    "single_writer",
    "concurrent_readers",
    "concurrent_appenders",
]


@dataclass(frozen=True)
class WriteResult:
    """Single-writer scenario output (Figures 3(a) and 3(b))."""

    backend: str
    file_bytes: int
    seconds: float
    throughput: float  # bytes/second
    unbalance: float  # Manhattan distance to the ideal layout
    layout: tuple[int, ...]


@dataclass(frozen=True)
class ReadResult:
    """Concurrent-reader scenario output (Figure 4)."""

    backend: str
    clients: int
    mean_client_throughput: float
    min_client_throughput: float
    aggregate_throughput: float


@dataclass(frozen=True)
class AppendResult:
    """Concurrent-appender scenario output (Figure 5)."""

    backend: str
    clients: int
    aggregate_throughput: float
    makespan: float


def _handle(deployment, name: str) -> str:
    """BSFS uses flat BLOB ids; HDFS needs absolute paths."""
    return name if deployment.backend == "bsfs" else f"/{name}"


def _write_blocks(deployment, client, name: str, n_blocks: int, produce_rate):
    """Sequential block-at-a-time file write (the FS client pattern)."""
    storage = deployment.storage
    block = deployment.calibration.block_size
    handle = _handle(deployment, name)
    if deployment.backend == "bsfs":

        def run():
            yield from storage.create(client, handle)
            for _ in range(n_blocks):
                yield from storage.append(client, handle, block, produce_rate=produce_rate)

        return run()

    def run_hdfs():
        yield from storage.write_file(client, handle, n_blocks * block, produce_rate=produce_rate)

    return run_hdfs()


def single_writer(
    backend: str,
    n_blocks: int,
    total_nodes: int = 270,
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 0,
) -> WriteResult:
    """§V-D: one dedicated client writes an ``n_blocks`` x 64 MB file."""
    deployment = deploy_microbench(
        backend, total_nodes=total_nodes, calibration=calibration, seed=seed
    )
    engine = deployment.cluster.engine
    client = deployment.dedicated_client
    start = engine.now
    process = engine.process(
        _write_blocks(
            deployment, client, "single-writer-file", n_blocks,
            produce_rate=calibration.client_stream_cap,
        )
    )
    engine.run(process)
    seconds = engine.now - start
    total = n_blocks * calibration.block_size
    if backend == "bsfs":
        counts = deployment.storage.provider_block_counts()
    else:
        counts = deployment.storage.datanode_chunk_counts()
    layout = tuple(counts[name] for name in sorted(counts))
    return WriteResult(
        backend=backend,
        file_bytes=total,
        seconds=seconds,
        throughput=total / seconds,
        unbalance=manhattan_unbalance(layout),
        layout=layout,
    )


def concurrent_readers(
    backend: str,
    n_clients: int,
    total_nodes: int = 270,
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 0,
) -> ReadResult:
    """§V-E second experiment: boot-up write of N x 64 MB from a
    dedicated node, then N co-located clients each read one chunk."""
    deployment = deploy_microbench(
        backend, total_nodes=total_nodes, calibration=calibration, seed=seed
    )
    engine = deployment.cluster.engine
    cal = calibration
    handle = _handle(deployment, "shared-read-file")

    boot = engine.process(
        _write_blocks(
            deployment, deployment.dedicated_client, "shared-read-file", n_clients,
            produce_rate=cal.client_stream_cap,
        )
    )
    engine.run(boot)

    # Readers run on the storage machines themselves (§V-C); if there
    # are more clients than storage machines (250 clients vs 247 BSFS
    # providers on 270 nodes), some machines host two reader processes.
    pool = deployment.storage_nodes
    reader_nodes = [pool[i % len(pool)] for i in range(n_clients)]
    durations: dict[int, float] = {}

    def reader(i, node):
        t0 = engine.now
        yield from deployment.storage.read(
            node, handle,
            offset=i * cal.block_size, size=cal.block_size,
            consume_rate=cal.client_stream_cap,
        )
        durations[i] = engine.now - t0

    start = engine.now
    procs = [engine.process(reader(i, node)) for i, node in enumerate(reader_nodes)]
    done = engine.all_of(procs)
    engine.run(done)
    makespan = engine.now - start
    rates = [cal.block_size / durations[i] for i in range(n_clients)]
    stats = summarize(rates)
    return ReadResult(
        backend=backend,
        clients=n_clients,
        mean_client_throughput=stats.mean,
        min_client_throughput=stats.minimum,
        aggregate_throughput=n_clients * cal.block_size / makespan,
    )


def concurrent_appenders(
    backend: str,
    n_clients: int,
    total_nodes: int = 270,
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 0,
) -> AppendResult:
    """§V-F: N co-located clients append 64 MB each to one shared file.

    Only BSFS can run it — requesting it for HDFS raises
    :class:`~repro.errors.AppendNotSupported`, mirroring the paper:
    "We could not perform the same experiment for HDFS, since it does
    not implement the append operation."
    """
    if backend != "bsfs":
        from repro.errors import AppendNotSupported

        raise AppendNotSupported(
            "concurrent appends require BSFS; HDFS does not implement append (§V-F)"
        )
    deployment = deploy_microbench(
        "bsfs", total_nodes=total_nodes, calibration=calibration, seed=seed
    )
    engine = deployment.cluster.engine
    cal = calibration
    handle = "shared-append-file"

    create = engine.process(deployment.storage.create(deployment.dedicated_client, handle))
    engine.run(create)

    pool = deployment.storage_nodes
    appender_nodes = [pool[i % len(pool)] for i in range(n_clients)]

    def appender(node):
        yield from deployment.storage.append(
            node, handle, cal.block_size, produce_rate=cal.client_stream_cap
        )

    start = engine.now
    procs = [engine.process(appender(node)) for node in appender_nodes]
    engine.run(engine.all_of(procs))
    makespan = engine.now - start
    total = n_clients * cal.block_size
    return AppendResult(
        backend="bsfs",
        clients=n_clients,
        aggregate_throughput=total / makespan,
        makespan=makespan,
    )
