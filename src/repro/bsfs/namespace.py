"""BSFS namespace manager (paper §IV-A).

"The Hadoop framework expects a classical hierarchical directory
structure, whereas BlobSeer provides a flat structure for BLOBs.  For
this purpose, we had to design and implement a specialized namespace
manager, which is responsible for maintaining a file system namespace,
and for mapping files to BLOBs."

It is deliberately centralized (as in the paper), and deliberately
*minimal*: clients only talk to it for open/create/delete/rename-style
operations; all data and data-layout traffic goes straight to BlobSeer,
preserving the decentralized metadata benefits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fsapi import DirectoryTree, FileStatus, normalize_path

__all__ = ["FileEntry", "NamespaceManager"]


@dataclass
class FileEntry:
    """Namespace record for one file: the BLOB that backs it."""

    blob_id: str


class NamespaceManager:
    """Path → BLOB mapping plus directory structure."""

    def __init__(self) -> None:
        self._tree = DirectoryTree()
        #: Served requests, to verify the "minimize interaction" goal.
        self.requests = 0

    # -- file mapping ------------------------------------------------------------

    def register_file(self, path: str, blob_id: str) -> FileEntry:
        """Bind a new file path to a BLOB id (parents auto-created)."""
        self.requests += 1
        entry = FileEntry(blob_id=blob_id)
        self._tree.add_file(path, entry)
        return entry

    def lookup(self, path: str) -> FileEntry:
        """Resolve a file path to its BLOB (the open-time interaction)."""
        self.requests += 1
        entry = self._tree.handle(path)
        assert isinstance(entry, FileEntry)
        return entry

    # -- namespace operations ------------------------------------------------------

    def exists(self, path: str) -> bool:
        """Existence check."""
        self.requests += 1
        return self._tree.exists(path)

    def is_file(self, path: str) -> bool:
        """Whether *path* is a file."""
        self.requests += 1
        return self._tree.is_file(path)

    def is_dir(self, path: str) -> bool:
        """Whether *path* is a directory."""
        self.requests += 1
        return self._tree.is_dir(path)

    def make_dirs(self, path: str) -> None:
        """``mkdir -p``."""
        self.requests += 1
        self._tree.make_dirs(path)

    def list_dir(self, path: str) -> list[str]:
        """Immediate children, sorted."""
        self.requests += 1
        return self._tree.list_dir(path)

    def iter_files(self, path: str = "/") -> list[str]:
        """All files under *path*."""
        self.requests += 1
        return list(self._tree.iter_files(path))

    def delete(self, path: str, recursive: bool = False) -> list[str]:
        """Remove a file/directory; returns the BLOB ids to dispose of."""
        self.requests += 1
        removed = self._tree.remove(path, recursive=recursive)
        return [entry.blob_id for entry in removed]  # type: ignore[union-attr]

    def rename(self, src: str, dst: str) -> None:
        """Move a file or subtree; BLOB bindings travel with the paths."""
        self.requests += 1
        self._tree.rename(src, dst)

    def status_of(self, path: str, size: int) -> FileStatus:
        """Build a :class:`FileStatus` (size supplied by the caller,
        because sizes live in BlobSeer, not in the namespace)."""
        path = normalize_path(path)
        return FileStatus(path=path, is_dir=self._tree.is_dir(path), size=size)
