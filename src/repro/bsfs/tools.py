"""File utilities built on BSFS's concurrency features.

The paper motivates concurrent appends with exactly this tool (§V-F):
"the possibility of running concurrent appends can improve the
performance of a simple operation such as copying a large distributed
file.  This can be done in parallel by multiple clients which read
different parts of the file, then concurrently append the data to the
destination file."

:func:`concurrent_copy` implements that: the destination is
pre-partitioned among workers, each worker reads its slice of the
source snapshot and writes it — all workers in flight at once, which is
legal on BlobSeer because writers of disjoint ranges never conflict and
every write is its own snapshot.  On HDFS the same operation must be a
single sequential writer (no append, one writer per file).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.bsfs.filesystem import BSFSFileSystem
from repro.errors import FileSystemError

__all__ = ["CopyReport", "concurrent_copy"]


@dataclass(frozen=True)
class CopyReport:
    """Outcome of one parallel copy."""

    src: str
    dst: str
    bytes_copied: int
    workers: int
    slices: int


def concurrent_copy(
    fs: BSFSFileSystem,
    src: str,
    dst: str,
    workers: int = 4,
    threaded: bool = False,
) -> CopyReport:
    """Copy *src* to *dst* with *workers* concurrent writers (§V-F).

    The copy pins the source's latest published snapshot (readers are
    immune to concurrent source writes), creates the destination sized
    up front by writing block-aligned slices at fixed offsets, and lets
    every worker proceed independently — write/write concurrency on one
    file, the thing HDFS cannot do.

    ``threaded=True`` runs workers on real threads (a semantics check,
    not a performance claim — see DESIGN.md on the GIL); the default
    runs them sequentially, which is equivalent under BlobSeer's
    conflict-free disjoint-range writes.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    status = fs.status(src)
    if status.is_dir:
        raise FileSystemError(f"cannot concurrent_copy a directory: {src}")
    source = fs.open(src)  # pins the snapshot
    size = source.size

    dst_blob = fs.store.create()
    fs.namespace.register_file(dst, dst_blob)
    if size == 0:
        return CopyReport(src=src, dst=dst, bytes_copied=0, workers=workers, slices=0)

    block_size = fs.store.snapshot(dst_blob).block_size
    # Partition the file into block-aligned worker slices; BlobSeer's
    # alignment rules then let each slice be one independent write.
    n_blocks = -(-size // block_size)
    per_worker = -(-n_blocks // workers)
    slices = [
        (start * block_size, min(size, (start + per_worker) * block_size))
        for start in range(0, n_blocks, per_worker)
    ]

    # The destination must grow front-to-back (no holes): the first
    # writer of each slice appends; order of *completion* is free, so
    # we seed the file sequentially with cheap zero-cost appends only
    # when running threaded.  Sequential mode just writes in order.
    def copy_slice(lo: int, hi: int) -> None:
        data = source.pread(lo, hi - lo)
        fs.store.write(dst_blob, lo, data)

    if threaded:
        # Seed the full length first so every slice offset is a valid
        # interior target, then let all workers write concurrently.
        fs.store.append(dst_blob, b"\0" * size)
        threads = [
            threading.Thread(target=copy_slice, args=(lo, hi)) for lo, hi in slices
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    else:
        # In-order writes each extend the blob exactly at its end, so
        # no seeding is needed (the no-holes rule stays satisfied).
        for lo, hi in slices:
            copy_slice(lo, hi)

    return CopyReport(
        src=src, dst=dst, bytes_copied=size, workers=workers, slices=len(slices)
    )
