"""BSFS: the BlobSeer File System (paper §IV).

Implements the Hadoop FileSystem contract on top of a BlobSeer store:

* namespace operations go to the (centralized, deliberately rarely
  contacted) :class:`~repro.bsfs.namespace.NamespaceManager`;
* data operations go straight to BlobSeer with §IV-B client caching —
  whole-block prefetch on read, write-behind block commit on write;
* ``block_locations`` maps Hadoop's affinity call onto BlobSeer's
  layout primitive (§IV-C).

Extras beyond the Hadoop API that BlobSeer makes possible (paper §V-F,
§VI-A): ``append`` works — including *concurrently* from many clients —
and ``open`` can pin any past version of a file.
"""

from __future__ import annotations

from typing import Optional

from repro.blob.config import StoreConfig
from repro.blob.store import LocalBlobStore
from repro.bsfs.cache import BlockReadCache, WriteBuffer
from repro.bsfs.namespace import NamespaceManager
from repro.errors import IsADirectory
from repro.fsapi import FileStatus, FileSystem, RangeLocation, ReadStream, WriteStream
from repro.util.chunks import align_down

__all__ = ["BSFSFileSystem", "BSFSWriteStream", "BSFSReadStream"]


class BSFSWriteStream(WriteStream):
    """Write-behind stream committing whole blocks to a BLOB."""

    def __init__(self, store: LocalBlobStore, blob_id: str, resume: bool):
        self._store = store
        self._blob_id = blob_id
        committed = 0
        tail = b""
        if resume:
            info = store.snapshot(blob_id)
            committed = align_down(info.size, info.block_size)
            if info.size != committed:
                # Read-modify-write of the trailing partial block, done
                # client-side; BlobSeer itself never mutates data.
                tail = store.read(blob_id, offset=committed, size=info.size - committed)
        self._buffer = WriteBuffer(
            commit=self._commit,
            block_size=store.snapshot(blob_id).block_size,
            committed=committed,
            initial_tail=tail,
        )

    def _commit(self, offset: int, data: bytes) -> None:
        self._store.write(self._blob_id, offset, data)

    def write(self, data: bytes) -> None:
        """Buffer *data*; full blocks are committed as they fill."""
        self._buffer.write(data)

    def close(self) -> None:
        """Flush the trailing partial block (if any)."""
        self._buffer.close()

    @property
    def size(self) -> int:
        """Bytes written so far (committed + buffered)."""
        return self._buffer.size


class BSFSReadStream(ReadStream):
    """Prefetching reader pinned to one published snapshot.

    Because a BlobSeer snapshot is immutable, a reader opened while
    writers are appending sees a perfectly stable file — no HDFS-style
    "visible length" ambiguity.
    """

    def __init__(
        self,
        store: LocalBlobStore,
        blob_id: str,
        version: Optional[int] = None,
        readahead: int = 0,
    ):
        info = store.snapshot(blob_id, version)
        self._store = store
        self._blob_id = blob_id
        self.version = info.version
        self._size = info.size
        self._pos = 0
        engine = store.io_engine if readahead > 0 else None
        self._cache = BlockReadCache(
            fetch_block=self._fetch_block,
            block_size=info.block_size,
            file_size=info.size,
            capacity=max(2, 1 + readahead) if engine is not None else 2,
            engine=engine,
            readahead=readahead if engine is not None else 0,
        )

    def _fetch_block(self, index: int) -> memoryview:
        offset = index * self._cache.block_size
        length = min(self._cache.block_size, self._size - offset)
        # Whole-block fetch of an immutable snapshot: keep it as a
        # zero-copy view — the store aliases the provider's stored
        # payload for exactly this shape of read, so the cache holds
        # views and only pread() results materialize (DESIGN.md §11).
        return self._store.read_payload(
            self._blob_id, offset=offset, size=length, version=self.version
        ).view()

    @property
    def size(self) -> int:
        """Snapshot size (stable for the life of the stream)."""
        return self._size

    @property
    def prefetches(self) -> int:
        """Backend block fetches so far (cache-efficiency metric)."""
        return self._cache.fetches

    def read(self, size: int = -1) -> bytes:
        """Sequential read from the cursor."""
        if size < 0:
            size = self._size - self._pos
        size = min(size, self._size - self._pos)
        data = self._cache.pread(self._pos, size)
        self._pos += len(data)
        return data

    def pread(self, offset: int, size: int) -> bytes:
        """Positional read (cursor unchanged)."""
        size = max(0, min(size, self._size - offset))
        return self._cache.pread(offset, size)

    def seek(self, offset: int) -> None:
        """Move the cursor (clamped to [0, size])."""
        if offset < 0:
            raise ValueError(f"seek to negative offset {offset}")
        self._pos = min(offset, self._size)

    @property
    def tell(self) -> int:
        """Current cursor position."""
        return self._pos


class BSFSFileSystem(FileSystem):
    """Hadoop FileSystem over BlobSeer."""

    def __init__(
        self,
        store: Optional[LocalBlobStore] = None,
        readahead: int = 0,
        config: Optional[StoreConfig] = None,
        **store_kwargs,
    ):
        if store is not None and (config is not None or store_kwargs):
            raise TypeError("pass either an existing store or its configuration")
        if store is None:
            store = LocalBlobStore(config=config, **store_kwargs)
        self.store = store
        self.namespace = NamespaceManager()
        self.block_size = self.store.block_size
        #: Blocks prefetched ahead of sequential readers (needs a store
        #: with ``io_workers > 0``; silently inert otherwise).
        self.readahead = readahead

    @property
    def io_engine(self):
        """The store's shared parallel I/O engine (``None`` if inline)."""
        return self.store.io_engine

    # -- streams ---------------------------------------------------------------

    def create(self, path: str, client: Optional[str] = None) -> BSFSWriteStream:
        """Create a file bound to a fresh BLOB."""
        blob_id = self.store.create()
        self.namespace.register_file(path, blob_id)
        return BSFSWriteStream(self.store, blob_id, resume=False)

    def open(
        self, path: str, client: Optional[str] = None, version: Optional[int] = None
    ) -> BSFSReadStream:
        """Open for reading; *version* pins an old snapshot (BSFS extra).

        Hadoop's file system API "does not support versioning yet", so
        the default — latest published — is what Hadoop always gets.
        """
        entry = self.namespace.lookup(path)
        return BSFSReadStream(
            self.store, entry.blob_id, version=version, readahead=self.readahead
        )

    def append(self, path: str, client: Optional[str] = None) -> BSFSWriteStream:
        """Open for appending — the §V-F capability HDFS lacks."""
        entry = self.namespace.lookup(path)
        return BSFSWriteStream(self.store, entry.blob_id, resume=True)

    # -- namespace -----------------------------------------------------------------

    def status(self, path: str) -> FileStatus:
        """File/directory status; file sizes come from BlobSeer."""
        if self.namespace.is_dir(path):
            return FileStatus(path=path, is_dir=True, size=0)
        entry = self.namespace.lookup(path)
        return FileStatus(
            path=path, is_dir=False, size=self.store.snapshot(entry.blob_id).size
        )

    def list_dir(self, path: str) -> list[str]:
        """Immediate children."""
        return self.namespace.list_dir(path)

    def make_dirs(self, path: str) -> None:
        """``mkdir -p``."""
        self.namespace.make_dirs(path)

    def delete(self, path: str, recursive: bool = False) -> None:
        """Unlink; backing BLOBs are dropped from the namespace.

        BLOB storage reclamation is the GC's job
        (:func:`repro.blob.gc.collect_garbage`), mirroring the paper's
        split between namespace and data lifecycle.
        """
        self.namespace.delete(path, recursive=recursive)

    def rename(self, src: str, dst: str) -> None:
        """Move a file or subtree (pure namespace operation)."""
        self.namespace.rename(src, dst)

    def exists(self, path: str) -> bool:
        """Existence check."""
        return self.namespace.exists(path)

    # -- affinity ---------------------------------------------------------------------

    def block_locations(self, path: str, offset: int, size: int) -> list[RangeLocation]:
        """Blocks and hosting providers for a range (§IV-C)."""
        if self.namespace.is_dir(path):
            raise IsADirectory(path)
        entry = self.namespace.lookup(path)
        info = self.store.snapshot(entry.blob_id)
        size = max(0, min(size, info.size - offset))
        return [
            RangeLocation(offset=loc.offset, length=loc.length, hosts=loc.providers)
            for loc in self.store.block_locations(entry.blob_id, offset, size)
        ]

    # -- BSFS extras --------------------------------------------------------------------

    def branch_file(
        self, src_path: str, dst_path: str, version: Optional[int] = None
    ) -> None:
        """Fork a file at a published snapshot (§II-A branching).

        ``dst_path`` becomes an independent file sharing all of
        ``src_path``'s data up to *version* (default latest) — a zero-
        copy dataset fork.  Writes to either file never affect the
        other.
        """
        entry = self.namespace.lookup(src_path)
        new_blob = self.store.branch(entry.blob_id, version=version)
        self.namespace.register_file(dst_path, new_blob)

    def file_versions(self, path: str) -> int:
        """Latest published version of the file's BLOB."""
        entry = self.namespace.lookup(path)
        return self.store.latest_version(entry.blob_id)

    def blob_of(self, path: str) -> str:
        """The BLOB id backing a file (for tooling and tests)."""
        return self.namespace.lookup(path).blob_id
