"""BSFS: Hadoop-style file system layered over BlobSeer (paper §IV)."""

from repro.bsfs.cache import BlockReadCache, WriteBuffer
from repro.bsfs.filesystem import BSFSFileSystem, BSFSReadStream, BSFSWriteStream
from repro.bsfs.namespace import FileEntry, NamespaceManager

__all__ = [
    "BSFSFileSystem",
    "BSFSReadStream",
    "BSFSWriteStream",
    "NamespaceManager",
    "FileEntry",
    "BlockReadCache",
    "WriteBuffer",
]
