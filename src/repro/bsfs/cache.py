"""Client-side caching (paper §IV-B).

"Hadoop manipulates data sequentially in small chunks of a few KB
(usually, 4 KB) at a time" — so both HDFS and BSFS buffer client I/O:

* reads *prefetch a whole block* when the requested data is not cached;
* writes are *delayed until a whole block has been filled*.

These two mechanisms are implemented here generically over callback
functions, so the BSFS client, the HDFS client and the simulated
clients all share them.

When the backing store has a :class:`~repro.blob.io_engine.\
ParallelIOEngine`, :class:`BlockReadCache` can additionally *read
ahead*: while the client consumes block *i*, the next ``readahead``
blocks are fetched on the engine in the background, hiding provider
latency behind Hadoop's strictly sequential access pattern.
"""

from __future__ import annotations

from collections import OrderedDict
from concurrent.futures import Future
from typing import Callable, Optional, Union

from repro.blob.io_engine import ParallelIOEngine
from repro.errors import InvalidRange

__all__ = ["BlockReadCache", "WriteBuffer"]

#: What a block fetch may return: ``bytes``, or a read-only view over
#: the store's immutable payload (zero-copy; DESIGN.md §11).
BlockData = Union[bytes, memoryview]


class BlockReadCache:
    """Whole-block prefetching read cache (LRU).

    Args:
        fetch_block: ``fetch_block(index) -> bytes | memoryview``
            reading one whole block from the backend (trailing block
            may be short).  Returning a read-only view keeps the cache
            zero-copy: cached blocks alias the store's immutable
            payloads and only :meth:`pread` results materialize
            (DESIGN.md §11).
        block_size: striping unit.
        file_size: immutable size of the snapshot being read.
        capacity: number of blocks kept (Hadoop keeps ~1; a little more
            helps the MapReduce record reader cross block boundaries).
        engine: optional parallel I/O engine used for read-ahead.
        readahead: blocks to prefetch in the background past the one
            being served (0 disables; requires *engine*).
    """

    def __init__(
        self,
        fetch_block: Callable[[int], "BlockData"],
        block_size: int,
        file_size: int,
        capacity: int = 2,
        engine: Optional[ParallelIOEngine] = None,
        readahead: int = 0,
    ):
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if file_size < 0:
            raise ValueError("file_size must be >= 0")
        if readahead < 0:
            raise ValueError("readahead must be >= 0")
        if readahead > 0 and engine is None:
            raise ValueError("readahead requires an I/O engine")
        self._fetch = fetch_block
        self.block_size = block_size
        self.file_size = file_size
        self.capacity = capacity
        self._engine = engine
        self.readahead = readahead
        self._blocks: OrderedDict[int, BlockData] = OrderedDict()
        # In-flight read-ahead fetches, keyed by block index.  Only the
        # cache's owning thread touches this dict; engine threads just
        # run the fetch callable inside the future.
        self._pending: dict[int, "Future[BlockData]"] = {}
        # Last block index served; read-ahead only triggers while the
        # access pattern stays sequential (Hadoop's pattern), so random
        # preads don't turn into a background-fetch amplifier.
        self._last_served: Optional[int] = None
        #: Number of backend block fetches (cache-miss counter;
        #: includes read-ahead fetches).
        self.fetches = 0

    @property
    def _last_block(self) -> int:
        return max(0, (self.file_size - 1) // self.block_size)

    def _admit(self, index: int, data: "BlockData") -> "BlockData":
        expected = min(self.block_size, self.file_size - index * self.block_size)
        if len(data) != expected:
            raise InvalidRange(
                f"backend returned {len(data)}B for block {index}, expected {expected}B"
            )
        self._blocks[index] = data
        if len(self._blocks) > self.capacity:
            self._blocks.popitem(last=False)
        return data

    def _readahead(self, index: int) -> None:
        """Schedule background fetches for the blocks after *index*.

        Only fires while access is sequential (first access, a repeat
        of the last block, or its successor); a seek elsewhere drops
        the now-useless pending futures instead of piling more on.
        """
        if not self.readahead or self._engine is None:
            return
        sequential = self._last_served is None or index in (
            self._last_served,
            self._last_served + 1,
        )
        self._last_served = index
        if not sequential:
            # Abandon the now-useless prefetches: cancel the ones still
            # queued (sparing backend fetches and pool capacity); the
            # in-flight ones just expire.  A successfully cancelled
            # fetch never hit the backend — uncount it.
            for future in self._pending.values():
                if future.cancel():
                    self.fetches -= 1
            self._pending.clear()
            return
        for ahead in range(index + 1, min(index + self.readahead, self._last_block) + 1):
            if ahead in self._blocks or ahead in self._pending:
                continue
            self._pending[ahead] = self._engine.submit(self._fetch, ahead)
            self.fetches += 1

    def _block(self, index: int) -> "BlockData":
        if index in self._blocks:
            self._blocks.move_to_end(index)
            self._readahead(index)
            return self._blocks[index]
        future = self._pending.pop(index, None)
        data: Optional[BlockData] = None
        if future is not None:
            try:
                data = future.result()  # fetch already counted at submit
            except Exception:
                # The prefetch hit a transient failure (e.g. a replica's
                # provider flapping); the world may have healed since —
                # retry inline rather than failing a read that would
                # succeed without read-ahead.
                data = None
        if data is None:
            data = self._fetch(index)
            self.fetches += 1
        data = self._admit(index, data)
        self._readahead(index)
        return data

    def pread(self, offset: int, size: int) -> bytes:
        """Read ``[offset, offset+size)``, prefetching whole blocks."""
        if offset < 0 or size < 0 or offset + size > self.file_size:
            raise InvalidRange(
                f"read [{offset}, {offset + size}) outside file of {self.file_size}B"
            )
        if size == 0:
            return b""
        index = offset // self.block_size
        start = offset - index * self.block_size
        if start + size <= self.block_size:
            # Single-block read — Hadoop's few-KB sequential pattern,
            # so the overwhelmingly common case: slice the cached block
            # through a view and materialize the result in ONE copy
            # (a whole bytes-backed block passes through with none).
            block = self._block(index)
            if start == 0 and size == len(block) and type(block) is bytes:
                return block
            return bytes(memoryview(block)[start : start + size])
        out = bytearray(size)
        dest = memoryview(out)
        position = offset
        remaining = size
        while remaining > 0:
            index = position // self.block_size
            start = position - index * self.block_size
            take = min(self.block_size - start, remaining)
            at = position - offset
            dest[at : at + take] = memoryview(self._block(index))[start : start + take]
            position += take
            remaining -= take
        dest.release()
        return bytes(out)


class WriteBuffer:
    """Write-behind block buffer.

    Accumulates client writes and commits them in whole-block units via
    ``commit(offset, data)``; a trailing partial block is committed only
    at :meth:`close` ("it delays committing writes until a whole block
    has been filled in the cache").

    Supports resuming at an unaligned size (the BSFS append path): the
    caller passes the trailing partial bytes as ``initial_tail`` and the
    first commit rewrites them together with the new data at the aligned
    offset — a read-modify-write entirely contained in the client.
    """

    def __init__(
        self,
        commit: Callable[[int, bytes], None],
        block_size: int,
        committed: int = 0,
        initial_tail: bytes = b"",
    ):
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        if committed % block_size != 0:
            raise ValueError(
                f"committed watermark {committed} not aligned to {block_size}"
            )
        if len(initial_tail) >= block_size:
            raise ValueError("initial_tail must be shorter than one block")
        self._commit = commit
        self.block_size = block_size
        self._committed = committed
        self._buffer = bytearray(initial_tail)
        self._closed = False
        #: Number of backend commit calls (write-batching counter).
        self.commits = 0

    @property
    def size(self) -> int:
        """Logical file size including uncommitted buffered bytes."""
        return self._committed + len(self._buffer)

    def write(self, data: bytes) -> None:
        """Buffer *data*, committing any newly completed whole blocks."""
        if self._closed:
            raise ValueError("write to a closed buffer")
        self._buffer.extend(data)
        full = (len(self._buffer) // self.block_size) * self.block_size
        if full:
            # Freeze the completed window in ONE copy: a transient
            # memoryview selects the window without duplicating it
            # first (``self._buffer[:full]`` would), and dies before
            # the ``del`` resizes the buffer (which would otherwise
            # raise BufferError on the exported view).
            chunk = bytes(memoryview(self._buffer)[:full])
            del self._buffer[:full]
            self._commit(self._committed, chunk)
            self.commits += 1
            self._committed += full

    def close(self) -> int:
        """Commit any trailing partial block; returns the final size."""
        if self._closed:
            return self._committed
        self._closed = True
        if self._buffer:
            chunk = bytes(self._buffer)
            self._buffer.clear()
            self._commit(self._committed, chunk)
            self.commits += 1
            self._committed += len(chunk)
        return self._committed
