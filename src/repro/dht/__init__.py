"""Distributed hash table substrate (metadata-provider storage)."""

from repro.dht.ring import HashRing, stable_hash
from repro.dht.store import Bucket, DhtStats, DhtStore, MultiPutResult

__all__ = [
    "HashRing",
    "stable_hash",
    "Bucket",
    "DhtStats",
    "DhtStore",
    "MultiPutResult",
]
