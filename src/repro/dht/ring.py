"""Consistent-hash ring.

BlobSeer stores segment-tree nodes "on the metadata providers using a
DHT" (paper §III-A.3).  The ring maps every tree-node key to a metadata
provider (and to a replica set for fault tolerance) with two properties
the system needs:

* **stability** — the mapping is a pure function of the key and the
  member set, identical across runs and processes (keys are hashed with
  BLAKE2b, never Python's randomized ``hash``);
* **smoothness** — adding/removing a provider only moves O(1/n) of the
  keyspace (virtual nodes smooth the distribution).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Iterable

__all__ = ["HashRing", "stable_hash"]


def stable_hash(key: Hashable, salt: bytes = b"") -> int:
    """64-bit stable hash of *key* (via ``repr`` + BLAKE2b).

    Deterministic across processes and Python versions for the key types
    used in this library (strings, ints, tuples thereof).
    """
    digest = hashlib.blake2b(repr(key).encode("utf-8") + salt, digest_size=8)
    return int.from_bytes(digest.digest(), "big")


class HashRing:
    """Consistent hashing with virtual nodes.

    Args:
        members: initial member identifiers (e.g. provider names).
        vnodes: virtual nodes per member; more gives a smoother split.
    """

    def __init__(self, members: Iterable[str] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._points: list[tuple[int, str]] = []
        self._members: set[str] = set()
        for member in members:
            self.add(member)

    # -- membership ---------------------------------------------------------

    def add(self, member: str) -> None:
        """Join *member*; idempotent additions are rejected loudly."""
        if member in self._members:
            raise ValueError(f"member {member!r} already on the ring")
        self._members.add(member)
        for i in range(self.vnodes):
            point = (stable_hash((member, i), salt=b"ring"), member)
            bisect.insort(self._points, point)

    def remove(self, member: str) -> None:
        """Leave the ring (keys move to successors)."""
        if member not in self._members:
            raise KeyError(f"member {member!r} not on the ring")
        self._members.discard(member)
        self._points = [(h, m) for (h, m) in self._points if m != member]

    @property
    def members(self) -> frozenset[str]:
        """Current member set."""
        return frozenset(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    # -- lookups ------------------------------------------------------------

    def lookup(self, key: Hashable) -> str:
        """The member owning *key*."""
        if not self._members:
            raise LookupError("lookup on an empty ring")
        h = stable_hash(key)
        idx = bisect.bisect_right(self._points, (h, "￿"))
        if idx == len(self._points):
            idx = 0
        return self._points[idx][1]

    def replicas(self, key: Hashable, n: int) -> list[str]:
        """The *n* distinct members responsible for *key*, primary first.

        Walks the ring clockwise from the key's point, skipping duplicate
        members.  ``n`` larger than the membership returns all members.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if not self._members:
            raise LookupError("replicas on an empty ring")
        n = min(n, len(self._members))
        h = stable_hash(key)
        idx = bisect.bisect_right(self._points, (h, "￿"))
        chosen: list[str] = []
        seen: set[str] = set()
        for step in range(len(self._points)):
            member = self._points[(idx + step) % len(self._points)][1]
            if member not in seen:
                seen.add(member)
                chosen.append(member)
                if len(chosen) == n:
                    break
        return chosen

    def key_distribution(self, keys: Iterable[Hashable]) -> dict[str, int]:
        """Count how many of *keys* land on each member (diagnostics)."""
        counts = {member: 0 for member in self._members}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts
