"""Replicated key-value store over a hash ring.

This is the functional-layer DHT used by BlobSeer's metadata providers:
a set of named buckets (one per provider), a :class:`HashRing` deciding
key placement, and write/read paths that tolerate bucket failures up to
the replication level.  The simulated deployment re-uses the same ring
logic but puts each bucket behind an RPC server.
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Iterable, Iterator, Optional

from repro.dht.ring import HashRing
from repro.errors import ProviderUnavailable, ReplicationError

__all__ = ["Bucket", "DhtStore", "MISSING"]


class _Missing:
    """Sentinel for "this replica does not hold the key" in enumerations."""

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return "<missing>"


#: Replica-enumeration sentinel: the bucket is online but lacks the key.
MISSING = _Missing()


class Bucket:
    """One provider's local slice of the DHT: a dict with an on/off switch."""

    def __init__(self, name: str):
        self.name = name
        self.online = True
        self._items: dict[Hashable, object] = {}

    def put(self, key: Hashable, value: object) -> None:
        """Store *value* (immutable overwrite-forbidden discipline is the
        caller's concern; the bucket itself is a plain map)."""
        if not self.online:
            raise ProviderUnavailable(f"bucket {self.name} is down")
        self._items[key] = value

    def get(self, key: Hashable) -> object:
        """Fetch the value for *key*; KeyError if absent."""
        if not self.online:
            raise ProviderUnavailable(f"bucket {self.name} is down")
        return self._items[key]

    def delete(self, key: Hashable) -> None:
        """Remove *key* if present (idempotent)."""
        if not self.online:
            raise ProviderUnavailable(f"bucket {self.name} is down")
        self._items.pop(key, None)

    def __contains__(self, key: Hashable) -> bool:
        return self.online and key in self._items

    def __len__(self) -> int:
        return len(self._items)

    def keys(self) -> Iterator[Hashable]:
        """Iterate stored keys (GC sweeps use this)."""
        return iter(list(self._items.keys()))

    def peek(self, key: Hashable) -> object:
        """Fetch without the online gate (anti-entropy reads a bucket's
        durable content even around failure injection; a real recovered
        node would scan its local disk the same way)."""
        return self._items[key]

    def digest(self, keys: Optional[Iterable[Hashable]] = None) -> str:
        """Stable content digest over *keys* (default: every stored key).

        Two replicas holding identical values for the digested keys
        produce identical digests — the anti-entropy convergence check
        (DESIGN.md §8).  Keys absent from the bucket hash as missing
        rather than raising, so digests over a shared key set are
        comparable even while a replica is behind.
        """
        chosen = list(self._items.keys()) if keys is None else list(keys)
        h = hashlib.sha256()
        for key in sorted(chosen, key=repr):
            h.update(repr(key).encode())
            h.update(b"=")
            h.update(repr(self._items.get(key, MISSING)).encode())
            h.update(b";")
        return h.hexdigest()


class DhtStore:
    """Hash-ring-replicated store across named buckets.

    Args:
        bucket_names: provider names (20 metadata providers in the
            paper's microbenchmark deployment).
        replication: copies per key; reads fail over between them.
    """

    def __init__(self, bucket_names: list[str], replication: int = 1, vnodes: int = 64):
        if not bucket_names:
            raise ValueError("DhtStore needs at least one bucket")
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self.replication = replication
        self.buckets = {name: Bucket(name) for name in bucket_names}
        self.ring = HashRing(bucket_names, vnodes=vnodes)

    def owners(self, key: Hashable) -> list[str]:
        """Replica set (bucket names) responsible for *key*."""
        return self.ring.replicas(key, self.replication)

    def put(self, key: Hashable, value: object) -> None:
        """Write to every live replica; fails if none is reachable."""
        wrote = 0
        for name in self.owners(key):
            bucket = self.buckets[name]
            if bucket.online:
                bucket.put(key, value)
                wrote += 1
        if wrote == 0:
            raise ReplicationError(f"no live replica for key {key!r}")

    def get(self, key: Hashable) -> object:
        """Read from the first live replica holding the key."""
        missing = False
        for name in self.owners(key):
            bucket = self.buckets[name]
            if not bucket.online:
                continue
            try:
                return bucket.get(key)
            except KeyError:
                missing = True
        if missing:
            raise KeyError(key)
        raise ProviderUnavailable(f"all replicas for {key!r} are down")

    def delete(self, key: Hashable) -> None:
        """Delete from all live replicas (used by the GC sweep)."""
        for name in self.owners(key):
            bucket = self.buckets[name]
            if bucket.online:
                bucket.delete(key)

    def __contains__(self, key: Hashable) -> bool:
        try:
            self.get(key)
            return True
        except (KeyError, ProviderUnavailable):
            return False

    # -- anti-entropy surface (DESIGN.md §8) -----------------------------------

    def online_buckets(self) -> Iterator[Bucket]:
        """Live buckets only — the shared offline-bucket skip-list used
        by every maintenance sweep (GC's metadata sweep, the scrub
        pass).  Offline buckets keep their content and are picked up by
        the first sweep after recovery."""
        for bucket in self.buckets.values():
            if bucket.online:
                yield bucket

    def all_keys(self) -> set[Hashable]:
        """Union of keys across every *online* bucket (scrub enumeration)."""
        keys: set[Hashable] = set()
        for bucket in self.online_buckets():
            keys.update(bucket.keys())
        return keys

    def replica_values(self, key: Hashable) -> dict[str, object]:
        """What each *online* owner replica holds for *key*.

        Maps bucket name to the stored value, or :data:`MISSING` when
        the replica is online but lacks the key.  Offline owners are
        omitted: their content cannot be compared until they recover.
        """
        values: dict[str, object] = {}
        for name in self.owners(key):
            bucket = self.buckets[name]
            if not bucket.online:
                continue
            try:
                values[name] = bucket.peek(key)
            except KeyError:
                values[name] = MISSING
        return values

    def put_replica(self, name: str, key: Hashable, value: object) -> None:
        """Targeted write to one replica (scrub healing a lagging copy)."""
        self.buckets[name].put(key, value)

    def fail_bucket(self, name: str) -> None:
        """Failure injection: mark one bucket offline."""
        self.buckets[name].online = False

    def recover_bucket(self, name: str) -> None:
        """Bring a failed bucket back (its old content is intact)."""
        self.buckets[name].online = True

    def load_by_bucket(self) -> dict[str, int]:
        """Stored item count per bucket (balance diagnostics)."""
        return {name: len(bucket) for name, bucket in self.buckets.items()}
