"""Replicated key-value store over a hash ring.

This is the functional-layer DHT used by BlobSeer's metadata providers:
a set of named buckets (one per provider), a :class:`HashRing` deciding
key placement, and write/read paths that tolerate bucket failures up to
the replication level.  The simulated deployment re-uses the same ring
logic but puts each bucket behind an RPC server.

Two access granularities exist side by side:

* **scalar** ``put``/``get``/``delete`` — one key, one round trip per
  replica contacted;
* **batched** ``multi_get``/``multi_put``/``multi_replica_values`` —
  many keys resolved against their owner buckets in one pass: keys are
  grouped by bucket, each bucket is asked once per round, and the
  per-bucket requests of a round run in parallel when an engine is
  attached, so the whole round costs one wall-clock round trip.
  Failover semantics match the scalar ops key for key (paper §III-A.3:
  metadata must never serialize readers on a hop).

``stats`` counts wall-clock round trips (a batched round of parallel
bucket requests counts once) so callers can verify the O(tree-depth)
metadata cost of a batched descent.
"""

from __future__ import annotations

import asyncio
import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Iterator, Optional, Sequence

from repro.dht.ring import HashRing
from repro.errors import ProviderUnavailable, ReplicationError

__all__ = ["Bucket", "DhtStore", "DhtStats", "MultiPutResult", "MISSING"]


class _Missing:
    """Sentinel for "this replica does not hold the key" in enumerations."""

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return "<missing>"


#: Replica-enumeration sentinel: the bucket is online but lacks the key.
MISSING = _Missing()

#: Internal absent-value sentinel for conditional puts (values may be None).
_ABSENT = _Missing()


class DhtStats:
    """Wire-level counters (thread-safe).

    ``round_trips`` counts *wall-clock* waits on the DHT: every scalar
    bucket access is one, while one round of a batched operation — all
    its per-bucket requests run in parallel — also counts one, no
    matter how many keys or buckets it touched.  ``bucket_ops`` counts
    the individual bucket requests behind those waits.  The gap between
    the two is exactly what batching buys.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.round_trips = 0
        self.bucket_ops = 0
        self.keys_fetched = 0
        self.keys_stored = 0

    def record(
        self,
        round_trips: int = 0,
        bucket_ops: int = 0,
        keys_fetched: int = 0,
        keys_stored: int = 0,
    ) -> None:
        with self._lock:
            self.round_trips += round_trips
            self.bucket_ops += bucket_ops
            self.keys_fetched += keys_fetched
            self.keys_stored += keys_stored

    def snapshot(self) -> dict[str, int]:
        """Point-in-time copy of every counter."""
        with self._lock:
            return {
                "round_trips": self.round_trips,
                "bucket_ops": self.bucket_ops,
                "keys_fetched": self.keys_fetched,
                "keys_stored": self.keys_stored,
            }

    def reset(self) -> None:
        with self._lock:
            self.round_trips = 0
            self.bucket_ops = 0
            self.keys_fetched = 0
            self.keys_stored = 0


@dataclass(frozen=True)
class MultiPutResult:
    """Outcome of one :meth:`DhtStore.multi_put`.

    ``conflicts`` maps keys whose conditional put found a *different*
    stored value to that existing value (identical re-puts are silent —
    idempotent-retry semantics, enforced in the bucket's single hop).
    ``unstored`` lists keys that reached **no** live replica; the
    caller decides whether that is fatal (a write publish) or merely
    reportable (a best-effort tombstone filler).
    """

    conflicts: dict[Hashable, object]
    unstored: tuple[Hashable, ...]

    @property
    def clean(self) -> bool:
        return not self.conflicts and not self.unstored


class Bucket:
    """One provider's local slice of the DHT: a dict with an on/off switch.

    Args:
        name: bucket identity.
        latency: simulated seconds of service time charged once per
            request — scalar ops pay it per key, the ``*_many`` ops pay
            it once per batch, which is precisely the round-trip saving
            the batched pipeline exists to exploit.
    """

    def __init__(self, name: str, latency: float = 0.0):
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.name = name
        self.online = True
        self.latency = latency
        self._items: dict[Hashable, object] = {}
        # Set (thread-locally) while an async entry point runs its sync
        # twin, so the twin's blocking sleep does not fire a second time
        # (the coroutine already awaited it) — see DataProviderCore.
        self._defer_delay = threading.local()

    def _service_delay(self) -> None:
        if self.latency and not getattr(self._defer_delay, "active", False):
            time.sleep(self.latency)

    def _check_online(self) -> None:
        if not self.online:
            raise ProviderUnavailable(f"bucket {self.name} is down")

    def put(self, key: Hashable, value: object) -> None:
        """Store *value* (immutable overwrite-forbidden discipline is the
        caller's concern; the bucket itself is a plain map)."""
        self._check_online()
        self._service_delay()
        self._items[key] = value

    def get(self, key: Hashable) -> object:
        """Fetch the value for *key*; KeyError if absent."""
        self._check_online()
        self._service_delay()
        return self._items[key]

    def delete(self, key: Hashable) -> None:
        """Remove *key* if present (idempotent)."""
        self._check_online()
        self._service_delay()
        self._items.pop(key, None)

    # -- batched surface ----------------------------------------------------------

    def get_many(self, keys: Sequence[Hashable]) -> dict[Hashable, object]:
        """Fetch every present key in one request (one service delay).

        Absent keys are simply omitted — the caller's failover logic
        needs "which keys this replica lacks", not an exception per key.
        """
        self._check_online()
        self._service_delay()
        items = self._items
        return {key: items[key] for key in keys if key in items}

    def put_many(
        self,
        items: Sequence[tuple[Hashable, object]],
        conditional: bool = False,
    ) -> tuple[dict[Hashable, object], list[Hashable]]:
        """Store many pairs in one request (one service delay).

        With ``conditional=True`` each key is stored only if absent;
        a present-and-equal value is a silent no-op (idempotent retry)
        and a present-but-different value is left untouched and
        reported in the returned ``{key: existing}`` conflict map — the
        check-and-put happens in this single hop, not as a get-then-put
        double round trip.  Also returns the keys this call *newly*
        stored, so a caller whose conditional batch conflicted on a
        peer replica can withdraw the rejected value from the replicas
        that (being behind) accepted it.
        """
        self._check_online()
        self._service_delay()
        conflicts: dict[Hashable, object] = {}
        stored: list[Hashable] = []
        for key, value in items:
            if conditional:
                existing = self._items.get(key, _ABSENT)
                if existing is _ABSENT:
                    self._items[key] = value
                    stored.append(key)
                elif existing != value:
                    conflicts[key] = existing
            else:
                self._items[key] = value
                stored.append(key)
        return conflicts, stored

    async def aget_many(self, keys: Sequence[Hashable]) -> dict[Hashable, object]:
        """Coroutine twin of :meth:`get_many` for the async I/O engine:
        the batch's one service delay becomes ``asyncio.sleep``, then
        the sync method runs with its blocking sleep suppressed (one
        code path — monkeypatched ``get_many`` intercepts both)."""
        self._check_online()
        if self.latency:
            await asyncio.sleep(self.latency)
        self._defer_delay.active = True
        try:
            return self.get_many(keys)  # asynclint: allow delegation, delay deferred
        finally:
            self._defer_delay.active = False

    async def aput_many(
        self,
        items: Sequence[tuple[Hashable, object]],
        conditional: bool = False,
    ) -> tuple[dict[Hashable, object], list[Hashable]]:
        """Coroutine twin of :meth:`put_many` (same delegation contract
        as :meth:`aget_many`; the delegated section has no await, so the
        conditional check-and-put stays atomic on the event loop)."""
        self._check_online()
        if self.latency:
            await asyncio.sleep(self.latency)
        self._defer_delay.active = True
        try:
            return self.put_many(  # asynclint: allow delegation, delay deferred
                items, conditional=conditional
            )
        finally:
            self._defer_delay.active = False

    def peek_many(self, keys: Sequence[Hashable]) -> dict[Hashable, object]:
        """Batched :meth:`peek`: present keys only, no online gate."""
        items = self._items
        return {key: items[key] for key in keys if key in items}

    def __contains__(self, key: Hashable) -> bool:
        return self.online and key in self._items

    def __len__(self) -> int:
        return len(self._items)

    def keys(self) -> Iterator[Hashable]:
        """Iterate stored keys (GC sweeps use this)."""
        return iter(list(self._items.keys()))

    def peek(self, key: Hashable) -> object:
        """Fetch without the online gate (anti-entropy reads a bucket's
        durable content even around failure injection; a real recovered
        node would scan its local disk the same way)."""
        return self._items[key]

    def digest(self, keys: Optional[Iterable[Hashable]] = None) -> str:
        """Stable content digest over *keys* (default: every stored key).

        Two replicas holding identical values for the digested keys
        produce identical digests — the anti-entropy convergence check
        (DESIGN.md §8).  Keys absent from the bucket hash as missing
        rather than raising, so digests over a shared key set are
        comparable even while a replica is behind.
        """
        chosen = list(self._items.keys()) if keys is None else list(keys)
        h = hashlib.sha256()
        for key in sorted(chosen, key=repr):
            h.update(repr(key).encode())
            h.update(b"=")
            h.update(repr(self._items.get(key, MISSING)).encode())
            h.update(b";")
        return h.hexdigest()


class DhtStore:
    """Hash-ring-replicated store across named buckets.

    Args:
        bucket_names: provider names (20 metadata providers in the
            paper's microbenchmark deployment).
        replication: copies per key; reads fail over between them.
        latency: simulated per-request service time on every bucket
            (see :class:`Bucket`); makes batching observable in
            wall-clock benchmarks.
        engine: optional I/O engine (the store's
            :class:`~repro.blob.io_engine.ParallelIOEngine` or
            :class:`~repro.blob.async_engine.AsyncIOEngine`) used to fan
            one batched round's per-bucket requests out in parallel.
            ``None`` runs them inline (still one *logical* round trip;
            the accounting is identical).
    """

    def __init__(
        self,
        bucket_names: list[str],
        replication: int = 1,
        vnodes: int = 64,
        latency: float = 0.0,
        engine=None,
    ):
        if not bucket_names:
            raise ValueError("DhtStore needs at least one bucket")
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self.replication = replication
        self.buckets = {name: Bucket(name, latency=latency) for name in bucket_names}
        self.ring = HashRing(bucket_names, vnodes=vnodes)
        self.engine = engine
        self.stats = DhtStats()

    def owners(self, key: Hashable) -> list[str]:
        """Replica set (bucket names) responsible for *key*."""
        return self.ring.replicas(key, self.replication)

    def _settle(
        self,
        fn: Callable,
        groups: Sequence,
        afn: Optional[Callable] = None,
        dest: Optional[Callable] = None,
    ) -> list[tuple[object, Optional[Exception]]]:
        """Run one batched round's per-bucket requests, in parallel when
        an engine is attached, capturing per-bucket failures so one dead
        bucket can never abort the other buckets' work.  ``afn`` is the
        coroutine twin of *fn* and ``dest`` the per-group bucket key —
        forwarded to the engine so the async scheduler can interleave
        the bucket latencies and cap per-bucket concurrency; the thread
        engine ignores both."""
        if self.engine is not None and len(groups) > 1:
            return self.engine.map_settle(fn, groups, afn=afn, dest=dest)
        results = []
        for group in groups:
            try:
                results.append((fn(group), None))
            except Exception as exc:
                results.append((None, exc))
        return results

    # -- scalar ops ---------------------------------------------------------------

    def put(self, key: Hashable, value: object) -> None:
        """Write to every live replica; fails if none is reachable."""
        wrote = 0
        for name in self.owners(key):
            bucket = self.buckets[name]
            if bucket.online:
                bucket.put(key, value)
                wrote += 1
        self.stats.record(round_trips=max(wrote, 1), bucket_ops=wrote, keys_stored=1)
        if wrote == 0:
            raise ReplicationError(f"no live replica for key {key!r}")

    def get(self, key: Hashable) -> object:
        """Read from the first live replica holding the key."""
        missing = False
        tried = 0
        try:
            for name in self.owners(key):
                bucket = self.buckets[name]
                if not bucket.online:
                    continue
                tried += 1
                try:
                    return bucket.get(key)
                except KeyError:
                    missing = True
        finally:
            self.stats.record(
                round_trips=max(tried, 1), bucket_ops=tried, keys_fetched=1
            )
        if missing:
            raise KeyError(key)
        raise ProviderUnavailable(f"all replicas for {key!r} are down")

    def delete(self, key: Hashable) -> None:
        """Delete from all live replicas (used by the GC sweep)."""
        touched = 0
        for name in self.owners(key):
            bucket = self.buckets[name]
            if bucket.online:
                bucket.delete(key)
                touched += 1
        self.stats.record(round_trips=max(touched, 1), bucket_ops=touched)

    def contains(self, key: Hashable) -> bool:
        """Cheap existence probe: membership checks against the owner
        replicas, no value transfer and no failover ``get`` (the scalar
        read path fetches and discards a whole node to answer this)."""
        self.stats.record(round_trips=1, bucket_ops=1)
        return any(key in self.buckets[name] for name in self.owners(key))

    def __contains__(self, key: Hashable) -> bool:
        return self.contains(key)

    # -- batched ops --------------------------------------------------------------

    def multi_get(self, keys: Iterable[Hashable]) -> dict[Hashable, object]:
        """Resolve many keys against their owner buckets in one pass.

        Round *r* asks each unresolved key's *r*-th replica, grouping
        keys by bucket so every bucket is contacted at most once per
        round (requests of a round run in parallel — one wall-clock
        round trip).  Keys served by their first replica finish in
        round 0; only stragglers (offline or lagging replicas) pay
        failover rounds, exactly mirroring the scalar ``get`` chain.

        Raises ``KeyError`` for a key some online replica was asked
        about but none holds, ``ProviderUnavailable`` for a key whose
        every replica is down — the scalar semantics, key for key.
        """
        ordered = list(dict.fromkeys(keys))
        if not ordered:
            return {}
        results: dict[Hashable, object] = {}
        seen_missing: set[Hashable] = set()
        remaining = ordered
        # The ring hands out at most one replica per distinct bucket, so
        # every key's owner chain is exactly this long (the scalar path
        # iterates the chain directly and needs no such cap).
        rounds = min(self.replication, len(self.buckets))
        for attempt in range(rounds):
            if not remaining:
                break
            by_bucket: dict[str, list[Hashable]] = {}
            for key in remaining:
                by_bucket.setdefault(self.owners(key)[attempt], []).append(key)
            groups = list(by_bucket.items())
            self.stats.record(
                round_trips=1, bucket_ops=len(groups), keys_fetched=len(remaining)
            )

            def fetch(group):
                name, bucket_keys = group
                return self.buckets[name].get_many(bucket_keys)

            def afetch(group):
                name, bucket_keys = group
                return self.buckets[name].aget_many(bucket_keys)

            retry: list[Hashable] = []
            for (name, bucket_keys), (found, error) in zip(
                groups,
                self._settle(fetch, groups, afn=afetch, dest=lambda g: g[0]),
            ):
                if error is not None:
                    if isinstance(error, ProviderUnavailable):
                        retry.extend(bucket_keys)  # fail over to the next replica
                        continue
                    raise error
                for key in bucket_keys:
                    if key in found:
                        results[key] = found[key]
                    else:
                        seen_missing.add(key)
                        retry.append(key)
            remaining = retry
        if remaining:
            for key in remaining:
                if key in seen_missing:
                    raise KeyError(key)
            raise ProviderUnavailable(
                f"all replicas down for {len(remaining)} key(s), "
                f"e.g. {remaining[0]!r}"
            )
        return results

    def multi_put(
        self,
        items: Sequence[tuple[Hashable, object]],
        conditional: bool = False,
    ) -> MultiPutResult:
        """Write many pairs to their replica sets in one parallel pass.

        Every pair goes to every live owner replica; each bucket
        receives its whole share in a single request.  With
        ``conditional=True`` the bucket enforces write-once-or-identical
        in that same hop (see :meth:`Bucket.put_many`) — no get-then-put
        double round trip, and per-bucket atomicity for the batch.

        Never raises for unreachable keys: the :class:`MultiPutResult`
        reports conflicts and fully-unstored keys, and the caller
        applies its own policy (a write publish fails, a best-effort
        filler publish records and moves on).

        A key whose conditional put conflicts on *any* replica is
        withdrawn from the replicas this call newly stored it on: a
        rejected publish must leave the replica set exactly as it found
        it (the old get-then-put path rejected without writing; a
        lagging replica must not end up holding the rejected value).
        """
        pairs = list(items)
        if not pairs:
            return MultiPutResult(conflicts={}, unstored=())
        by_bucket: dict[str, list[tuple[Hashable, object]]] = {}
        for key, value in pairs:
            for name in self.owners(key):
                by_bucket.setdefault(name, []).append((key, value))
        groups = list(by_bucket.items())
        self.stats.record(
            round_trips=1, bucket_ops=len(groups), keys_stored=len(pairs)
        )

        def put(group):
            name, kvs = group
            return self.buckets[name].put_many(kvs, conditional=conditional)

        def aput(group):
            name, kvs = group
            return self.buckets[name].aput_many(kvs, conditional=conditional)

        touched: dict[Hashable, int] = {key: 0 for key, _ in pairs}
        conflicts: dict[Hashable, object] = {}
        stored_by_bucket: dict[str, list[Hashable]] = {}
        for (name, kvs), (outcome, error) in zip(
            groups, self._settle(put, groups, afn=aput, dest=lambda g: g[0])
        ):
            if error is not None:
                if isinstance(error, ProviderUnavailable):
                    continue  # this replica misses the batch; others may land
                raise error
            bucket_conflicts, stored = outcome
            stored_by_bucket[name] = stored
            for key, _ in kvs:
                touched[key] += 1
            for key, existing in bucket_conflicts.items():
                conflicts.setdefault(key, existing)
        if conflicts:
            self._withdraw(conflicts, stored_by_bucket)
        unstored = tuple(key for key, count in touched.items() if count == 0)
        return MultiPutResult(conflicts=conflicts, unstored=unstored)

    def _withdraw(
        self,
        conflicts: dict[Hashable, object],
        stored_by_bucket: dict[str, list[Hashable]],
    ) -> None:
        """Undo the fresh stores of conflicted keys (best effort: a
        bucket dying mid-withdrawal leaves debris for the scrub, which
        converges the replica set on the established value anyway)."""
        withdrew = 0
        for name, stored in stored_by_bucket.items():
            doomed = [key for key in stored if key in conflicts]
            if not doomed:
                continue
            withdrew += 1
            try:
                bucket = self.buckets[name]
                for key in doomed:
                    bucket.delete(key)
            except ProviderUnavailable:
                continue
        if withdrew:
            self.stats.record(round_trips=1, bucket_ops=withdrew)

    def multi_replica_values(
        self, keys: Iterable[Hashable]
    ) -> dict[Hashable, dict[str, object]]:
        """Batched :meth:`replica_values`: one pass over the owner
        buckets answers every key (the scrub's reconciliation phases
        previously paid one enumeration per key)."""
        ordered = list(dict.fromkeys(keys))
        if not ordered:
            return {}
        by_bucket: dict[str, list[Hashable]] = {}
        online_owners: dict[Hashable, list[str]] = {}
        for key in ordered:
            online = [n for n in self.owners(key) if self.buckets[n].online]
            online_owners[key] = online
            for name in online:
                by_bucket.setdefault(name, []).append(key)
        groups = list(by_bucket.items())
        if groups:
            self.stats.record(
                round_trips=1, bucket_ops=len(groups), keys_fetched=len(ordered)
            )

        def peek(group):
            name, bucket_keys = group
            return self.buckets[name].peek_many(bucket_keys)

        held: dict[str, dict[Hashable, object]] = {}
        for (name, _), (found, error) in zip(groups, self._settle(peek, groups)):
            held[name] = {} if error is not None else found
        return {
            key: {
                name: held.get(name, {}).get(key, MISSING)
                for name in online_owners[key]
            }
            for key in ordered
        }

    # -- anti-entropy surface (DESIGN.md §8) -----------------------------------

    def online_buckets(self) -> Iterator[Bucket]:
        """Live buckets only — the shared offline-bucket skip-list used
        by every maintenance sweep (GC's metadata sweep, the scrub
        pass).  Offline buckets keep their content and are picked up by
        the first sweep after recovery."""
        for bucket in self.buckets.values():
            if bucket.online:
                yield bucket

    def all_keys(self) -> set[Hashable]:
        """Union of keys across every *online* bucket (scrub enumeration)."""
        keys: set[Hashable] = set()
        for bucket in self.online_buckets():
            keys.update(bucket.keys())
        return keys

    def replica_values(self, key: Hashable) -> dict[str, object]:
        """What each *online* owner replica holds for *key*.

        Maps bucket name to the stored value, or :data:`MISSING` when
        the replica is online but lacks the key.  Offline owners are
        omitted: their content cannot be compared until they recover.
        """
        values: dict[str, object] = {}
        for name in self.owners(key):
            bucket = self.buckets[name]
            if not bucket.online:
                continue
            try:
                values[name] = bucket.peek(key)
            except KeyError:
                values[name] = MISSING
        return values

    def put_replica(self, name: str, key: Hashable, value: object) -> None:
        """Targeted write to one replica (scrub healing a lagging copy)."""
        self.buckets[name].put(key, value)

    def fail_bucket(self, name: str) -> None:
        """Failure injection: mark one bucket offline."""
        self.buckets[name].online = False

    def recover_bucket(self, name: str) -> None:
        """Bring a failed bucket back (its old content is intact)."""
        self.buckets[name].online = True

    def load_by_bucket(self) -> dict[str, int]:
        """Stored item count per bucket (balance diagnostics)."""
        return {name: len(bucket) for name, bucket in self.buckets.items()}
