"""One tenant's authenticated session with the gateway.

:class:`GatewayClient` mirrors the :class:`~repro.fsapi.FileSystem`
surface — ``create``/``open``/``append``/``read``/``stat``/``list`` —
but every call goes through admission first and every path is tenant-
relative: the client says ``/data/log``, the store sees
``/tenants/<tenant_id>/data/log``, and everything reported back (stat,
listings) is translated into the tenant's view again, so a tenant can
never learn — let alone touch — another tenant's paths.

Write quota is settled per ``write()`` call with a reserve → commit
(or release, on failure) cycle against the provider manager, so the
over-quota byte is refused before the store ever sees it, and a failed
write never leaves the tenant charged.
"""

from __future__ import annotations

from typing import Optional

from repro.fsapi import FileStatus, ReadStream, WriteStream
from repro.gateway.tenants import TenantState

__all__ = ["GatewayClient", "GatewayWriteStream", "GatewayReadStream"]


class GatewayWriteStream(WriteStream):
    """Admission-charging wrapper around a store write stream.

    Each ``write()`` first pays the tenant's bandwidth bucket, then
    reserves the bytes against its quota — :class:`~repro.errors.
    QuotaExceeded` surfaces here, before the inner stream buffers or
    places anything — and commits the reservation once the inner write
    accepted the data.
    """

    def __init__(self, gateway, state: TenantState, inner: WriteStream):
        self._gw = gateway
        self._state = state
        self._inner = inner
        self._written = 0
        self._closed = False

    def write(self, data: bytes) -> None:
        nbytes = len(data)
        self._gw.charge_bytes(self._state, "append", nbytes)
        manager = self._gw.store.provider_manager
        manager.tenant_reserve(self._state.tenant_id, nbytes)
        try:
            self._inner.write(data)
        except BaseException:
            manager.tenant_release(self._state.tenant_id, nbytes)
            raise
        manager.tenant_commit(self._state.tenant_id, nbytes)
        self._state.count_bytes(written=nbytes)
        self._written += nbytes

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._inner.close()
        finally:
            self._gw.finish(self._state, self._written)

    @property
    def size(self) -> int:
        """Bytes written so far (committed + buffered)."""
        return self._inner.size


class GatewayReadStream(ReadStream):
    """Admission-charging wrapper around a store read stream."""

    def __init__(self, gateway, state: TenantState, inner: ReadStream):
        self._gw = gateway
        self._state = state
        self._inner = inner
        self._moved = 0
        self._closed = False

    def read(self, size: int = -1) -> bytes:
        remaining = self._inner.size - self._inner.tell
        want = remaining if size < 0 else max(0, min(size, remaining))
        self._gw.charge_bytes(self._state, "read", want)
        data = self._inner.read(size)
        self._state.count_bytes(read=len(data))
        self._moved += len(data)
        return data

    def pread(self, offset: int, size: int) -> bytes:
        want = max(0, min(size, self._inner.size - offset))
        self._gw.charge_bytes(self._state, "read", want)
        data = self._inner.pread(offset, size)
        self._state.count_bytes(read=len(data))
        self._moved += len(data)
        return data

    def seek(self, offset: int) -> None:
        self._inner.seek(offset)

    @property
    def tell(self) -> int:
        """Current cursor position."""
        return self._inner.tell

    @property
    def size(self) -> int:
        return self._inner.size

    @property
    def version(self) -> int:
        """The pinned snapshot version (BSFS extra)."""
        return self._inner.version

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._inner.close()
        finally:
            self._gw.finish(self._state, self._moved)


class GatewayClient:
    """A tenant's session.  Obtained from :meth:`Gateway.connect`."""

    def __init__(self, gateway, state: TenantState):
        self._gw = gateway
        self._state = state

    @property
    def tenant_id(self) -> str:
        """The authenticated tenant this session acts as."""
        return self._state.tenant_id

    # -- streams ---------------------------------------------------------------

    def create(self, path: str) -> GatewayWriteStream:
        """Create a file for writing (one append-class admission)."""
        return self._open_write(path, resume=False)

    def append(self, path: str) -> GatewayWriteStream:
        """Open a file for appending (one append-class admission)."""
        return self._open_write(path, resume=True)

    def _open_write(self, path: str, resume: bool) -> GatewayWriteStream:
        self._gw.admit(self._state, "append")
        tpath = self._gw.tenant_path(self.tenant_id, path)
        try:
            inner = (
                self._gw.fs.append(tpath) if resume else self._gw.fs.create(tpath)
            )
        except BaseException:
            self._gw.finish(self._state)
            raise
        return GatewayWriteStream(self._gw, self._state, inner)

    def open(self, path: str, version: Optional[int] = None) -> GatewayReadStream:
        """Open for reading (one read-class admission); *version* pins
        an old snapshot, like BSFS."""
        self._gw.admit(self._state, "read")
        tpath = self._gw.tenant_path(self.tenant_id, path)
        try:
            inner = self._gw.fs.open(tpath, version=version)
        except BaseException:
            self._gw.finish(self._state)
            raise
        return GatewayReadStream(self._gw, self._state, inner)

    # -- one-shot I/O ----------------------------------------------------------

    def read(
        self,
        path: str,
        offset: int = 0,
        size: Optional[int] = None,
        version: Optional[int] = None,
    ) -> bytes:
        """Read a range (default: the whole file) in one call."""
        with self.open(path, version=version) as stream:
            if size is None:
                size = max(0, stream.size - offset)
            return stream.pread(offset, size)

    def read_file(self, path: str) -> bytes:
        """Slurp a whole file."""
        return self.read(path)

    def write_file(self, path: str, data: bytes) -> None:
        """Create *path* holding exactly *data*."""
        with self.create(path) as stream:
            if data:
                stream.write(data)

    # -- namespace (read-class admissions) -------------------------------------

    def stat(self, path: str) -> FileStatus:
        """Status, reported in the tenant's own path space."""
        status = self._namespace_op(path, self._gw.fs.status)
        return FileStatus(
            path=self._gw.visible_path(self.tenant_id, status.path),
            is_dir=status.is_dir,
            size=status.size,
        )

    def list(self, path: str = "/") -> list[str]:
        """Immediate children, reported in the tenant's own path space."""
        children = self._namespace_op(path, self._gw.fs.list_dir)
        return [self._gw.visible_path(self.tenant_id, child) for child in children]

    def exists(self, path: str) -> bool:
        """Existence check (inside the tenant's namespace only)."""
        return self._namespace_op(path, self._gw.fs.exists)

    def make_dirs(self, path: str) -> None:
        """``mkdir -p`` inside the tenant's namespace."""
        self._namespace_op(path, self._gw.fs.make_dirs)

    def delete(self, path: str, recursive: bool = False) -> None:
        """Unlink; the removed file bytes are credited back to the quota."""
        self._gw.admit(self._state, "read")
        tpath = self._gw.tenant_path(self.tenant_id, path)
        if tpath == self._gw.root_of(self.tenant_id):
            self._gw.finish(self._state)
            raise ValueError("refusing to delete the tenant root")
        try:
            freed = self._du(tpath)
            self._gw.fs.delete(tpath, recursive=recursive)
        finally:
            self._gw.finish(self._state)
        self._gw.store.provider_manager.tenant_discard(self.tenant_id, freed)

    def _du(self, tpath: str) -> int:
        status = self._gw.fs.status(tpath)
        if status.is_file:
            return status.size
        return sum(self._du(child) for child in self._gw.fs.list_dir(tpath))

    def _namespace_op(self, path: str, fs_call):
        self._gw.admit(self._state, "read")
        try:
            return fs_call(self._gw.tenant_path(self.tenant_id, path))
        finally:
            self._gw.finish(self._state)

    # -- maintenance -----------------------------------------------------------

    def scrub(self):
        """Run one anti-entropy pass, paced by the tenant's scrub rate.

        One scrub-class admission; the pass itself is throttled to the
        policy's ``scrub_ops_per_sec`` so a tenant's maintenance cannot
        monopolize the store (DESIGN.md §8).
        """
        self._gw.admit(self._state, "scrub")
        try:
            return self._gw.store.scrub(
                ops_per_sec=self._state.policy.scrub_ops_per_sec
            )
        finally:
            self._gw.finish(self._state)

    # -- reporting -------------------------------------------------------------

    def stats(self) -> dict:
        """This tenant's merged fairness/quota counters."""
        return self._gw.tenant_stats()[self.tenant_id]
