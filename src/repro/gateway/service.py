"""The multi-tenant front door over a blob store (DESIGN.md §12).

BlobSeer's deployment story (paper §III) is a *service*: many client
applications share one storage fabric.  :class:`Gateway` is that front
door.  It owns (or wraps) one :class:`~repro.bsfs.filesystem.
BSFSFileSystem` and multiplexes authenticated tenants onto it:

* **authentication** — ``register_tenant`` mints an access token;
  ``connect`` verifies it and hands back a
  :class:`~repro.gateway.client.GatewayClient` session;
* **namespace isolation** — every tenant path is mapped under
  ``/tenants/<tenant_id>``; ``normalize_path`` refuses ``..``, so no
  tenant-supplied path can escape its prefix;
* **admission control** — per-tenant, per-op-class token buckets plus
  an in-flight cap, applied *before* any store work happens.  A tenant
  past its rate waits (bounded by its policy's ``queue_timeout``);
  past its in-flight cap it is refused immediately;
* **quota accounting** — stored-bytes quotas live with the placement
  authority (:class:`~repro.blob.provider_manager.ProviderManagerCore`),
  so over-quota writes raise :class:`~repro.errors.QuotaExceeded`
  before they consume placements.

The gateway is deliberately thin: all data-plane heavy lifting stays in
the store, and every admission decision is O(1) bucket arithmetic.
"""

from __future__ import annotations

import hmac
import secrets
import threading
from typing import Optional

from repro.blob.config import StoreConfig
from repro.blob.store import LocalBlobStore
from repro.bsfs.filesystem import BSFSFileSystem
from repro.errors import AdmissionRejected, TenantAuthError, UnknownTenant
from repro.fsapi import normalize_path
from repro.gateway.client import GatewayClient
from repro.gateway.tenants import TenantPolicy, TenantState, validate_tenant_id

__all__ = ["Gateway"]


class Gateway:
    """Authenticated, rate-limited, quota-enforced access to one store.

    Args:
        fs: an existing :class:`BSFSFileSystem` to front (the gateway
            does not close it).  Mutually exclusive with *config*.
        config: a :class:`~repro.blob.config.StoreConfig` to build a
            private store/file system from (closed by :meth:`close`).
        default_policy: policy applied when ``register_tenant`` is
            called without one (default: unlimited everything).
        tenant_root: namespace directory sharding the tenants.
    """

    def __init__(
        self,
        fs: Optional[BSFSFileSystem] = None,
        config: Optional[StoreConfig] = None,
        *,
        default_policy: Optional[TenantPolicy] = None,
        tenant_root: str = "/tenants",
    ):
        if fs is not None and config is not None:
            raise TypeError("pass either an existing fs or a config, not both")
        self._owns_store = fs is None
        if fs is None:
            fs = BSFSFileSystem(store=LocalBlobStore(config=config))
        self.fs = fs
        self.store = fs.store
        self.default_policy = (default_policy or TenantPolicy()).validate()
        self.tenant_root = normalize_path(tenant_root)
        if self.tenant_root == "/":
            raise ValueError("tenant_root must not be the namespace root")
        self._tenants: dict[str, TenantState] = {}
        self._lock = threading.Lock()
        self.fs.make_dirs(self.tenant_root)

    # -- tenant lifecycle ------------------------------------------------------

    def register_tenant(
        self, tenant_id: str, policy: Optional[TenantPolicy] = None
    ) -> str:
        """Create a tenant; returns its access token.

        Registers the quota account with the provider manager, carves
        out the tenant's namespace directory, and builds its admission
        buckets from *policy* (default: the gateway's default policy).
        """
        validate_tenant_id(tenant_id)
        policy = self.default_policy if policy is None else policy.validate()
        token = secrets.token_hex(16)
        with self._lock:
            if tenant_id in self._tenants:
                raise ValueError(f"tenant {tenant_id!r} is already registered")
            self._tenants[tenant_id] = TenantState(tenant_id, token, policy)
        self.store.provider_manager.register_tenant(
            tenant_id, quota_bytes=policy.quota_bytes
        )
        self.fs.make_dirs(self.root_of(tenant_id))
        return token

    def set_policy(self, tenant_id: str, policy: TenantPolicy) -> None:
        """Replace a tenant's policy (buckets restart full; counters kept)."""
        policy.validate()
        with self._lock:
            old = self._tenants.get(tenant_id)
            if old is None:
                raise UnknownTenant(tenant_id)
            fresh = TenantState(tenant_id, old.token, policy)
            fresh.ops = old.ops
            fresh.bytes_in = old.bytes_in
            fresh.bytes_out = old.bytes_out
            fresh.admission_rejections = old.admission_rejections
            self._tenants[tenant_id] = fresh
        self.store.provider_manager.register_tenant(
            tenant_id, quota_bytes=policy.quota_bytes
        )

    def connect(self, tenant_id: str, token: str) -> GatewayClient:
        """Authenticate and open a tenant session."""
        state = self._state(tenant_id)
        if not hmac.compare_digest(state.token, str(token)):
            raise TenantAuthError(f"bad token for tenant {tenant_id!r}")
        return GatewayClient(self, state)

    def policy_of(self, tenant_id: str) -> TenantPolicy:
        """The policy currently governing *tenant_id*."""
        return self._state(tenant_id).policy

    def tenants(self) -> list[str]:
        """Registered tenant ids, sorted."""
        with self._lock:
            return sorted(self._tenants)

    def _state(self, tenant_id: str) -> TenantState:
        with self._lock:
            try:
                return self._tenants[tenant_id]
            except KeyError:
                raise UnknownTenant(tenant_id) from None

    # -- namespace mapping -----------------------------------------------------

    def root_of(self, tenant_id: str) -> str:
        """The tenant's private namespace root."""
        return f"{self.tenant_root}/{tenant_id}"

    def tenant_path(self, tenant_id: str, path: str) -> str:
        """Map a tenant-visible path into the shared namespace.

        ``normalize_path`` rejects ``.`` / ``..`` components, so the
        result is always underneath the tenant's root — there is no
        input that reaches another tenant's prefix.
        """
        visible = normalize_path(path)
        root = self.root_of(tenant_id)
        return root if visible == "/" else root + visible

    def visible_path(self, tenant_id: str, store_path: str) -> str:
        """Map a shared-namespace path back to the tenant's view."""
        root = self.root_of(tenant_id)
        if store_path == root:
            return "/"
        if not store_path.startswith(root + "/"):
            raise ValueError(
                f"path {store_path!r} is outside tenant {tenant_id!r}'s namespace"
            )
        return store_path[len(root):]

    # -- admission -------------------------------------------------------------

    def admit(self, state: TenantState, op: str) -> None:
        """Admit one *op*-class operation for *state*'s tenant.

        In-flight cap first (refusal is immediate — a saturated tenant
        should shed load, not build queues), then the op-class token
        bucket (waits up to the policy's ``queue_timeout``, then
        refuses).  On success the operation is counted in service until
        :meth:`finish` is called.
        """
        policy = state.policy
        if policy.max_in_flight is not None:
            usage = self.store.provider_manager.tenant_usage(state.tenant_id)
            if usage["in_flight"] >= policy.max_in_flight:
                state.count_rejection()
                raise AdmissionRejected(
                    state.tenant_id,
                    op,
                    f"in-flight cap of {policy.max_in_flight} reached",
                )
        bucket = state.op_bucket(op)
        if bucket is not None and not bucket.acquire(
            1.0, timeout=policy.queue_timeout
        ):
            state.count_rejection()
            raise AdmissionRejected(
                state.tenant_id,
                op,
                f"{op}-rate backlog exceeds queue_timeout={policy.queue_timeout}s",
            )
        self.store.provider_manager.tenant_begin_op(state.tenant_id)
        state.count_op(op)

    def charge_bytes(self, state: TenantState, op: str, nbytes: int) -> None:
        """Charge *nbytes* against the tenant's data-plane bandwidth bucket."""
        bucket = state.bytes_bucket
        if bucket is None or nbytes <= 0:
            return
        if not bucket.acquire(float(nbytes), timeout=state.policy.queue_timeout):
            state.count_rejection()
            raise AdmissionRejected(
                state.tenant_id,
                op,
                f"bandwidth backlog exceeds queue_timeout={state.policy.queue_timeout}s",
            )

    def finish(self, state: TenantState, nbytes: int = 0) -> None:
        """Mark an admitted operation as done (*nbytes* moved end-to-end)."""
        self.store.provider_manager.tenant_end_op(state.tenant_id, nbytes)

    # -- reporting -------------------------------------------------------------

    def tenant_stats(self) -> dict[str, dict]:
        """Per-tenant fairness report: gateway counters merged with the
        provider manager's quota accounting."""
        with self._lock:
            states = dict(self._tenants)
        usages = self.store.provider_manager.tenant_usages()
        out: dict[str, dict] = {}
        for tenant_id in sorted(states):
            merged = states[tenant_id].stats()
            merged.update(usages.get(tenant_id, {}))
            out[tenant_id] = merged
        return out

    def close(self) -> None:
        """Release the store if this gateway built it (idempotent)."""
        if self._owns_store:
            self.store.close()

    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
