"""Multi-tenant gateway: the service front door over a blob store.

See DESIGN.md §12.  :class:`Gateway` owns the shared store and the
tenant registry; :class:`GatewayClient` is one tenant's authenticated,
rate-limited, quota-enforced session; :class:`TenantPolicy` declares
what a tenant may do.
"""

from repro.gateway.client import GatewayClient, GatewayReadStream, GatewayWriteStream
from repro.gateway.service import Gateway
from repro.gateway.tenants import OP_CLASSES, TenantPolicy, TenantState

__all__ = [
    "Gateway",
    "GatewayClient",
    "GatewayReadStream",
    "GatewayWriteStream",
    "TenantPolicy",
    "TenantState",
    "OP_CLASSES",
]
