"""Tenant policies and per-tenant admission state (DESIGN.md §12).

A :class:`TenantPolicy` is the declarative half — what a tenant is
allowed to do: how many bytes it may keep stored, how fast it may push
ops and bytes per op class, how many operations it may have in flight,
and how long it is willing to queue before being refused.

:class:`TenantState` is the runtime half the gateway keeps per
registered tenant: the access token, one :class:`~repro.util.throttle.
TokenBucket` per rated op class plus a shared data-plane bytes bucket,
and the fairness counters (ops served, bytes moved, seconds spent
throttled, admissions refused) the load reports are built from.
Everything byte-quota related lives in
:class:`~repro.blob.provider_manager.TenantAccount` instead — the
provider manager is the placement authority, so it is the one that
refuses over-quota writes before they consume placements.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass
from typing import Optional

from repro.util.throttle import TokenBucket

__all__ = ["TenantPolicy", "TenantState", "OP_CLASSES"]

#: The gateway's admission op classes.  Namespace lookups (stat, list,
#: exists, delete) ride the ``read`` bucket: they are cheap
#: control-plane reads and a separate bucket would over-fit.
OP_CLASSES = ("read", "append", "scrub")

_TENANT_ID = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}")


def validate_tenant_id(tenant_id: str) -> str:
    """Reject ids that could escape the per-tenant namespace prefix."""
    if not isinstance(tenant_id, str) or not _TENANT_ID.fullmatch(tenant_id):
        raise ValueError(
            f"tenant id must match {_TENANT_ID.pattern!r}, got {tenant_id!r}"
        )
    return tenant_id


@dataclass(frozen=True)
class TenantPolicy:
    """Quotas and limits for one tenant.  ``None`` always means unlimited.

    Args:
        quota_bytes: hard cap on logical bytes stored (appended minus
            deleted).  Enforced by the provider manager *before* any
            placement is allocated; exceeding it raises
            :class:`~repro.errors.QuotaExceeded`.
        append_ops_per_sec: token-bucket rate for opening append-class
            operations (create/append streams, one token each).
        read_ops_per_sec: token-bucket rate for read-class operations
            (open/read/stat/list/exists/delete, one token each).
        scrub_ops_per_sec: token-bucket rate for tenant-triggered scrub
            passes — also the pace handed to the scrub itself, so one
            tenant's maintenance cannot starve foreground I/O.
        bytes_per_sec: shared data-plane bandwidth bucket: every byte
            written or read through the gateway costs one token.
        max_in_flight: cap on a tenant's concurrently admitted
            operations; the op past the cap is refused immediately
            with :class:`~repro.errors.AdmissionRejected`, not queued.
        burst_seconds: bucket capacity, expressed as seconds of rate —
            an idle tenant banks up to ``rate * burst_seconds`` tokens.
        queue_timeout: longest a single admission may wait on a bucket
            before being refused with ``AdmissionRejected`` instead
            (``None`` = wait as long as it takes).
    """

    quota_bytes: Optional[int] = None
    append_ops_per_sec: Optional[float] = None
    read_ops_per_sec: Optional[float] = None
    scrub_ops_per_sec: Optional[float] = None
    bytes_per_sec: Optional[float] = None
    max_in_flight: Optional[int] = None
    burst_seconds: float = 1.0
    queue_timeout: Optional[float] = None

    def validate(self) -> "TenantPolicy":
        """Raise ``ValueError`` on nonsensical limits."""
        if self.quota_bytes is not None and self.quota_bytes < 0:
            raise ValueError(f"quota_bytes must be >= 0, got {self.quota_bytes}")
        for name in (
            "append_ops_per_sec",
            "read_ops_per_sec",
            "scrub_ops_per_sec",
            "bytes_per_sec",
        ):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be > 0 (or None), got {value}")
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1 (or None), got {self.max_in_flight}"
            )
        if self.burst_seconds <= 0:
            raise ValueError(f"burst_seconds must be > 0, got {self.burst_seconds}")
        if self.queue_timeout is not None and self.queue_timeout < 0:
            raise ValueError(
                f"queue_timeout must be >= 0 (or None), got {self.queue_timeout}"
            )
        return self


class TenantState:
    """Runtime admission state the gateway keeps for one tenant."""

    def __init__(self, tenant_id: str, token: str, policy: TenantPolicy):
        self.tenant_id = tenant_id
        self.token = token
        self.policy = policy
        self._lock = threading.Lock()
        self.ops = {op: 0 for op in OP_CLASSES}
        self.bytes_in = 0
        self.bytes_out = 0
        self.admission_rejections = 0
        self._op_buckets: dict[str, Optional[TokenBucket]] = {
            "append": self._bucket(policy.append_ops_per_sec),
            "read": self._bucket(policy.read_ops_per_sec),
            "scrub": self._bucket(policy.scrub_ops_per_sec),
        }
        self.bytes_bucket = self._bucket(policy.bytes_per_sec)

    def _bucket(self, rate: Optional[float]) -> Optional[TokenBucket]:
        if rate is None:
            return None
        return TokenBucket(rate, burst=rate * self.policy.burst_seconds)

    def op_bucket(self, op: str) -> Optional[TokenBucket]:
        """The tenant's bucket for *op* (``None`` = unrated)."""
        return self._op_buckets[op]

    def count_op(self, op: str) -> None:
        with self._lock:
            self.ops[op] += 1

    def count_bytes(self, written: int = 0, read: int = 0) -> None:
        with self._lock:
            self.bytes_in += written
            self.bytes_out += read

    def count_rejection(self) -> None:
        with self._lock:
            self.admission_rejections += 1

    def throttle_wait(self) -> float:
        """Total seconds this tenant's callers spent parked in buckets."""
        buckets = [b for b in self._op_buckets.values() if b is not None]
        if self.bytes_bucket is not None:
            buckets.append(self.bytes_bucket)
        return sum(b.waited for b in buckets)

    def stats(self) -> dict:
        """Gateway-side fairness counters (merged with the provider
        manager's quota accounting by ``Gateway.tenant_stats``)."""
        with self._lock:
            out = {
                "ops": dict(self.ops),
                "bytes_in": self.bytes_in,
                "bytes_out": self.bytes_out,
                "admission_rejections": self.admission_rejections,
            }
        out["throttle_wait_s"] = round(self.throttle_wait(), 6)
        return out
