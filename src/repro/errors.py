"""Exception hierarchy shared by every subsystem of the reproduction.

The tree mirrors the subsystem boundaries: generic :class:`ReproError` at
the root, one branch per service (blob store, file systems, MapReduce,
simulation).  Catching ``ReproError`` is always safe for "anything this
library raised on purpose".
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "BlobError",
    "BlobNotFound",
    "VersionNotFound",
    "VersionNotReady",
    "InvalidRange",
    "WriteConflict",
    "PublishHookError",
    "ProviderError",
    "ProviderUnavailable",
    "ReplicationError",
    "GatewayError",
    "UnknownTenant",
    "TenantAuthError",
    "QuotaExceeded",
    "AdmissionRejected",
    "FileSystemError",
    "FileNotFound",
    "FileAlreadyExists",
    "NotADirectory",
    "IsADirectory",
    "DirectoryNotEmpty",
    "LeaseConflict",
    "AppendNotSupported",
    "ReadOnlyFile",
    "MapReduceError",
    "JobFailed",
    "TaskFailed",
    "SimulationError",
    "Interrupt",
]


class ReproError(Exception):
    """Base class of every exception deliberately raised by this library."""


# --------------------------------------------------------------------------
# BlobSeer core
# --------------------------------------------------------------------------


class BlobError(ReproError):
    """Base class for errors raised by the BlobSeer data service."""


class BlobNotFound(BlobError, KeyError):
    """The requested BLOB id does not exist."""


class VersionNotFound(BlobError, KeyError):
    """The requested snapshot version does not exist (or was garbage-collected)."""


class VersionNotReady(BlobError):
    """The snapshot exists but has not been revealed to readers yet.

    Raised when a client explicitly asks for a version whose metadata (or
    a lower version's metadata) is still being woven; see paper §III-A.5
    on linearizability: snapshots are published strictly in version order.
    """


class InvalidRange(BlobError, ValueError):
    """Offset/size pair outside the addressable range of the snapshot."""


class WriteConflict(BlobError):
    """A write could not be serialized (should not happen by design).

    BlobSeer's claim is write/write concurrency *by design*; this error
    only surfaces when invariants are violated, e.g. a test harness
    injects a duplicate version number.
    """


class PublishHookError(BlobError):
    """One or more publication hooks raised after a watermark advance.

    The snapshot *is* published — the watermark moved before any hook
    ran, and every registered hook was invoked regardless of earlier
    hook failures, so all observers saw the same event.  The individual
    exceptions are collected in :attr:`errors`.
    """

    def __init__(self, blob_id: str, watermark: int, errors: list[BaseException]):
        super().__init__(
            f"{len(errors)} publish hook(s) failed for blob {blob_id!r} "
            f"at watermark {watermark}: {[repr(e) for e in errors]}"
        )
        self.blob_id = blob_id
        self.watermark = watermark
        #: The exceptions raised by the individual hooks, in hook order.
        self.errors = errors


class ProviderError(BlobError):
    """A data or metadata provider failed to service a request."""


class ProviderUnavailable(ProviderError):
    """The provider is offline (failure injection or decommissioned)."""


class ReplicationError(BlobError):
    """Not enough live providers to satisfy the requested replication level."""


# --------------------------------------------------------------------------
# Multi-tenant gateway (the service front door, DESIGN.md §12)
# --------------------------------------------------------------------------


class GatewayError(ReproError):
    """Base class for errors raised by the multi-tenant gateway."""


class UnknownTenant(GatewayError, KeyError):
    """The tenant id has never been registered with this gateway."""


class TenantAuthError(GatewayError):
    """The presented access token does not match the tenant's."""


class QuotaExceeded(GatewayError):
    """A write would push the tenant past its stored-bytes quota.

    Raised *before* any placement is allocated — an over-quota write
    never charges the load balancer, stores a block, or consumes a
    version ticket.  Carries the accounting that made the decision so
    clients can size a retry.
    """

    def __init__(self, tenant_id: str, requested: int, used: int, quota: int):
        super().__init__(
            f"tenant {tenant_id!r} over quota: {used} + {requested} "
            f"requested > {quota} bytes allowed"
        )
        self.tenant_id = tenant_id
        self.requested = requested
        self.used = used
        self.quota = quota


class AdmissionRejected(GatewayError):
    """Admission control refused the operation without queueing it.

    Raised when a tenant is past its in-flight cap, or when draining
    its token-bucket backlog would exceed the policy's queue timeout.
    The operation had no effect; retry after backing off.
    """

    def __init__(self, tenant_id: str, op: str, reason: str):
        super().__init__(f"tenant {tenant_id!r} {op} rejected: {reason}")
        self.tenant_id = tenant_id
        self.op = op
        self.reason = reason


# --------------------------------------------------------------------------
# File-system layers (BSFS and the HDFS baseline)
# --------------------------------------------------------------------------


class FileSystemError(ReproError):
    """Base class for namespace/file-system errors."""


class FileNotFound(FileSystemError, KeyError):
    """Path does not exist."""


class FileAlreadyExists(FileSystemError):
    """Create refused because the path already exists."""


class NotADirectory(FileSystemError):
    """A path component used as a directory is a regular file."""


class IsADirectory(FileSystemError):
    """File operation attempted on a directory."""


class DirectoryNotEmpty(FileSystemError):
    """Non-recursive delete of a non-empty directory."""


class LeaseConflict(FileSystemError):
    """HDFS single-writer rule violated: the file is already open for write."""


class AppendNotSupported(FileSystemError):
    """The file system does not implement append (HDFS baseline, §V-F)."""


class ReadOnlyFile(FileSystemError):
    """HDFS write-once rule violated: closed files are immutable."""


# --------------------------------------------------------------------------
# MapReduce engine
# --------------------------------------------------------------------------


class MapReduceError(ReproError):
    """Base class for MapReduce engine errors."""


class JobFailed(MapReduceError):
    """The job exhausted task retries and was aborted."""


class TaskFailed(MapReduceError):
    """A single map/reduce attempt raised; may be retried by the jobtracker."""


# --------------------------------------------------------------------------
# Discrete-event simulation
# --------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for errors in the discrete-event engine."""


class Interrupt(SimulationError):
    """Thrown into a simulated process that another process interrupted."""

    def __init__(self, cause: object = None):
        super().__init__(cause)
        #: Arbitrary value passed by the interrupting process.
        self.cause = cause
