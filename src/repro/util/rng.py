"""Deterministic randomness plumbing.

Every stochastic component (HDFS random placement, synthetic text
generation, failure injection, workload think times) draws from a
:class:`SeedSequence`-derived generator so that a top-level experiment
seed reproduces the entire run bit-for-bit — a prerequisite for
regression-testing simulated results.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SeedFactory", "derive_rng"]


class SeedFactory:
    """Hands out independent, reproducible child generators.

    A factory is created from one root seed; each :meth:`spawn` call
    returns a fresh ``numpy.random.Generator`` whose stream is
    independent of every other child (via ``SeedSequence.spawn``) yet
    fully determined by ``(root_seed, spawn order)``.

    Components that want stable streams regardless of creation order can
    use :meth:`named`, which derives the child from a string key instead
    of from the spawn counter.
    """

    def __init__(self, seed: int | None = 0):
        self._root = np.random.SeedSequence(seed)
        #: Root seed (``None`` means OS entropy; avoid in experiments).
        self.seed = seed

    def spawn(self) -> np.random.Generator:
        """Next order-dependent child generator."""
        (child,) = self._root.spawn(1)
        return np.random.default_rng(child)

    def named(self, name: str) -> np.random.Generator:
        """Child generator keyed by *name*, independent of spawn order."""
        digest = np.frombuffer(
            name.encode("utf-8").ljust(8, b"\0")[:8], dtype=np.uint64
        )[0]
        child = np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=(int(digest),)
        )
        return np.random.default_rng(child)


def derive_rng(seed: int | None, *key: int) -> np.random.Generator:
    """One-shot helper: generator for ``(seed, *key)`` without a factory."""
    seq = np.random.SeedSequence(entropy=seed, spawn_key=tuple(int(k) for k in key))
    return np.random.default_rng(seq)
