"""Block/range arithmetic shared by BlobSeer, BSFS and HDFS.

Both storage systems stripe byte ranges over fixed-size blocks (64 MB in
the paper's evaluation).  Every layer needs the same little calculations:
which blocks does a byte range touch, which part of each block, is a
range block-aligned.  Centralising them here keeps the off-by-one zoo in
one tested place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "BlockSlice",
    "split_range",
    "dest_windows",
    "block_count",
    "block_span",
    "align_down",
    "align_up",
]


@dataclass(frozen=True)
class BlockSlice:
    """The portion of one block covered by a byte range.

    Attributes:
        index: zero-based block index within the object.
        start: first byte *within the block* covered by the range.
        length: number of bytes covered within this block.
        offset: absolute offset of the covered run (``index * block_size
            + start``) — convenient when issuing per-block I/O.
    """

    index: int
    start: int
    length: int
    offset: int

    @property
    def end(self) -> int:
        """Absolute offset one past the covered run."""
        return self.offset + self.length


def split_range(offset: int, size: int, block_size: int) -> list[BlockSlice]:
    """Split the byte range ``[offset, offset+size)`` into per-block slices.

    The first and last slice may be partial ("the client fetches only the
    required parts of the extremal blocks", paper §III-C); interior slices
    always cover whole blocks.

    >>> [s.index for s in split_range(10, 30, 16)]
    [0, 1, 2]
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    if offset < 0 or size < 0:
        raise ValueError(f"negative range: offset={offset} size={size}")
    if size == 0:
        return []
    slices: list[BlockSlice] = []
    position = offset
    remaining = size
    while remaining > 0:
        index = position // block_size
        start = position - index * block_size
        length = min(block_size - start, remaining)
        slices.append(BlockSlice(index=index, start=start, length=length, offset=position))
        position += length
        remaining -= length
    return slices


def dest_windows(
    buffer, offset: int, size: int, block_size: int
) -> list[tuple[BlockSlice, memoryview]]:
    """Pair each slice of a range with its window of a gather buffer.

    *buffer* is the ONE preallocated destination for the byte range
    ``[offset, offset+size)`` (so ``len(buffer) >= size``); the returned
    ``(slice, window)`` pairs map each touched block onto the zero-copy
    ``memoryview`` window of *buffer* its bytes belong in.  Windows are
    disjoint, so concurrent per-block gathers may fill them in parallel
    — the vectored-read primitive shared by the blob store, the client
    caches and the HDFS shim (DESIGN.md §11).
    """
    slices = split_range(offset, size, block_size)
    view = memoryview(buffer)
    if view.readonly:
        raise TypeError("gather destination must be a writable buffer")
    if len(view) < size:
        raise ValueError(f"gather buffer holds {len(view)}B, range needs {size}B")
    return [
        (s, view[s.offset - offset : s.end - offset])
        for s in slices
    ]


def iter_blocks(offset: int, size: int, block_size: int) -> Iterator[BlockSlice]:
    """Lazy variant of :func:`split_range` for very long ranges."""
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    if offset < 0 or size < 0:
        raise ValueError(f"negative range: offset={offset} size={size}")
    position = offset
    end = offset + size
    while position < end:
        index = position // block_size
        start = position - index * block_size
        length = min(block_size - start, end - position)
        yield BlockSlice(index=index, start=start, length=length, offset=position)
        position += length


def block_count(size: int, block_size: int) -> int:
    """Number of blocks needed to hold *size* bytes (ceiling division)."""
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    if size < 0:
        raise ValueError(f"negative size: {size}")
    return -(-size // block_size)


def block_span(offset: int, size: int, block_size: int) -> tuple[int, int]:
    """Return ``(first_block, last_block_exclusive)`` touched by the range.

    For an empty range the span is empty: ``(b, b)``.
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    if offset < 0 or size < 0:
        raise ValueError(f"negative range: offset={offset} size={size}")
    first = offset // block_size
    if size == 0:
        return (first, first)
    last = (offset + size - 1) // block_size
    return (first, last + 1)


def align_down(value: int, granularity: int) -> int:
    """Largest multiple of *granularity* that is <= *value*."""
    if granularity <= 0:
        raise ValueError(f"granularity must be positive, got {granularity}")
    return (value // granularity) * granularity


def align_up(value: int, granularity: int) -> int:
    """Smallest multiple of *granularity* that is >= *value*."""
    if granularity <= 0:
        raise ValueError(f"granularity must be positive, got {granularity}")
    return -(-value // granularity) * granularity
