"""Shared utilities: byte sizes, block math, stats, RNG, rate limiting."""

from repro.util.bytesize import GB, KB, MB, TB, format_size, parse_size
from repro.util.chunks import (
    BlockSlice,
    align_down,
    align_up,
    block_count,
    block_span,
    iter_blocks,
    split_range,
)
from repro.util.rng import SeedFactory, derive_rng
from repro.util.throttle import Throttle, TokenBucket
from repro.util.stats import (
    Summary,
    harmonic_mean,
    layout_vector,
    manhattan_unbalance,
    summarize,
)

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "parse_size",
    "format_size",
    "BlockSlice",
    "split_range",
    "iter_blocks",
    "block_count",
    "block_span",
    "align_down",
    "align_up",
    "SeedFactory",
    "derive_rng",
    "Throttle",
    "TokenBucket",
    "Summary",
    "summarize",
    "harmonic_mean",
    "layout_vector",
    "manhattan_unbalance",
]
