"""Small statistics helpers used by the experiment harness.

Includes the paper's load-balance metric (§V-D): the Manhattan distance
between the observed blocks-per-node vector and the vector of a
perfectly balanced system, called the "degree of unbalance" in
Figure 3(b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

__all__ = [
    "manhattan_unbalance",
    "layout_vector",
    "Summary",
    "summarize",
    "harmonic_mean",
]


def layout_vector(
    assignment: Mapping[object, int] | Iterable[object], nodes: Sequence[object]
) -> list[int]:
    """Blocks-per-node vector over *nodes*.

    *assignment* is either a mapping ``node -> block count`` or an
    iterable of node ids (one entry per stored block).  Nodes that store
    nothing still appear (with 0) — the paper explicitly observed HDFS
    datanodes holding no block at all.
    """
    counts: dict[object, int] = {node: 0 for node in nodes}
    if isinstance(assignment, Mapping):
        for node, count in assignment.items():
            if node not in counts:
                raise KeyError(f"assignment mentions unknown node {node!r}")
            if count < 0:
                raise ValueError(f"negative block count for {node!r}: {count}")
            counts[node] = count
    else:
        for node in assignment:
            if node not in counts:
                raise KeyError(f"assignment mentions unknown node {node!r}")
            counts[node] += 1
    return [counts[node] for node in nodes]


def manhattan_unbalance(vector: Sequence[float]) -> float:
    """Degree of unbalance of a block-layout vector (paper Figure 3(b)).

    Manhattan (L1) distance between *vector* and the ideal vector whose
    every element equals ``sum(vector)/len(vector)``.  0 means perfectly
    balanced; the larger the value the more skewed the layout.
    """
    if not vector:
        return 0.0
    total = float(sum(vector))
    ideal = total / len(vector)
    return float(sum(abs(v - ideal) for v in vector))


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean; natural average for rates (MB/s per client)."""
    if not values:
        raise ValueError("harmonic_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic_mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample: n, mean, stdev, min, max."""

    n: int
    mean: float
    stdev: float
    minimum: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} mean={self.mean:.3f} sd={self.stdev:.3f} "
            f"min={self.minimum:.3f} max={self.maximum:.3f}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary`; stdev is the sample standard deviation.

    A single observation gets stdev 0 (the paper averaged 5 repetitions
    and reported that the deviation "proved to be low").
    """
    if not values:
        raise ValueError("summarize of empty sequence")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        var = 0.0
    return Summary(
        n=n,
        mean=mean,
        stdev=math.sqrt(var),
        minimum=min(values),
        maximum=max(values),
    )
