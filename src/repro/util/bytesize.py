"""Byte-size parsing and formatting.

The paper speaks in ``64 MB`` blocks, ``4 KB`` records and ``GB`` files;
experiment configs accept either plain integers (bytes) or strings such
as ``"64MB"``, ``"6.4 GB"``, ``"117.5MB/s"`` (the trailing ``/s`` is
tolerated so bandwidth constants read naturally).

Units are binary powers (``KB = 2**10``) matching how HDFS/BlobSeer size
their chunks; the decimal forms (``kB``) are not distinguished — the
paper itself uses MB for 2**20.
"""

from __future__ import annotations

import re

__all__ = ["parse_size", "format_size", "KB", "MB", "GB", "TB"]

KB = 1 << 10
MB = 1 << 20
GB = 1 << 30
TB = 1 << 40

_UNITS = {
    "": 1,
    "b": 1,
    "k": KB,
    "kb": KB,
    "kib": KB,
    "m": MB,
    "mb": MB,
    "mib": MB,
    "g": GB,
    "gb": GB,
    "gib": GB,
    "t": TB,
    "tb": TB,
    "tib": TB,
}

_SIZE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[a-zA-Z]*?)(?:/s)?\s*$"
)


def parse_size(value: int | float | str) -> int:
    """Convert *value* to a whole number of bytes.

    Accepts ints/floats (taken as bytes) or strings such as ``"64MB"``,
    ``"6.4 GB"``, ``"4 KiB"``, ``"117.5 MB/s"``.  Fractional byte results
    are rounded to the nearest byte.

    >>> parse_size("64MB") == 64 * MB
    True
    >>> parse_size(4096)
    4096
    """
    if isinstance(value, bool):  # bool is an int subclass; reject it
        raise TypeError("size must be a number or string, not bool")
    if isinstance(value, (int, float)):
        if value < 0:
            raise ValueError(f"size must be non-negative, got {value!r}")
        return round(value)
    if not isinstance(value, str):
        raise TypeError(f"size must be a number or string, got {type(value)!r}")
    match = _SIZE_RE.match(value)
    if match is None:
        raise ValueError(f"unparseable size: {value!r}")
    unit = match.group("unit").lower()
    if unit not in _UNITS:
        raise ValueError(f"unknown size unit {match.group('unit')!r} in {value!r}")
    return round(float(match.group("num")) * _UNITS[unit])


def format_size(num_bytes: int | float, precision: int = 1) -> str:
    """Render *num_bytes* with the largest unit that keeps the value >= 1.

    >>> format_size(64 * MB)
    '64.0MB'
    """
    num = float(num_bytes)
    sign = "-" if num < 0 else ""
    num = abs(num)
    for unit, factor in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if num >= factor:
            return f"{sign}{num / factor:.{precision}f}{unit}"
    return f"{sign}{num:.0f}B"
