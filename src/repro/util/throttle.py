"""Rate limiting shared by maintenance and the multi-tenant gateway.

Two shapes of token bucket live here:

* :class:`Throttle` — the *pacing* bucket the anti-entropy scrub has
  always used (DESIGN.md §8): every caller eventually proceeds, but the
  aggregate rate converges to ``ops_per_sec``.  It reserves a time slot
  per tick, so concurrent callers are serialized fairly in arrival
  order and a burst spreads out instead of stampeding.
* :class:`TokenBucket` — the *admission* bucket the gateway uses
  (DESIGN.md §12): a classic capacity-bounded bucket refilled at
  ``rate`` tokens/second.  Callers may wait for tokens
  (:meth:`acquire`, FIFO in lock order, with an optional deadline) or
  probe without waiting (:meth:`try_acquire`).  Unlike :class:`Throttle`
  it allows bounded bursts (``burst``) and can *refuse*, which is what
  admission control needs: a tenant over its rate is delayed or
  rejected, never silently serialized behind the whole cluster.

Historically ``Throttle`` lived in ``repro.blob.scrub``; it is
re-exported there so existing imports keep working.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

__all__ = ["Throttle", "TokenBucket"]


class Throttle:
    """Paces work to *ops_per_sec* operations per second.

    A tiny token bucket shared by every scrub phase: each healed or
    checked item costs one :meth:`tick`.  Thread-safe, so a daemon pass
    and an operator-invoked pass share one budget.  An optional
    *interrupt* event cuts a sleep short — the daemon passes its stop
    event so shutdown never waits out a throttle delay.
    """

    def __init__(
        self, ops_per_sec: float, interrupt: Optional[threading.Event] = None
    ):
        if ops_per_sec <= 0:
            raise ValueError(f"ops_per_sec must be > 0, got {ops_per_sec}")
        self.ops_per_sec = float(ops_per_sec)
        self.interrupt = interrupt
        self._lock = threading.Lock()
        self._next_slot = 0.0

    def tick(self, n: int = 1) -> None:
        """Charge *n* operations, sleeping if the budget is exhausted."""
        cost = n / self.ops_per_sec
        now = time.monotonic()
        with self._lock:
            start = max(self._next_slot, now)
            self._next_slot = start + cost
        if start > now:
            if self.interrupt is not None:
                self.interrupt.wait(start - now)
            else:
                time.sleep(start - now)


class TokenBucket:
    """Capacity-bounded token bucket refilled at *rate* tokens/second.

    The admission-control primitive (one per tenant per op class in the
    gateway): tokens accumulate while a tenant is idle up to *burst*, so
    short spikes are absorbed, and a sustained overload is paced down to
    *rate* — or refused, when the caller passes a deadline it will not
    wait past.

    Waiting is FIFO in lock-acquisition order: each waiter *reserves*
    its tokens immediately (the balance may go negative) and sleeps out
    exactly its own share of the backlog, so a heavy caller's queue
    never reorders ahead of a light one's.  ``waited`` accumulates the
    total seconds callers spent blocked — the gateway's fairness
    reports read it to show *who* is being paced.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        *,
        clock=time.monotonic,
        sleep=time.sleep,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)
        #: Maximum positive balance (default: one second of tokens).
        self.burst = float(burst) if burst is not None else float(rate)
        if self.burst <= 0:
            raise ValueError(f"burst must be > 0, got {self.burst}")
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.Lock()
        self._tokens = self.burst
        self._marked = self._clock()
        #: Total seconds callers spent blocked in :meth:`acquire`.
        self.waited = 0.0
        #: Acquires refused (deadline shorter than the backlog).
        self.rejected = 0

    def _refill(self, now: float) -> None:
        self._tokens = min(self.burst, self._tokens + (now - self._marked) * self.rate)
        self._marked = now

    @property
    def available(self) -> float:
        """Current token balance (negative while a backlog drains)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take *n* tokens if the balance covers them; never waits."""
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    def acquire(
        self,
        n: float = 1.0,
        timeout: Optional[float] = None,
        interrupt: Optional[threading.Event] = None,
    ) -> bool:
        """Take *n* tokens, waiting for the refill if necessary.

        Returns ``False`` — without consuming anything — when the wait
        would exceed *timeout*; the caller turns that into a typed
        admission rejection.  An *interrupt* event set mid-sleep ends
        the wait early with the tokens already charged (the shutdown
        path: the work is abandoned, not retried).
        """
        if n <= 0:
            return True
        with self._lock:
            now = self._clock()
            self._refill(now)
            deficit = n - self._tokens
            wait = max(0.0, deficit / self.rate)
            if timeout is not None and wait > timeout:
                self.rejected += 1
                return False
            self._tokens -= n
            if wait > 0:
                self.waited += wait
        if wait > 0:
            if interrupt is not None:
                interrupt.wait(wait)
            else:
                self._sleep(wait)
        return True
