"""Measurement instruments for simulated experiments.

The harness needs the same numbers the paper plots: per-client and
aggregate throughput over an interval, time series of events, and simple
counters.  Everything here is passive — recording does not perturb the
simulation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

from repro.simulation.engine import Engine

__all__ = ["Recorder", "IntervalThroughput", "Span"]


@dataclass(frozen=True)
class Span:
    """A named closed interval of simulated time with a byte count."""

    name: str
    start: float
    end: float
    nbytes: float = 0.0

    @property
    def duration(self) -> float:
        """Length of the span in seconds."""
        return self.end - self.start

    @property
    def throughput(self) -> float:
        """Bytes per second over the span (0 for empty spans)."""
        return self.nbytes / self.duration if self.duration > 0 else 0.0


@dataclass
class IntervalThroughput:
    """Aggregate throughput computed from a set of spans.

    ``aggregate`` divides total bytes by the wall interval (earliest
    start to latest end) — the paper's "aggregated throughput" in
    Figure 5.  ``per_client_mean`` averages each span's own rate — the
    "average throughput per client" in Figures 3(a)/4.
    """

    spans: list[Span] = field(default_factory=list)

    def add(self, span: Span) -> None:
        """Record one client-level operation span."""
        self.spans.append(span)

    @property
    def total_bytes(self) -> float:
        """Sum of bytes across spans."""
        return sum(s.nbytes for s in self.spans)

    @property
    def wall_interval(self) -> float:
        """Earliest start to latest end across spans."""
        if not self.spans:
            return 0.0
        return max(s.end for s in self.spans) - min(s.start for s in self.spans)

    @property
    def aggregate(self) -> float:
        """Total bytes over the wall interval (bytes/second)."""
        wall = self.wall_interval
        return self.total_bytes / wall if wall > 0 else 0.0

    @property
    def per_client_mean(self) -> float:
        """Mean of each span's own throughput (bytes/second)."""
        if not self.spans:
            return 0.0
        return sum(s.throughput for s in self.spans) / len(self.spans)


class Recorder:
    """Counters, gauges and span collection bound to an engine clock."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self.counters: dict[str, float] = defaultdict(float)
        self.series: dict[str, list[tuple[float, float]]] = defaultdict(list)
        self._open_spans: dict[object, tuple[str, float]] = {}
        self.spans: list[Span] = []

    def incr(self, name: str, amount: float = 1.0) -> None:
        """Bump a counter."""
        self.counters[name] += amount

    def sample(self, name: str, value: float) -> None:
        """Append ``(now, value)`` to a named time series."""
        self.series[name].append((self.engine.now, value))

    def span_start(self, key: object, name: str) -> None:
        """Open a span identified by *key* (e.g. a client id)."""
        self._open_spans[key] = (name, self.engine.now)

    def span_end(self, key: object, nbytes: float = 0.0) -> Span:
        """Close the span for *key* and record it."""
        name, start = self._open_spans.pop(key)
        span = Span(name=name, start=start, end=self.engine.now, nbytes=nbytes)
        self.spans.append(span)
        return span

    def spans_named(self, name: str) -> list[Span]:
        """All closed spans with the given name."""
        return [s for s in self.spans if s.name == name]

    def throughput(self, name: Optional[str] = None) -> IntervalThroughput:
        """Interval-throughput view over (optionally name-filtered) spans."""
        chosen = self.spans if name is None else self.spans_named(name)
        view = IntervalThroughput()
        for span in chosen:
            view.add(span)
        return view
