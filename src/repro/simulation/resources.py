"""Synchronization primitives for simulated processes.

* :class:`Resource` — counted resource with FIFO queueing (disk arms,
  server worker threads, task slots).
* :class:`Store` — unbounded-or-bounded FIFO of items (message queues).
* :class:`Gate` — broadcast condition: processes wait until opened
  (used for "snapshot v is now readable" notifications).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.errors import SimulationError
from repro.simulation.engine import Engine, Event

__all__ = ["Resource", "Request", "Store", "Gate"]


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot.

    Yield it to wait for the grant; pass it back to
    :meth:`Resource.release` when done.  Supports use as a context
    manager *inside* process generators::

        req = resource.request()
        yield req
        try:
            ...
        finally:
            resource.release(req)
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.engine)
        self.resource = resource


class Resource:
    """A counted resource with FIFO granting.

    ``capacity`` slots; :meth:`request` returns an event granted when a
    slot frees up.  Deterministic FIFO order keeps simulations
    reproducible.
    """

    def __init__(self, engine: Engine, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self._in_use = 0
        self._waiting: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for a slot; the returned event fires when granted."""
        req = Request(self)
        if self._in_use < self.capacity:
            self._in_use += 1
            req.succeed(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a granted slot; wakes the oldest waiter, if any."""
        if request.resource is not self:
            raise SimulationError("release() of a request from another resource")
        if not request.triggered:
            # The request never got a slot: cancel it instead.
            try:
                self._waiting.remove(request)
            except ValueError:
                raise SimulationError("release() of unknown pending request") from None
            return
        if self._in_use <= 0:  # pragma: no cover - defensive
            raise SimulationError("release() with no slot in use")
        if self._waiting:
            nxt = self._waiting.popleft()
            nxt.succeed(nxt)
        else:
            self._in_use -= 1

    def acquire(self):
        """Generator helper: ``req = yield from res.acquire()``."""
        req = self.request()
        yield req
        return req


class Store:
    """FIFO item store: producers :meth:`put`, consumers :meth:`get`.

    With the default infinite capacity, ``put`` never blocks; bounded
    stores make ``put`` wait until a consumer makes room (useful to model
    bounded server queues / backpressure).
    """

    def __init__(self, engine: Engine, capacity: float = float("inf")):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Deposit *item*; returned event fires when the item is accepted."""
        done = Event(self.engine)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            done.succeed()
        elif len(self._items) < self.capacity:
            self._items.append(item)
            done.succeed()
        else:
            self._putters.append((done, item))
        return done

    def get(self) -> Event:
        """Take the oldest item; returned event fires with the item."""
        got = Event(self.engine)
        if self._items:
            got.succeed(self._items.popleft())
            if self._putters:
                done, item = self._putters.popleft()
                self._items.append(item)
                done.succeed()
        else:
            self._getters.append(got)
        return got


class Gate:
    """Broadcast condition variable keyed by a monotone watermark.

    Processes wait for ``level >= threshold``; :meth:`advance` raises the
    level and releases every satisfied waiter.  This models the version
    manager's "snapshot revealed" watermark: readers of version *v* block
    until the published level reaches *v*.
    """

    def __init__(self, engine: Engine, level: int = 0):
        self.engine = engine
        self._level = level
        self._waiters: list[tuple[int, Event]] = []

    @property
    def level(self) -> int:
        """Current watermark."""
        return self._level

    def wait_for(self, threshold: int) -> Event:
        """Event firing as soon as the watermark reaches *threshold*."""
        ev = Event(self.engine)
        if self._level >= threshold:
            ev.succeed(self._level)
        else:
            self._waiters.append((threshold, ev))
        return ev

    def advance(self, level: int) -> None:
        """Raise the watermark (monotonically) and release waiters."""
        if level < self._level:
            raise SimulationError(
                f"gate watermark must be monotone: {level} < {self._level}"
            )
        self._level = level
        if not self._waiters:
            return
        still_waiting: list[tuple[int, Event]] = []
        for threshold, ev in self._waiters:
            if threshold <= level:
                ev.succeed(level)
            else:
                still_waiting.append((threshold, ev))
        self._waiters = still_waiting
