"""Discrete-event simulation substrate (the Grid'5000 stand-in).

Public surface:

* :class:`Engine`, :class:`Event`, :class:`Process` — the event kernel.
* :class:`Resource`, :class:`Store`, :class:`Gate` — synchronization.
* :class:`FlowNetwork` — max-min fair fluid network.
* :class:`Disk` — FIFO storage device.
* :class:`SimCluster`, :class:`SimNode` — machines wired to a network.
* :class:`RpcServer`, :func:`call` — service messaging.
* :class:`Recorder` — passive measurement.
"""

from repro.simulation.cluster import (
    GRID5000_LATENCY,
    GRID5000_NIC_RATE,
    NodeSpec,
    SimCluster,
    SimNode,
)
from repro.simulation.disk import Disk, DiskSpec
from repro.simulation.engine import AllOf, AnyOf, Engine, Event, Process, Timeout
from repro.simulation.network import Flow, FlowNetwork, NodePort, TransferStats
from repro.simulation.resources import Gate, Request, Resource, Store
from repro.simulation.rpc import DEFAULT_RPC_BYTES, Reply, RpcServer, call
from repro.simulation.trace import IntervalThroughput, Recorder, Span

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Resource",
    "Request",
    "Store",
    "Gate",
    "FlowNetwork",
    "Flow",
    "NodePort",
    "TransferStats",
    "Disk",
    "DiskSpec",
    "SimCluster",
    "SimNode",
    "NodeSpec",
    "GRID5000_NIC_RATE",
    "GRID5000_LATENCY",
    "RpcServer",
    "Reply",
    "call",
    "DEFAULT_RPC_BYTES",
    "Recorder",
    "Span",
    "IntervalThroughput",
]
