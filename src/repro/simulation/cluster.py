"""Simulated cluster: nodes with NICs and disks on a shared network.

Mirrors one Grid'5000 cluster from the paper's §V-A: x86_64 boxes behind
a non-blocking gigabit switch, 117.5 MB/s measured TCP throughput,
0.1 ms intra-cluster latency.  :class:`SimCluster` is the container the
deployment layer (``repro.deploy``) populates with services.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.simulation.disk import Disk, DiskSpec
from repro.simulation.engine import Engine, Event
from repro.simulation.network import FlowNetwork

__all__ = ["NodeSpec", "SimNode", "SimCluster", "GRID5000_NIC_RATE", "GRID5000_LATENCY"]

#: Measured TCP throughput of the paper's 1 Gbit/s links (117.5 MB/s).
GRID5000_NIC_RATE = 117.5 * (1 << 20)
#: Intra-cluster one-way latency from the paper (0.1 ms).
GRID5000_LATENCY = 1e-4


@dataclass(frozen=True)
class NodeSpec:
    """Hardware profile of a simulated machine."""

    nic_rate: float = GRID5000_NIC_RATE
    disk: DiskSpec = field(default_factory=DiskSpec)

    def __post_init__(self) -> None:
        if self.nic_rate <= 0:
            raise ValueError("nic_rate must be positive")


class SimNode:
    """One machine: a name, a NIC port in the flow network and a disk."""

    def __init__(self, cluster: "SimCluster", name: str, spec: NodeSpec):
        self.cluster = cluster
        self.name = name
        self.spec = spec
        self.disk = Disk(cluster.engine, spec.disk)
        #: Set False by failure injection; services check it.
        self.online = True
        cluster.network.add_node(name, egress=spec.nic_rate, ingress=spec.nic_rate)

    @property
    def engine(self) -> Engine:
        """The engine driving this node's cluster."""
        return self.cluster.engine

    def send(self, dst: "SimNode | str", nbytes: float) -> Event:
        """Transfer *nbytes* from this node to *dst* over the network."""
        dst_name = dst if isinstance(dst, str) else dst.name
        return self.cluster.network.transfer(self.name, dst_name, nbytes)

    def fail(self) -> None:
        """Mark the node offline and kill its in-flight transfers."""
        from repro.errors import ProviderUnavailable

        self.online = False
        self.cluster.network.cancel_node_flows(
            self.name, ProviderUnavailable(f"node {self.name} failed")
        )

    def recover(self) -> None:
        """Bring the node back online (state loss is up to the service)."""
        self.online = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimNode {self.name} {'up' if self.online else 'DOWN'}>"


class SimCluster:
    """A set of :class:`SimNode` machines sharing one switch."""

    def __init__(
        self,
        engine: Engine | None = None,
        latency: float = GRID5000_LATENCY,
        core_capacity: float | None = None,
        small_flow_cutoff: float = 0.0,
    ):
        self.engine = engine if engine is not None else Engine()
        self.network = FlowNetwork(
            self.engine,
            latency=latency,
            core_capacity=core_capacity,
            small_flow_cutoff=small_flow_cutoff,
        )
        self.nodes: dict[str, SimNode] = {}

    def add_node(self, name: str, spec: NodeSpec | None = None) -> SimNode:
        """Create one node; names must be unique within the cluster."""
        if name in self.nodes:
            raise SimulationError(f"node {name!r} already exists")
        node = SimNode(self, name, spec or NodeSpec())
        self.nodes[name] = node
        return node

    def add_nodes(self, prefix: str, count: int, spec: NodeSpec | None = None) -> list[SimNode]:
        """Create ``count`` nodes named ``{prefix}-000`` .. ``{prefix}-NNN``."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        width = max(3, len(str(max(count - 1, 0))))
        return [
            self.add_node(f"{prefix}-{i:0{width}d}", spec) for i in range(count)
        ]

    def node(self, name: str) -> SimNode:
        """Look up a node by name."""
        try:
            return self.nodes[name]
        except KeyError:
            raise SimulationError(f"unknown node {name!r}") from None

    def __len__(self) -> int:
        return len(self.nodes)
