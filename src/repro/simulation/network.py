"""Fluid flow network with max-min fair bandwidth sharing.

This is the performance core of the Grid'5000 substitute.  Instead of
simulating packets, each in-flight transfer is a *flow* draining its
byte count at a rate set by **max-min fair sharing** (progressive
filling) across the capacities it traverses: the sender's egress NIC and
the receiver's ingress NIC (the paper's clusters sit behind a
non-blocking gigabit switch, so no core bottleneck is modelled, though
one can be configured).

The important emergent behaviours — a datanode serving four concurrent
readers gives each ~29 MB/s while a balanced layout gives every reader
the full 117.5 MB/s; two pipelined writes that collide on one provider
halve each other — fall out of this model without scenario-specific
code, which is exactly what the reproduction needs (see DESIGN.md §2).

Rates are recomputed lazily, only when the flow population changes; in
between, completion times are exact because rates are constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.simulation.engine import Engine, Event

__all__ = ["FlowNetwork", "Flow", "NodePort", "TransferStats"]

#: Residual bytes below which a flow counts as drained.  Settling
#: accumulates float error of order ``rate * eps(now)`` (~1e-6 bytes for
#: 64 MB/s flows at t~100s), so the threshold sits far above that while
#: staying a millionth of any real block.
_EPSILON_BYTES = 1e-3
#: Relative slack when scheduling the next completion wake-up.
_TIME_SLACK = 1e-12
#: Horizons below this are not representable in simulated time (adding
#: them to ``now`` may not change it); flows that close are done.
_MIN_HORIZON = 1e-9


@dataclass
class NodePort:
    """Capacity bookkeeping for one node's NIC.

    Full-duplex: *egress* and *ingress* are independent capacities in
    bytes/second (117.5 MB/s each for the paper's measured TCP rate).
    """

    name: str
    egress: float
    ingress: float

    def __post_init__(self) -> None:
        if self.egress <= 0 or self.ingress <= 0:
            raise ValueError(
                f"node {self.name!r} needs positive capacities, got "
                f"egress={self.egress} ingress={self.ingress}"
            )


@dataclass
class TransferStats:
    """Aggregate accounting kept by the network (for throughput reports)."""

    transfers_started: int = 0
    transfers_completed: int = 0
    bytes_completed: float = 0.0
    bytes_by_source: dict[str, float] = field(default_factory=dict)
    bytes_by_dest: dict[str, float] = field(default_factory=dict)


class Flow:
    """One in-flight transfer.

    Public attributes are read-only for callers; use
    :meth:`FlowNetwork.transfer` to create flows and :meth:`cancel` to
    abort one (failure injection).
    """

    __slots__ = (
        "src", "dst", "size", "remaining", "event", "rate",
        "started_at", "active", "_links", "cap",
    )

    def __init__(
        self, src: str, dst: str, size: float, event: Event, cap: Optional[float] = None
    ):
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.remaining = float(size)
        self.event = event
        self.rate = 0.0
        self.started_at: Optional[float] = None
        self.active = False
        self._links: tuple[object, ...] = ()
        #: Optional per-flow rate ceiling (models a single-stream client
        #: processing limit independent of NIC capacity).
        self.cap = cap

    def cancel(self, exception: BaseException) -> None:
        """Abort the transfer; the transfer event fails with *exception*."""
        if self.event.triggered:
            return
        self.active = False
        self.event.fail(exception)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Flow {self.src}->{self.dst} {self.remaining:.0f}/{self.size:.0f}B "
            f"@{self.rate:.0f}B/s>"
        )


class FlowNetwork:
    """Max-min fair fluid network over named nodes.

    Args:
        engine: the simulation engine driving time.
        latency: one-way message latency in seconds applied before a
            flow starts draining (0.1 ms on Grid'5000).
        core_capacity: optional aggregate switch capacity shared by all
            flows; ``None`` models a non-blocking switch.
        loopback_rate: rate for src==dst transfers (local copies bypass
            the NIC; default models a fast memory-speed path).
    """

    def __init__(
        self,
        engine: Engine,
        latency: float = 1e-4,
        core_capacity: Optional[float] = None,
        loopback_rate: float = 4.0 * (1 << 30),
        small_flow_cutoff: float = 0.0,
    ):
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        if core_capacity is not None and core_capacity <= 0:
            raise ValueError("core_capacity must be positive or None")
        if loopback_rate <= 0:
            raise ValueError("loopback_rate must be positive")
        if small_flow_cutoff < 0:
            raise ValueError("small_flow_cutoff must be >= 0")
        self.engine = engine
        self.latency = latency
        self.core_capacity = core_capacity
        self.loopback_rate = loopback_rate
        #: Transfers at or below this size skip max-min sharing and cost
        #: ``latency + size/uncontended-rate``.  Control messages are
        #: latency-bound, so exempting them from the fluid model is an
        #: excellent approximation that makes large deployments (250
        #: concurrent clients x dozens of RPCs) tractable.  0 disables.
        self.small_flow_cutoff = small_flow_cutoff
        self._nodes: dict[str, NodePort] = {}
        self._flows: set[Flow] = set()
        self._last_settled = engine.now
        self._wake_generation = 0
        self.stats = TransferStats()
        #: Optional observer invoked as ``fn(flow)`` on each completion.
        self.on_complete: Optional[Callable[[Flow], None]] = None

    # -- topology ---------------------------------------------------------

    def add_node(
        self, name: str, egress: float, ingress: Optional[float] = None
    ) -> NodePort:
        """Register a node with its NIC capacities (bytes/second)."""
        if name in self._nodes:
            raise SimulationError(f"node {name!r} already registered")
        port = NodePort(name=name, egress=float(egress),
                        ingress=float(egress if ingress is None else ingress))
        self._nodes[name] = port
        return port

    def has_node(self, name: str) -> bool:
        """True if *name* was registered."""
        return name in self._nodes

    def set_node_rates(
        self,
        name: str,
        egress: Optional[float] = None,
        ingress: Optional[float] = None,
    ) -> None:
        """Re-rate a node's NIC (heterogeneous-cluster experiments).

        Active flows immediately re-share under the new capacities.
        """
        port = self._nodes.get(name)
        if port is None:
            raise SimulationError(f"unknown node {name!r}")
        if egress is not None:
            if egress <= 0:
                raise ValueError("egress must be positive")
            port.egress = float(egress)
        if ingress is not None:
            if ingress <= 0:
                raise ValueError("ingress must be positive")
            port.ingress = float(ingress)
        self._settle()
        self._recompute()

    @property
    def active_flows(self) -> int:
        """Number of flows currently draining."""
        return len(self._flows)

    # -- transfers ----------------------------------------------------------

    def transfer(
        self,
        src: str,
        dst: str,
        nbytes: float,
        latency: Optional[float] = None,
        rate_cap: Optional[float] = None,
    ) -> Event:
        """Move *nbytes* from *src* to *dst*; event fires on the last byte.

        The one-way *latency* (default: network default) elapses before
        bytes start flowing, so tiny RPC messages cost ~latency and bulk
        transfers cost latency + bytes/fair-rate.  ``rate_cap`` bounds
        this flow's rate below its fair share (single-stream ceiling).
        """
        if src not in self._nodes:
            raise SimulationError(f"unknown source node {src!r}")
        if dst not in self._nodes:
            raise SimulationError(f"unknown destination node {dst!r}")
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if rate_cap is not None and rate_cap <= 0:
            raise ValueError(f"rate_cap must be positive, got {rate_cap}")
        lat = self.latency if latency is None else latency
        done = Event(self.engine)
        flow = Flow(src, dst, nbytes, done, cap=rate_cap)
        self.stats.transfers_started += 1
        if src == dst:
            # Local copy: loopback bypasses the NIC but still honours a
            # per-stream ceiling (the producer/consumer is no faster
            # just because the bytes stay on the machine).
            rate = self.loopback_rate if rate_cap is None else min(
                self.loopback_rate, rate_cap
            )
            duration = lat + nbytes / rate
            local_done = self.engine.timeout(duration)
            local_done.add_callback(lambda _ev: self._finish_local(flow))
            return done
        if nbytes == 0:
            zero = self.engine.timeout(lat)
            zero.add_callback(lambda _ev: self._finish_local(flow))
            return done
        if nbytes <= self.small_flow_cutoff:
            # Latency-bound control message: bypass the fluid model.
            rate = min(self._nodes[src].egress, self._nodes[dst].ingress)
            if rate_cap is not None:
                rate = min(rate, rate_cap)
            small_done = self.engine.timeout(lat + nbytes / rate)
            small_done.add_callback(lambda _ev: self._finish_local(flow))
            return done
        start = self.engine.timeout(lat)
        start.add_callback(lambda _ev: self._start_flow(flow))
        return done

    def cancel_node_flows(self, node: str, exception: BaseException) -> int:
        """Fail every active flow touching *node* (failure injection).

        Returns the number of flows cancelled.  Bandwidth is immediately
        redistributed among survivors.
        """
        victims = [f for f in self._flows if f.src == node or f.dst == node]
        if not victims:
            return 0
        self._settle()
        for flow in victims:
            self._flows.discard(flow)
            flow.cancel(exception)
        self._recompute()
        return len(victims)

    # -- internals ------------------------------------------------------------

    def _finish_local(self, flow: Flow) -> None:
        if flow.event.triggered:
            return
        flow.started_at = self.engine.now
        self.stats.transfers_completed += 1
        self.stats.bytes_completed += flow.size
        self.stats.bytes_by_source[flow.src] = (
            self.stats.bytes_by_source.get(flow.src, 0.0) + flow.size
        )
        self.stats.bytes_by_dest[flow.dst] = (
            self.stats.bytes_by_dest.get(flow.dst, 0.0) + flow.size
        )
        flow.event.succeed(flow)
        if self.on_complete is not None:
            self.on_complete(flow)

    def _start_flow(self, flow: Flow) -> None:
        if flow.event.triggered:  # cancelled before it started
            return
        self._settle()
        flow.active = True
        flow.started_at = self.engine.now
        links: list[object] = [("out", flow.src), ("in", flow.dst)]
        if self.core_capacity is not None:
            links.append(("core", None))
        if flow.cap is not None:
            # A private link only this flow traverses: its fair share on
            # it is the whole cap, bounding the flow's rate.
            links.append(("cap", id(flow), float(flow.cap)))
        flow._links = tuple(links)
        self._flows.add(flow)
        self._recompute()

    def _settle(self) -> None:
        """Drain every active flow at its current rate up to ``now``."""
        now = self.engine.now
        dt = now - self._last_settled
        if dt > 0:
            for flow in self._flows:
                flow.remaining -= flow.rate * dt
                if flow.remaining < 0:
                    flow.remaining = 0.0
        self._last_settled = now

    def _link_capacity(self, link: tuple) -> float:
        kind = link[0]
        if kind == "out":
            return self._nodes[link[1]].egress
        if kind == "in":
            return self._nodes[link[1]].ingress
        if kind == "cap":
            return float(link[2])
        return float(self.core_capacity)  # kind == "core"

    def _recompute(self) -> None:
        """Assign max-min fair rates and schedule the next completion."""
        # Drop cancelled flows.
        dead = [f for f in self._flows if f.event.triggered and not f.active]
        for f in dead:
            self._flows.discard(f)

        flows = list(self._flows)
        if flows:
            self._assign_maxmin_rates(flows)

        # Schedule a wake-up at the earliest projected completion.
        self._wake_generation += 1
        generation = self._wake_generation
        horizon = math.inf
        for f in flows:
            if f.rate > 0:
                horizon = min(horizon, f.remaining / f.rate)
        if horizon is not math.inf and flows:
            wake = self.engine.timeout(max(horizon, 0.0) * (1.0 + _TIME_SLACK))
            wake.add_callback(lambda _ev: self._on_wake(generation))

    def _assign_maxmin_rates(self, flows: list[Flow]) -> None:
        """Vectorized progressive filling.

        Each round saturates the tightest remaining link, freezing every
        unfrozen flow through it at the link's fair share.  Arrays keep
        per-link residual capacity and unfrozen membership counts, so a
        round is O(flows) numpy work and the loop runs at most once per
        link — fast enough for the 250-client experiments.
        """
        import numpy as np

        # Index the links each flow traverses (at most 3: out, in, cap).
        link_ids: dict[tuple, int] = {}
        max_links = 0
        for f in flows:
            max_links = max(max_links, len(f._links))
            for link in f._links:
                if link not in link_ids:
                    link_ids[link] = len(link_ids)
        n_links = len(link_ids)
        membership = np.full((len(flows), max_links), -1, dtype=np.int64)
        for i, f in enumerate(flows):
            for j, link in enumerate(f._links):
                membership[i, j] = link_ids[link]
        capacity = np.empty(n_links, dtype=np.float64)
        for link, idx in link_ids.items():
            capacity[idx] = self._link_capacity(link)
        count = np.zeros(n_links, dtype=np.float64)
        valid = membership >= 0
        np.add.at(count, membership[valid], 1.0)

        rates = np.zeros(len(flows), dtype=np.float64)
        frozen = np.zeros(len(flows), dtype=bool)
        remaining = capacity.copy()
        while not frozen.all():
            with np.errstate(divide="ignore", invalid="ignore"):
                shares = np.where(count > 0, remaining / count, math.inf)
            bottleneck = int(np.argmin(shares))
            share = shares[bottleneck]
            if not math.isfinite(share):  # pragma: no cover - defensive
                raise SimulationError("progressive filling found no bottleneck")
            hit = (~frozen) & (membership == bottleneck).any(axis=1)
            if not hit.any():  # pragma: no cover - defensive
                raise SimulationError("bottleneck link with no unfrozen flows")
            rates[hit] = share
            frozen |= hit
            used = membership[hit]
            used = used[used >= 0]
            np.subtract.at(remaining, used, share)
            np.subtract.at(count, used, 1.0)
            np.maximum(remaining, 0.0, out=remaining)
        for i, f in enumerate(flows):
            f.rate = float(rates[i])

    def _on_wake(self, generation: int) -> None:
        if generation != self._wake_generation:
            return  # superseded by a newer recompute
        self._settle()
        completed = [f for f in self._flows if f.remaining <= _EPSILON_BYTES]
        if not completed:
            # Guard against a float livelock: a flow whose projected
            # completion is below the representable time step can never
            # drain through settling — count it as done now.
            completed = [
                f
                for f in self._flows
                if f.rate > 0 and f.remaining / f.rate < _MIN_HORIZON
            ]
        if not completed:
            self._recompute()
            return
        for flow in completed:
            self._flows.discard(flow)
            flow.active = False
            if flow.event.triggered:
                continue  # cancelled at the exact completion instant
            self.stats.transfers_completed += 1
            self.stats.bytes_completed += flow.size
            self.stats.bytes_by_source[flow.src] = (
                self.stats.bytes_by_source.get(flow.src, 0.0) + flow.size
            )
            self.stats.bytes_by_dest[flow.dst] = (
                self.stats.bytes_by_dest.get(flow.dst, 0.0) + flow.size
            )
            flow.event.succeed(flow)
            if self.on_complete is not None:
                self.on_complete(flow)
        self._recompute()
