"""Local storage device model.

A :class:`Disk` serves read/write requests FIFO through a fixed number
of channels (1 = a single spindle/arm; >1 approximates RAID or an SSD's
internal parallelism).  Each request costs a fixed positional overhead
plus ``bytes / rate``.  Datanodes and data providers charge their block
I/O here, so storage can become the bottleneck independently of the
network — which is what makes HDFS's synchronous chunk commit visibly
slower than BlobSeer's overlapped writes in the single-writer scenario.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.engine import Engine, Event
from repro.simulation.resources import Resource

__all__ = ["Disk", "DiskSpec"]


@dataclass(frozen=True)
class DiskSpec:
    """Disk performance envelope.

    Attributes:
        read_rate: sustained sequential read bytes/second.
        write_rate: sustained sequential write bytes/second.
        seek_time: fixed per-request positioning cost in seconds.
        channels: concurrent requests served without queueing.
    """

    read_rate: float = 90.0 * (1 << 20)
    write_rate: float = 80.0 * (1 << 20)
    seek_time: float = 0.004
    channels: int = 1

    def __post_init__(self) -> None:
        if self.read_rate <= 0 or self.write_rate <= 0:
            raise ValueError("disk rates must be positive")
        if self.seek_time < 0:
            raise ValueError("seek_time must be >= 0")
        if self.channels < 1:
            raise ValueError("channels must be >= 1")


class Disk:
    """FIFO disk attached to a simulated node."""

    def __init__(self, engine: Engine, spec: DiskSpec = DiskSpec()):
        self.engine = engine
        self.spec = spec
        self._channels = Resource(engine, capacity=spec.channels)
        #: Total bytes read/written (for utilisation reports).
        self.bytes_read = 0.0
        self.bytes_written = 0.0
        self.busy_time = 0.0

    def read(self, nbytes: float) -> Event:
        """Event firing once *nbytes* have been read."""
        return self._submit(nbytes, self.spec.read_rate, is_read=True)

    def write(self, nbytes: float) -> Event:
        """Event firing once *nbytes* are durably written."""
        return self._submit(nbytes, self.spec.write_rate, is_read=False)

    def _submit(self, nbytes: float, rate: float, is_read: bool) -> Event:
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        done = Event(self.engine)
        service = self.spec.seek_time + nbytes / rate

        def _granted(request_event) -> None:
            finish = self.engine.timeout(service)

            def _complete(_ev) -> None:
                self.busy_time += service
                if is_read:
                    self.bytes_read += nbytes
                else:
                    self.bytes_written += nbytes
                self._channels.release(request_event.value)
                done.succeed()

            finish.add_callback(_complete)

        self._channels.request().add_callback(_granted)
        return done

    @property
    def queue_depth(self) -> int:
        """Requests waiting behind the active ones."""
        return self._channels.queued
