"""Request/response messaging between simulated services.

A :class:`RpcServer` lives on a :class:`~repro.simulation.cluster.SimNode`
and serves requests from a FIFO inbox with a configurable number of
worker processes.  ``concurrency=1`` turns a server into a serialization
point — exactly how the paper's *version manager* is modelled, since
version-number assignment is "the only step in the writing process where
concurrent requests are serialized" (§III-A.4).

Handlers are plain functions or generator functions; generator handlers
may yield further simulation events (disk I/O, nested RPCs), composing
naturally with the engine.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro.errors import ProviderUnavailable, SimulationError
from repro.simulation.cluster import SimNode
from repro.simulation.engine import Engine, Event
from repro.simulation.resources import Store

__all__ = ["RpcServer", "Reply", "call", "DEFAULT_RPC_BYTES"]

#: Default on-wire size of a control message (request or response
#: headers, ids, offsets...).  Small, so control traffic is latency-bound.
DEFAULT_RPC_BYTES = 512.0


@dataclass
class Reply:
    """Handler return value carrying an explicit on-wire response size."""

    value: Any
    size: float = DEFAULT_RPC_BYTES


class RpcServer:
    """A named service with FIFO inbox and ``concurrency`` workers.

    Args:
        node: hosting machine (requests travel over its NIC).
        name: service name for diagnostics.
        handler: ``fn(payload)`` returning a value, a :class:`Reply`, or
            a generator yielding simulation events before returning one.
        service_time: fixed CPU cost charged per request before the
            handler runs (models request parsing/bookkeeping).
        concurrency: number of worker processes draining the inbox.
    """

    def __init__(
        self,
        node: SimNode,
        name: str,
        handler: Callable[[Any], Any],
        service_time: float = 2e-5,
        concurrency: int = 1,
    ):
        if service_time < 0:
            raise ValueError("service_time must be >= 0")
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.node = node
        self.name = name
        self.handler = handler
        self.service_time = service_time
        self.concurrency = concurrency
        self.inbox = Store(node.engine)
        self.requests_served = 0
        self.busy_time = 0.0
        self._workers = [
            node.engine.process(self._worker(), name=f"{name}-worker-{i}")
            for i in range(concurrency)
        ]

    @property
    def engine(self) -> Engine:
        """Engine of the hosting node."""
        return self.node.engine

    @property
    def online(self) -> bool:
        """Service is reachable iff its node is online."""
        return self.node.online

    def _worker(self) -> Generator:
        while True:
            payload, reply_event = yield self.inbox.get()
            started = self.engine.now
            if not self.node.online:
                if not reply_event.triggered:
                    reply_event.fail(
                        ProviderUnavailable(f"{self.name} on {self.node.name} is down")
                    )
                continue
            try:
                if self.service_time:
                    yield self.engine.timeout(self.service_time)
                result = self.handler(payload)
                if inspect.isgenerator(result):
                    result = yield from result
            except BaseException as exc:  # noqa: BLE001 - forwarded to caller
                if not reply_event.triggered:
                    reply_event.fail(exc)
                continue
            finally:
                self.busy_time += self.engine.now - started
            self.requests_served += 1
            if not reply_event.triggered:
                reply_event.succeed(result)


def call(
    client: SimNode,
    server: RpcServer,
    payload: Any,
    request_size: float = DEFAULT_RPC_BYTES,
    response_size: Optional[float] = None,
    rate_cap: Optional[float] = None,
) -> Generator:
    """Generator helper performing one RPC; ``yield from`` it.

    Sequence: request bytes travel client→server, the request queues at
    the server, a worker runs the handler, response bytes travel back.
    Returns the handler's value; re-raises handler exceptions at the
    call site.  If the handler returned a :class:`Reply`, its ``size``
    overrides *response_size*.  ``rate_cap`` bounds the bulk transfer
    rate in both directions (single-stream client ceiling).
    """
    if client.engine is not server.engine:
        raise SimulationError("client and server belong to different engines")
    network = client.cluster.network
    if not server.online:
        # The caller still pays a latency to discover the silence.
        yield client.engine.timeout(network.latency)
        raise ProviderUnavailable(f"{server.name} on {server.node.name} is down")
    yield network.transfer(client.name, server.node.name, request_size, rate_cap=rate_cap)
    reply_event = Event(client.engine)
    yield server.inbox.put((payload, reply_event))
    result = yield reply_event
    if isinstance(result, Reply):
        size = result.size
        value = result.value
    else:
        size = DEFAULT_RPC_BYTES if response_size is None else response_size
        value = result
    yield network.transfer(server.node.name, client.name, size, rate_cap=rate_cap)
    return value
