"""Deterministic discrete-event simulation engine.

A self-contained, SimPy-flavoured kernel: simulated *processes* are
Python generators that ``yield`` :class:`Event` objects and are resumed
when those events fire.  Time advances only through the event calendar,
so a run is bit-for-bit reproducible — which the experiment harness
relies on for regression-testing simulated results.

Design notes
------------
* Events at the same timestamp fire in schedule order (a monotonically
  increasing sequence number breaks ties), so there is no hidden
  nondeterminism.
* A :class:`Process` is itself an :class:`Event` that fires when the
  generator returns — ``yield some_process`` waits for completion and
  receives its return value.
* :meth:`Process.interrupt` mirrors SimPy: an :class:`~repro.errors.Interrupt`
  is thrown into the generator at the current simulated time.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import Interrupt, SimulationError

__all__ = ["Engine", "Event", "Timeout", "Process", "AllOf", "AnyOf"]

#: Sentinel distinguishing "not yet triggered" from a ``None`` value.
_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; exactly once it is *triggered* — either
    :meth:`succeed`-ed with a value or :meth:`fail`-ed with an exception —
    which schedules it on the calendar; when the engine reaches it, its
    callbacks run and waiting processes resume.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok")

    def __init__(self, engine: "Engine"):
        #: The engine this event belongs to.
        self.engine = engine
        #: Callables invoked with the event when it is processed, or
        #: ``None`` once processed (late callbacks run immediately).
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value/exception (scheduled or done)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception carried by the event."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger successfully with *value* after *delay* sim-seconds."""
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.engine._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger as failed: *exception* is re-raised in waiting processes."""
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.engine._schedule(self, 0.0 if delay is None else delay)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run *fn(event)* when the event is processed (immediately if past)."""
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay.  Created via ``engine.timeout``."""

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(engine)
        self._ok = True
        self._value = value
        engine._schedule(self, delay)


class Process(Event):
    """A running simulated activity wrapping a generator.

    The process-as-event fires when the generator returns; its value is
    the generator's return value.  If the generator raises, the process
    fails with that exception (propagated to any waiter, or re-raised by
    :meth:`Engine.run` if nobody waits — errors never pass silently).
    """

    __slots__ = ("generator", "_target", "name", "_interrupting")

    def __init__(self, engine: "Engine", generator: Generator, name: str = ""):
        super().__init__(engine)
        self.generator = generator
        #: The event this process is currently waiting on (None if ready).
        self._target: Optional[Event] = None
        #: Optional label for tracing/debugging.
        self.name = name or getattr(generator, "__name__", "process")
        #: An interrupt is scheduled but not yet delivered.
        self._interrupting = False
        # Bootstrap: resume once at the current time.
        bootstrap = Event(engine)
        bootstrap._ok = True
        bootstrap._value = None
        engine._schedule(bootstrap, 0.0)
        bootstrap.add_callback(self._resume)
        self._target = bootstrap

    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error.  A second interrupt
        issued before the first is delivered coalesces into it (exactly
        one :class:`Interrupt` reaches the generator).
        """
        if not self.alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        if self._interrupting:
            return  # coalesce: one undelivered interrupt is already queued
        self._interrupting = True
        interrupt_event = Event(self.engine)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        self.engine._schedule(interrupt_event, 0.0)
        # Detach from the current target so the original event no longer
        # resumes us (it may still fire for other waiters).
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        interrupt_event.add_callback(self._resume)
        self._target = interrupt_event

    # -- internal ---------------------------------------------------------

    def _resume(self, event: Event) -> None:
        if not self.alive:  # pragma: no cover - stale wake-up guard
            return
        self._target = None
        self._interrupting = False
        try:
            if event._ok:
                next_target = self.generator.send(event._value)
            else:
                next_target = self.generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(next_target, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded {next_target!r}; processes must yield Event"
            )
            self.generator.close()
            self.fail(exc)
            return
        if next_target.engine is not self.engine:
            self.generator.close()
            self.fail(SimulationError("yielded event belongs to a different engine"))
            return
        self._target = next_target
        next_target.add_callback(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self.events: tuple[Event, ...] = tuple(events)
        for ev in self.events:
            if ev.engine is not engine:
                raise SimulationError("condition mixes events from different engines")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._collect())
        else:
            for ev in self.events:
                ev.add_callback(self._on_child)

    def _collect(self) -> dict[Event, Any]:
        # Only *processed* children count: a Timeout is "triggered" from
        # creation (its value is predetermined), but it has not happened
        # yet until the engine reaches it on the calendar.
        return {ev: ev._value for ev in self.events if ev.processed and ev._ok}

    def _on_child(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired; fails fast on first failure."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when the first child fires (success or failure propagates)."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event._ok:
            self.succeed(self._collect())
        else:
            self.fail(event._value)


class Engine:
    """Event calendar plus factory methods for events and processes."""

    def __init__(self):
        self._now: float = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factories ----------------------------------------------------------

    def event(self) -> Event:
        """A fresh pending event (trigger it manually)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Event firing *delay* sim-seconds from now carrying *value*."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start running *generator* as a simulated process."""
        if not isinstance(generator, Generator):
            raise TypeError(
                f"process() needs a generator (did you forget to call the "
                f"function?), got {type(generator)!r}"
            )
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event: every child fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event: first child fired."""
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))

    # -- execution --------------------------------------------------------------

    def step(self) -> None:
        """Process the single next event on the calendar."""
        when, _, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("calendar went backwards")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks or ():
            callback(event)
        if not event._ok and not callbacks and not isinstance(event, Process):
            # A failed event nobody listened to: surface it loudly.
            raise event._value
        if isinstance(event, Process) and not event._ok and not callbacks:
            raise event._value

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        * ``until=None`` — run until the calendar is empty.
        * ``until=<number>`` — run until simulated time reaches it.
        * ``until=<Event>`` — run until that event has been processed and
          return its value (re-raising its exception if it failed).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            if isinstance(until, Event):
                target = until
                while not target.processed:
                    if not self._queue:
                        raise SimulationError(
                            "deadlock: event calendar exhausted before target fired"
                        )
                    self.step()
                if target._ok:
                    return target._value
                raise target._value
            horizon = float("inf") if until is None else float(until)
            if horizon < self._now:
                raise ValueError(f"cannot run to the past ({horizon} < {self._now})")
            while self._queue and self._queue[0][0] <= horizon:
                self.step()
            if until is not None:
                self._now = horizon
            return None
        finally:
            self._running = False

    def peek(self) -> float:
        """Timestamp of the next scheduled event (``inf`` if none)."""
        return self._queue[0][0] if self._queue else float("inf")
