"""Tests for the consistent-hash ring."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dht import HashRing, stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(("blob", 3, 0, 8)) == stable_hash(("blob", 3, 0, 8))

    def test_salt_changes_value(self):
        assert stable_hash("x") != stable_hash("x", salt=b"other")

    def test_spread(self):
        values = {stable_hash(i) for i in range(1000)}
        assert len(values) == 1000


class TestRingMembership:
    def test_empty_ring_lookup_fails(self):
        with pytest.raises(LookupError):
            HashRing().lookup("k")

    def test_single_member_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.lookup(i) == "only" for i in range(50))

    def test_duplicate_add_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add("a")

    def test_remove_unknown_rejected(self):
        with pytest.raises(KeyError):
            HashRing(["a"]).remove("b")

    def test_contains_len(self):
        ring = HashRing(["a", "b"])
        assert "a" in ring and "c" not in ring
        assert len(ring) == 2

    def test_vnodes_validation(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)


class TestRingProperties:
    def test_lookup_stable_across_instances(self):
        members = [f"mdp-{i}" for i in range(20)]
        r1, r2 = HashRing(members), HashRing(list(reversed(members)))
        keys = [("blob", v, o, s) for v in range(5) for o in range(10) for s in (1, 2)]
        assert [r1.lookup(k) for k in keys] == [r2.lookup(k) for k in keys]

    def test_distribution_roughly_even(self):
        ring = HashRing([f"m{i}" for i in range(10)], vnodes=128)
        counts = ring.key_distribution(range(10_000))
        assert min(counts.values()) > 400  # ideal is 1000 each
        assert max(counts.values()) < 2500

    def test_removal_moves_only_victims_keys(self):
        ring = HashRing([f"m{i}" for i in range(10)])
        keys = list(range(2000))
        before = {k: ring.lookup(k) for k in keys}
        ring.remove("m3")
        after = {k: ring.lookup(k) for k in keys}
        for k in keys:
            if before[k] != "m3":
                assert after[k] == before[k]
            else:
                assert after[k] != "m3"

    @given(st.sets(st.text(min_size=1, max_size=8), min_size=1, max_size=12))
    def test_property_lookup_always_a_member(self, members):
        ring = HashRing(sorted(members), vnodes=8)
        for key in range(100):
            assert ring.lookup(key) in members


class TestReplicas:
    def test_distinct_and_primary_first(self):
        ring = HashRing([f"m{i}" for i in range(8)])
        for key in range(100):
            reps = ring.replicas(key, 3)
            assert len(reps) == len(set(reps)) == 3
            assert reps[0] == ring.lookup(key)

    def test_capped_at_membership(self):
        ring = HashRing(["a", "b"])
        assert sorted(ring.replicas("k", 5)) == ["a", "b"]

    def test_n_validation(self):
        with pytest.raises(ValueError):
            HashRing(["a"]).replicas("k", 0)
