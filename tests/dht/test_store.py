"""Tests for the replicated DHT store (scalar and batched surfaces)."""

import pytest

from repro.dht import DhtStore
from repro.errors import ProviderUnavailable, ReplicationError


@pytest.fixture
def store():
    return DhtStore([f"mdp-{i}" for i in range(5)], replication=2)


def keys_with_distinct_primaries(store, count):
    """Keys spread over at least two primary owners (so a batch round
    genuinely touches several buckets)."""
    keys, primaries = [], set()
    i = 0
    while len(keys) < count:
        key = ("k", i)
        keys.append(key)
        primaries.add(store.owners(key)[0])
        i += 1
    assert len(primaries) >= 2
    return keys


class TestBasicOps:
    def test_put_get_roundtrip(self, store):
        store.put(("k", 1), "value")
        assert store.get(("k", 1)) == "value"
        assert ("k", 1) in store

    def test_missing_key(self, store):
        with pytest.raises(KeyError):
            store.get("ghost")
        assert "ghost" not in store

    def test_delete_idempotent(self, store):
        store.put("k", 1)
        store.delete("k")
        store.delete("k")
        assert "k" not in store

    def test_replication_places_n_copies(self, store):
        for i in range(200):
            store.put(("key", i), i)
        total = sum(store.load_by_bucket().values())
        assert total == 400  # 200 keys x 2 replicas

    def test_validation(self):
        with pytest.raises(ValueError):
            DhtStore([])
        with pytest.raises(ValueError):
            DhtStore(["a"], replication=0)


class TestFailureTolerance:
    def test_read_fails_over_to_replica(self, store):
        store.put("k", "v")
        primary = store.owners("k")[0]
        store.fail_bucket(primary)
        assert store.get("k") == "v"

    def test_write_succeeds_with_one_live_replica(self, store):
        primary, secondary = store.owners("k")
        store.fail_bucket(primary)
        store.put("k", "v")
        store.recover_bucket(primary)
        # Value must be readable even though only the secondary has it.
        assert store.get("k") == "v"
        assert "k" in store.buckets[secondary]

    def test_write_fails_with_all_replicas_down(self, store):
        for owner in store.owners("k"):
            store.fail_bucket(owner)
        with pytest.raises(ReplicationError):
            store.put("k", "v")

    def test_read_with_all_replicas_down(self, store):
        store.put("k", "v")
        for owner in store.owners("k"):
            store.fail_bucket(owner)
        with pytest.raises(ProviderUnavailable):
            store.get("k")

    def test_recovery_restores_content(self, store):
        store.put("k", "v")
        primary = store.owners("k")[0]
        store.fail_bucket(primary)
        store.recover_bucket(primary)
        assert store.buckets[primary].get("k") == "v"

    def test_replication_one_has_no_failover(self):
        store = DhtStore(["a", "b", "c"], replication=1)
        store.put("k", "v")
        store.fail_bucket(store.owners("k")[0])
        with pytest.raises(ProviderUnavailable):
            store.get("k")


class TestBatchedOps:
    """The DESIGN.md §9 batch surface: scalar semantics, key for key,
    at one round trip per (healthy) pass."""

    def test_multi_get_matches_scalar_gets(self, store):
        keys = keys_with_distinct_primaries(store, 12)
        for i, key in enumerate(keys):
            store.put(key, f"v{i}")
        assert store.multi_get(keys) == {
            key: store.get(key) for key in keys
        }

    def test_multi_get_healthy_pass_is_one_round_trip(self, store):
        keys = keys_with_distinct_primaries(store, 12)
        store.multi_put([(key, "v") for key in keys])
        before = store.stats.snapshot()
        store.multi_get(keys)
        after = store.stats.snapshot()
        assert after["round_trips"] - before["round_trips"] == 1
        # ... while the same keys read scalar cost one wait each.
        before = store.stats.snapshot()
        for key in keys:
            store.get(key)
        after = store.stats.snapshot()
        assert after["round_trips"] - before["round_trips"] >= len(keys)

    def test_multi_get_fails_over_per_key(self, store):
        keys = keys_with_distinct_primaries(store, 8)
        store.multi_put([(key, "v") for key in keys])
        store.fail_bucket(store.owners(keys[0])[0])
        assert store.multi_get(keys) == {key: "v" for key in keys}

    def test_multi_get_missing_key_raises_keyerror(self, store):
        store.put("present", "v")
        with pytest.raises(KeyError):
            store.multi_get(["present", "ghost"])

    def test_multi_get_all_replicas_down_raises_unavailable(self, store):
        store.put("k", "v")
        for owner in store.owners("k"):
            store.fail_bucket(owner)
        with pytest.raises(ProviderUnavailable):
            store.multi_get(["k"])

    def test_multi_get_empty(self, store):
        assert store.multi_get([]) == {}

    def test_multi_get_with_replication_above_bucket_count(self):
        """The owner chain is capped at the distinct bucket count; the
        batched rounds must respect that cap like the scalar path does
        (not index past the chain)."""
        store = DhtStore(["a", "b"], replication=3)
        store.put("k", "v")
        assert store.multi_get(["k"]) == {"k": "v"}
        with pytest.raises(KeyError):
            store.multi_get(["ghost"])
        for name in store.buckets:
            store.fail_bucket(name)
        with pytest.raises(ProviderUnavailable):
            store.multi_get(["k"])

    def test_multi_put_places_full_replication(self, store):
        keys = keys_with_distinct_primaries(store, 20)
        result = store.multi_put([(key, "v") for key in keys])
        assert result.clean
        assert sum(store.load_by_bucket().values()) == 2 * len(keys)

    def test_multi_put_reports_fully_unstored_keys(self, store):
        for owner in store.owners("k"):
            store.fail_bucket(owner)
        result = store.multi_put([("k", "v"), ("other", "w")])
        assert "k" in result.unstored
        assert "other" not in result.unstored

    def test_conditional_multi_put_is_idempotent_and_conflict_aware(self, store):
        assert store.multi_put([("k", "v")], conditional=True).clean
        # Identical retry: silent no-op.
        assert store.multi_put([("k", "v")], conditional=True).clean
        # Different value: reported, stored value untouched.
        result = store.multi_put([("k", "OTHER")], conditional=True)
        assert result.conflicts == {"k": "v"}
        assert store.get("k") == "v"

    def test_conflicting_conditional_put_leaves_lagging_replica_unwritten(
        self, store
    ):
        """A rejected conditional put must leave the replica set exactly
        as it found it: a replica that was behind (missed the original
        value) must not end up holding the *rejected* value — the old
        get-then-put path rejected without writing anything."""
        primary, secondary = store.owners("k")
        store.fail_bucket(secondary)
        store.multi_put([("k", "v1")], conditional=True)  # primary only
        store.recover_bucket(secondary)
        result = store.multi_put([("k", "v2")], conditional=True)
        assert result.conflicts == {"k": "v1"}
        assert "k" not in store.buckets[secondary]  # v2 withdrawn
        assert store.replica_values("k")[primary] == "v1"
        # The established value can still re-feed the straggler.
        store.multi_put([("k", "v1")], conditional=True)
        assert store.buckets[secondary].get("k") == "v1"

    def test_conditional_retry_refeeds_lagging_replica(self, store):
        """The single-hop conditional put beats the old get-then-put in
        one more way: a retry re-feeds replicas the first attempt
        missed instead of short-circuiting on the healthy copy."""
        primary, secondary = store.owners("k")
        store.fail_bucket(secondary)
        store.multi_put([("k", "v")], conditional=True)
        store.recover_bucket(secondary)
        assert "k" not in store.buckets[secondary]
        store.multi_put([("k", "v")], conditional=True)  # idempotent retry
        assert store.buckets[secondary].get("k") == "v"

    def test_multi_replica_values_matches_scalar(self, store):
        keys = keys_with_distinct_primaries(store, 6)
        store.multi_put([(key, "v") for key in keys])
        store.buckets[store.owners(keys[0])[1]].delete(keys[0])  # one lag
        store.fail_bucket(store.owners(keys[1])[0])  # one offline owner
        batched = store.multi_replica_values(keys)
        assert batched == {key: store.replica_values(key) for key in keys}

    def test_contains_is_one_probe_not_a_failover_get(self, store):
        store.put("k", "v")
        before = store.stats.snapshot()
        assert "k" in store
        assert "ghost" not in store
        after = store.stats.snapshot()
        assert after["round_trips"] - before["round_trips"] == 2
        assert after["keys_fetched"] == before["keys_fetched"]  # no value moved

    def test_contains_sees_any_online_holder(self, store):
        store.put("k", "v")
        store.fail_bucket(store.owners("k")[0])
        assert "k" in store
        for owner in store.owners("k"):
            store.fail_bucket(owner)
        assert "k" not in store  # all holders down: same as scalar path


class TestBucketLatency:
    def test_batch_pays_latency_once(self):
        store = DhtStore(["a", "b"], replication=1, latency=0.01)
        import time

        keys = [("k", i) for i in range(10)]
        start = time.perf_counter()
        store.multi_put([(key, "v") for key in keys])
        store.multi_get(keys)
        batched = time.perf_counter() - start
        start = time.perf_counter()
        for key in keys:
            store.get(key)
        scalar = time.perf_counter() - start
        # 2 buckets x (1 put + 1 get) = <= 4 delays batched vs 10 scalar.
        assert batched < scalar

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            DhtStore(["a"], latency=-0.1)
