"""Tests for the replicated DHT store."""

import pytest

from repro.dht import DhtStore
from repro.errors import ProviderUnavailable, ReplicationError


@pytest.fixture
def store():
    return DhtStore([f"mdp-{i}" for i in range(5)], replication=2)


class TestBasicOps:
    def test_put_get_roundtrip(self, store):
        store.put(("k", 1), "value")
        assert store.get(("k", 1)) == "value"
        assert ("k", 1) in store

    def test_missing_key(self, store):
        with pytest.raises(KeyError):
            store.get("ghost")
        assert "ghost" not in store

    def test_delete_idempotent(self, store):
        store.put("k", 1)
        store.delete("k")
        store.delete("k")
        assert "k" not in store

    def test_replication_places_n_copies(self, store):
        for i in range(200):
            store.put(("key", i), i)
        total = sum(store.load_by_bucket().values())
        assert total == 400  # 200 keys x 2 replicas

    def test_validation(self):
        with pytest.raises(ValueError):
            DhtStore([])
        with pytest.raises(ValueError):
            DhtStore(["a"], replication=0)


class TestFailureTolerance:
    def test_read_fails_over_to_replica(self, store):
        store.put("k", "v")
        primary = store.owners("k")[0]
        store.fail_bucket(primary)
        assert store.get("k") == "v"

    def test_write_succeeds_with_one_live_replica(self, store):
        primary, secondary = store.owners("k")
        store.fail_bucket(primary)
        store.put("k", "v")
        store.recover_bucket(primary)
        # Value must be readable even though only the secondary has it.
        assert store.get("k") == "v"
        assert "k" in store.buckets[secondary]

    def test_write_fails_with_all_replicas_down(self, store):
        for owner in store.owners("k"):
            store.fail_bucket(owner)
        with pytest.raises(ReplicationError):
            store.put("k", "v")

    def test_read_with_all_replicas_down(self, store):
        store.put("k", "v")
        for owner in store.owners("k"):
            store.fail_bucket(owner)
        with pytest.raises(ProviderUnavailable):
            store.get("k")

    def test_recovery_restores_content(self, store):
        store.put("k", "v")
        primary = store.owners("k")[0]
        store.fail_bucket(primary)
        store.recover_bucket(primary)
        assert store.buckets[primary].get("k") == "v"

    def test_replication_one_has_no_failover(self):
        store = DhtStore(["a", "b", "c"], replication=1)
        store.put("k", "v")
        store.fail_bucket(store.owners("k")[0])
        with pytest.raises(ProviderUnavailable):
            store.get("k")
