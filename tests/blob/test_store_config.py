"""StoreConfig: the validated construction surface of LocalBlobStore.

Covers the three contract points of the API redesign:

* ``LocalBlobStore(config=StoreConfig(...))`` is the canonical path;
* every one of the sixteen legacy keywords round-trips through the
  deprecation shim into the identical ``StoreConfig`` (with a
  ``DeprecationWarning``);
* ``validate()`` rejects the documented silently-broken combinations
  with messages that name the offending fields.
"""

import dataclasses

import pytest

from repro.blob import LocalBlobStore, StoreConfig
from repro.blob.provider_manager import RandomPolicy

#: One non-default value per field, exercising the whole surface.
NON_DEFAULTS = dict(
    data_providers=5,
    metadata_providers=3,
    block_size="32KB",
    replication=2,
    metadata_replication=2,
    placement="least_loaded",
    seed=7,
    io_workers=2,
    io_scheduler="async",
    max_in_flight=256,
    provider_latency=0.001,
    metadata_latency=0.002,
    metadata_cache_nodes=64,
    metadata_batching=False,
    vman_latency=0.003,
    group_commit=False,
    publish_window=0.0,
    overlap_publish=True,
)


class TestStoreConfig:
    def test_field_set_matches_the_constructor_keywords(self):
        assert set(StoreConfig.__dataclass_fields__) == set(NON_DEFAULTS)

    def test_defaults_validate(self):
        config = StoreConfig()
        assert config.validate() is config

    def test_derived_views(self):
        config = StoreConfig(data_providers=2, metadata_providers=2, block_size="1KB")
        assert config.provider_names() == ["provider-000", "provider-001"]
        assert config.metadata_bucket_names() == ["mdp-000", "mdp-001"]
        assert config.block_size_bytes() == 1024

    def test_explicit_names_pass_through(self):
        config = StoreConfig(data_providers=["a", "b"], metadata_providers=["m"])
        assert config.provider_names() == ["a", "b"]
        assert config.metadata_bucket_names() == ["m"]

    def test_replace_returns_a_modified_copy(self):
        base = StoreConfig()
        tweaked = base.replace(replication=3, data_providers=8)
        assert tweaked.replication == 3 and base.replication == 1
        assert isinstance(tweaked, StoreConfig)


class TestCanonicalConstruction:
    def test_config_object_is_canonical_and_warning_free(self, recwarn):
        store = LocalBlobStore(
            config=StoreConfig(data_providers=3, block_size="4KB", replication=2)
        )
        assert [w for w in recwarn.list if w.category is DeprecationWarning] == []
        assert store.block_size == 4096
        assert store.replication == 2
        assert len(store.providers) == 3
        assert store.config.data_providers == 3
        store.close()

    def test_no_arguments_builds_the_default_config(self):
        store = LocalBlobStore()
        assert store.config == StoreConfig()
        store.close()

    def test_invalid_config_is_rejected_at_construction(self):
        with pytest.raises(ValueError, match="replication"):
            LocalBlobStore(config=StoreConfig(data_providers=2, replication=5))

    def test_config_must_be_a_storeconfig(self):
        with pytest.raises(TypeError, match="StoreConfig"):
            LocalBlobStore(config={"data_providers": 4})


class TestLegacyShim:
    def test_every_legacy_keyword_round_trips(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            store = LocalBlobStore(**NON_DEFAULTS)
        expected = dataclasses.asdict(StoreConfig(**NON_DEFAULTS))
        assert dataclasses.asdict(store.config) == expected
        assert store.block_size == 32 * 1024
        assert store.replication == 2
        store.close()

    def test_single_legacy_keyword_keeps_other_defaults(self):
        with pytest.warns(DeprecationWarning):
            store = LocalBlobStore(data_providers=2)
        assert store.config == StoreConfig(data_providers=2)
        store.close()

    def test_unknown_keyword_is_a_type_error(self):
        with pytest.raises(TypeError, match="num_providers"):
            LocalBlobStore(num_providers=4)

    def test_mixing_config_and_legacy_keywords_is_refused(self):
        with pytest.raises(TypeError):
            LocalBlobStore(config=StoreConfig(), data_providers=4)

    def test_shim_still_validates(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="overlap_publish"):
                LocalBlobStore(overlap_publish=True, io_workers=0)


class TestValidation:
    @pytest.mark.parametrize(
        ("changes", "match"),
        [
            (dict(data_providers=0), "at least one provider"),
            (dict(metadata_providers=0), "at least one bucket"),
            (dict(data_providers=["a", "a"]), "duplicate data-provider"),
            (dict(metadata_providers=["m", "m"]), "duplicate metadata-bucket"),
            (dict(block_size=0), "block_size"),
            (dict(replication=0), "replication must be >= 1"),
            (dict(data_providers=2, replication=3), "exceeds the 2 configured"),
            (dict(metadata_replication=0), "metadata_replication must be >= 1"),
            (dict(metadata_providers=1, metadata_replication=2), "exceeds the 1"),
            (dict(placement="zigzag"), "unknown placement"),
            (dict(io_workers=-1), "io_workers"),
            (dict(io_scheduler="fibers"), "io_scheduler"),
            (dict(max_in_flight=0), "max_in_flight"),
            (dict(provider_latency=-0.1), "provider_latency"),
            (dict(metadata_latency=-0.1), "metadata_latency"),
            (dict(vman_latency=-0.1), "vman_latency"),
            (dict(metadata_cache_nodes=-1), "metadata_cache_nodes"),
            (dict(publish_window=-0.1), "publish_window"),
            (dict(overlap_publish=True, io_workers=0), "requires io_workers > 0"),
            (dict(publish_window=0.01, group_commit=False), "dead weight"),
        ],
    )
    def test_rejects_invalid_combo(self, changes, match):
        with pytest.raises(ValueError, match=match):
            StoreConfig(**changes).validate()

    def test_bool_provider_count_is_the_documented_typo_trap(self):
        with pytest.raises(ValueError, match="count or name list"):
            StoreConfig(data_providers=True).validate()

    def test_placement_instance_is_accepted(self):
        config = StoreConfig(placement=RandomPolicy())
        assert config.validate() is config
        store = LocalBlobStore(config=config)
        store.close()

    def test_async_scheduler_satisfies_the_overlap_requirement(self):
        # The overlap launches its scatter on the engine; the async
        # scheduler IS an engine even with io_workers=0.
        config = StoreConfig(
            overlap_publish=True, io_workers=0, io_scheduler="async"
        )
        assert config.validate() is config

    def test_async_scheduler_selects_the_async_engine(self):
        from repro.blob import AsyncIOEngine, ParallelIOEngine

        with LocalBlobStore(
            config=StoreConfig(io_scheduler="async", max_in_flight=32)
        ) as store:
            assert isinstance(store.io_engine, AsyncIOEngine)
            assert store.io_engine.max_in_flight == 32
        with LocalBlobStore(config=StoreConfig(io_workers=2)) as store:
            assert isinstance(store.io_engine, ParallelIOEngine)
        with LocalBlobStore(config=StoreConfig()) as store:
            assert store.io_engine is None
