"""Zero-copy data plane: payload views, vectored gather, CopyStats.

DESIGN.md §11: the block path hands ``memoryview`` windows end-to-end —
writes chunk the caller's buffer without copying (providers freeze on
store, copy-on-publish), reads gather every block into ONE preallocated
buffer.  These tests pin the ownership rules, prove reads stay
byte-exact against a reference model across unaligned offsets, partial
trailing blocks and tombstone zero ranges, and gate the byte counters:
a read of N bytes must never materialize more than N bytes client-side.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blob import (
    BytesPayload,
    CopyStats,
    LocalBlobStore,
    StoreConfig,
    SyntheticPayload,
    concat,
)
from repro.errors import InvalidRange, ProviderUnavailable
from repro.util.chunks import dest_windows

BS = 16


def make_store(**kwargs):
    kwargs.setdefault("data_providers", 4)
    kwargs.setdefault("metadata_providers", 2)
    kwargs.setdefault("block_size", BS)
    return LocalBlobStore(config=StoreConfig(**kwargs))


def fail_publish_for_version(store, version):
    """Fail every real-patch publish of *version* (forces a tombstone)."""
    real = store.metadata.put_patch

    def failing_put_patch(nodes):
        if any(node.key.version == version for node in nodes):
            raise ProviderUnavailable("all replicas of the owning bucket are down")
        return real(nodes)

    store.metadata.put_patch = failing_put_patch
    return lambda: setattr(store.metadata, "put_patch", real)


class TestPayloadViews:
    def test_slice_aliases_not_copies(self):
        backing = bytearray(b"0123456789")
        view = BytesPayload(backing).slice(2, 4)
        assert view.tobytes() == b"2345"
        backing[2] = ord(b"X")  # visible through the view: no copy was made
        assert view.tobytes() == b"X345"

    def test_view_of_bytes_is_readonly(self):
        assert BytesPayload(b"abc").view().readonly
        assert BytesPayload(b"abc").readonly
        assert not BytesPayload(bytearray(b"abc")).readonly

    def test_readinto_fills_window(self):
        dest = bytearray(10)
        n = BytesPayload(b"abcdef").readinto(memoryview(dest)[2:8], start=1, length=4)
        assert n == 4
        assert bytes(dest) == b"\x00\x00bcde\x00\x00\x00\x00"

    def test_readinto_rejects_readonly_dest(self):
        with pytest.raises((TypeError, ValueError)):
            BytesPayload(b"abcd").readinto(memoryview(b"abcd"))

    def test_readinto_rejects_overflow(self):
        with pytest.raises(ValueError):
            BytesPayload(b"abcdef").readinto(bytearray(3))

    def test_freeze_copies_only_mutable_backing(self):
        immutable = BytesPayload(b"abc")
        assert immutable.freeze() is immutable
        backing = bytearray(b"abc")
        frozen = BytesPayload(backing).freeze()
        assert frozen.readonly
        backing[0] = ord(b"Z")
        assert frozen.tobytes() == b"abc"

    def test_concat_gathers_without_join(self):
        parts = [BytesPayload(b"ab"), BytesPayload(bytearray(b"cd")).slice(1, 1)]
        assert concat(parts).tobytes() == b"abd"
        assert concat([]).tobytes() == b""
        mixed = concat([BytesPayload(b"ab"), SyntheticPayload(3)])
        assert isinstance(mixed, SyntheticPayload) and mixed.size == 5

    def test_dest_windows_are_disjoint_and_cover(self):
        buffer = bytearray(30)
        windows = dest_windows(buffer, 10, 30, 16)
        assert [w.nbytes for _, w in windows] == [6, 16, 8]
        for i, (_, window) in enumerate(windows):
            window[:] = bytes([i]) * window.nbytes
        assert bytes(buffer) == b"\x00" * 6 + b"\x01" * 16 + b"\x02" * 8

    def test_dest_windows_rejects_readonly_and_short_buffers(self):
        with pytest.raises(TypeError):
            dest_windows(b"\x00" * 30, 0, 30, 16)
        with pytest.raises(ValueError):
            dest_windows(bytearray(8), 0, 30, 16)


class TestCopyOnPublish:
    def test_mutating_the_callers_buffer_after_write_is_harmless(self):
        store = make_store()
        blob = store.create()
        buffer = bytearray(b"a" * (2 * BS))
        store.append(blob, buffer)
        buffer[:] = b"z" * len(buffer)  # writer reuses its buffer
        assert store.read(blob) == b"a" * (2 * BS)
        store.close()

    def test_memoryview_input_round_trips(self):
        store = make_store()
        blob = store.create()
        data = bytes(range(256)) * ((3 * BS) // 256 + 1)
        data = data[: 3 * BS - 5]
        store.append(blob, b"x" * BS)
        store.write(blob, BS, memoryview(data))
        assert store.read(blob) == b"x" * BS + data
        store.close()

    def test_immutable_bytes_are_stored_without_copy(self):
        store = make_store()
        blob = store.create()
        store.copy_stats.reset()
        store.append(blob, b"a" * (4 * BS))
        stats = store.copy_stats.snapshot()
        assert stats["bytes_copied"] == 0  # freeze elided: input is immutable
        assert stats["bytes_transferred"] == 4 * BS
        store.close()

    def test_mutable_input_is_frozen_exactly_once(self):
        store = make_store(replication=1)
        blob = store.create()
        store.copy_stats.reset()
        store.append(blob, bytearray(b"a" * (4 * BS)))
        stats = store.copy_stats.snapshot()
        assert stats["bytes_copied"] == 4 * BS  # one copy-on-publish per block
        store.close()


@pytest.mark.parametrize("io_workers", [0, 4])
class TestReadBudget:
    """The tripwire: N-byte reads materialize <= N bytes client-side."""

    def test_multi_block_read_copies_at_most_once(self, io_workers):
        store = make_store(io_workers=io_workers)
        blob = store.create()
        data = bytes(range(256))[: 5 * BS + 7]
        store.append(blob, data[: 5 * BS])
        store.write(blob, 5 * BS, data[5 * BS :])
        for offset, size in [(0, len(data)), (3, 2 * BS), (BS - 1, BS + 2), (0, 1)]:
            store.copy_stats.reset()
            assert store.read(blob, offset=offset, size=size) == data[offset : offset + size]
            stats = store.copy_stats.snapshot()
            assert stats["bytes_copied"] <= size, (offset, size, stats)
            assert stats["bytes_result"] == size
        store.close()

    def test_whole_block_read_aliases_with_zero_copies(self, io_workers):
        store = make_store(io_workers=io_workers)
        blob = store.create()
        store.append(blob, b"ab" * BS)
        store.copy_stats.reset()
        payload = store.read_payload(blob, offset=BS, size=BS)
        assert payload.tobytes() == b"ab" * (BS // 2)
        stats = store.copy_stats.snapshot()
        assert stats["bytes_copied"] == 0  # aliased the stored block
        assert stats["bytes_transferred"] == BS
        assert store.copy_stats.layers()["read.alias"]["transferred"] == BS
        store.close()

    def test_tombstone_zeros_cost_no_copies(self, io_workers):
        store = make_store(io_workers=io_workers)
        blob = store.create()
        store.append(blob, b"a" * BS)
        undo = fail_publish_for_version(store, 2)
        with pytest.raises(ProviderUnavailable):
            store.append(blob, b"x" * (2 * BS))
        undo()
        store.append(blob, b"c" * BS)
        expected = b"a" * BS + b"\x00" * (2 * BS) + b"c" * BS
        store.copy_stats.reset()
        assert store.read(blob) == expected
        stats = store.copy_stats.snapshot()
        # Only the two real blocks are gathered; the zero range rides
        # the preallocated (pre-zeroed) buffer for free.
        assert stats["bytes_copied"] == 2 * BS
        store.close()

    def test_out_of_range_read_still_rejected(self, io_workers):
        store = make_store(io_workers=io_workers)
        blob = store.create()
        store.append(blob, b"a" * BS)
        with pytest.raises(InvalidRange):
            store.read(blob, offset=0, size=BS + 1)
        with pytest.raises(InvalidRange):
            store.read(blob, offset=-1, size=1)
        store.close()


class ModelBlob:
    """Reference: the full contents, bytes in a plain bytearray."""

    def __init__(self):
        self.data = bytearray()

    def abort(self, offset, length):
        """Apply tombstone semantics (DESIGN.md §7): the aborted write's
        size sticks; blocks it would have *created or extended* read as
        whole-block zeros, blocks it merely overwrote keep prior data."""
        prior = len(self.data)
        at = prior if offset is None else offset
        size_after = max(prior, at + length)
        self.data.extend(bytes(size_after - prior))
        for idx in range(at // BS, -(-(at + length) // BS)):
            bstart = idx * BS
            need = min(BS, size_after - bstart)
            prior_len = min(BS, max(0, prior - bstart))
            if prior_len != need:
                self.data[bstart : bstart + need] = bytes(need)


@st.composite
def histories(draw):
    """A mixed history: healthy appends, overwrites and aborted writes."""
    ops = []
    size = 0
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        kind = draw(
            st.sampled_from(
                ["append", "abort"] + (["overwrite"] if size >= BS else [])
            )
        )
        fill = draw(st.integers(min_value=1, max_value=255))
        nblocks = draw(st.integers(min_value=1, max_value=3))
        if kind == "overwrite":
            start = draw(st.integers(min_value=0, max_value=size // BS - 1))
            count = draw(st.integers(min_value=1, max_value=size // BS - start))
            ops.append(("overwrite", start * BS, bytes([fill]) * (count * BS)))
            continue
        tail = draw(st.integers(min_value=0, max_value=BS - 1))
        length = nblocks * BS + tail
        if size % BS != 0:
            # trailing partial block: appends must go through an aligned
            # overwrite of the tail (the BSFS resume pattern)
            offset = (size // BS) * BS
            length += size - offset
            ops.append((kind, offset, bytes([fill]) * length))
            size = offset + length  # aborts keep the size too (tombstone)
            continue
        ops.append((kind, None, bytes([fill]) * length))
        size += length
    return ops


class TestRoundTripProperty:
    @given(ops=histories(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_reads_match_reference_model_and_copy_budget(self, ops, data):
        store = make_store()
        model = ModelBlob()
        blob = store.create()
        for kind, offset, payload in ops:
            if kind == "abort":
                version = store.latest_version(blob) + 1
                undo = fail_publish_for_version(store, version)
                with pytest.raises(ProviderUnavailable):
                    if offset is None:
                        store.append(blob, payload)
                    else:
                        store.write(blob, offset, payload)
                undo()
                model.abort(offset, len(payload))
            elif offset is None:
                store.append(blob, payload)
                model.data.extend(payload)
            else:
                store.write(blob, offset, payload)
                end = offset + len(payload)
                model.data[offset:end] = payload
        expected = bytes(model.data)
        assert store.read(blob) == expected
        if expected:
            offset = data.draw(
                st.integers(min_value=0, max_value=len(expected) - 1), label="offset"
            )
            size = data.draw(
                st.integers(min_value=0, max_value=len(expected) - offset),
                label="size",
            )
            store.copy_stats.reset()
            assert store.read(blob, offset=offset, size=size) == (
                expected[offset : offset + size]
            )
            assert store.copy_stats.bytes_copied <= size
        store.close()


class TestCopyStats:
    def test_record_and_layers(self):
        stats = CopyStats()
        stats.record("read.gather", copied=10, transferred=10)
        stats.record("read.gather", copied=5, transferred=5)
        stats.record("provider.put", transferred=7)
        stats.record("read.result", result=15)
        snap = stats.snapshot()
        assert snap == {
            "bytes_copied": 15,
            "bytes_transferred": 22,
            "bytes_result": 15,
        }
        layers = stats.layers()
        assert layers["read.gather"] == {"copied": 15, "transferred": 15, "result": 0}
        assert layers["provider.put"]["transferred"] == 7
        stats.reset()
        assert stats.snapshot()["bytes_transferred"] == 0
        assert stats.layers() == {}
