"""AsyncIOEngine: the coroutine scheduler behind io_scheduler="async".

Pins the DESIGN.md §13 contract: same surface as ParallelIOEngine,
but in-flight transfers are coroutines on ONE event loop — bounded by
the in-flight window, capped per destination, cancelled together on
the first error, and costing a handful of OS threads no matter how
many transfers are in flight.
"""

import asyncio
import threading
import time
from concurrent.futures import CancelledError

import pytest

from repro.blob import AsyncIOEngine, LocalBlobStore, StoreConfig


@pytest.fixture
def engine():
    eng = AsyncIOEngine(max_in_flight=64, helpers=2)
    yield eng
    eng.shutdown()


class TestMap:
    def test_results_in_input_order(self, engine):
        assert engine.map(lambda x: x * 2, range(50)) == [x * 2 for x in range(50)]

    def test_awaits_the_async_twin(self, engine):
        calls = []

        async def twin(x):
            await asyncio.sleep(0)
            calls.append(x)
            return x + 100

        assert engine.map(lambda x: x, [1, 2, 3], afn=twin) == [101, 102, 103]
        assert sorted(calls) == [1, 2, 3]

    def test_sync_fn_returning_a_coroutine_is_awaited(self, engine):
        # One plain def returning a coroutine works without afn=.
        async def inner(x):
            await asyncio.sleep(0)
            return -x

        assert engine.map(lambda x: inner(x), [1, 2]) == [-1, -2]

    def test_empty_items(self, engine):
        assert engine.map(lambda x: x, []) == []

    def test_first_error_cancels_the_siblings(self, engine):
        finished = []

        async def twin(x):
            if x == 0:
                raise ValueError("x0")
            await asyncio.sleep(0.05)
            finished.append(x)
            return x

        start = time.perf_counter()
        with pytest.raises(ValueError, match="x0"):
            engine.map(lambda x: x, range(40), afn=twin)
        # The 39 sleeping siblings were cancelled at their await, not
        # drained: the call returns long before their 50 ms elapse.
        assert time.perf_counter() - start < 0.045
        assert finished == []

    def test_base_exception_escapes(self, engine):
        async def twin(x):
            await asyncio.sleep(0)
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            engine.map(lambda x: x, [1], afn=twin)

    def test_in_flight_window_is_enforced(self):
        eng = AsyncIOEngine(max_in_flight=4)
        try:

            async def twin(x):
                await asyncio.sleep(0.002)
                return x

            eng.map(lambda x: x, range(64), afn=twin)
            snap = eng.stats.snapshot()
            assert 1 <= snap["in_flight_hwm"] <= 4
            assert snap["tasks_started"] == snap["tasks_finished"] == 64
        finally:
            eng.shutdown()

    def test_per_dest_cap_serializes_a_hot_destination(self):
        eng = AsyncIOEngine(max_in_flight=1024, per_dest=2)
        try:
            peak = {"hot": 0, "now": 0}
            lock = threading.Lock()

            async def twin(x):
                with lock:
                    peak["now"] += 1
                    peak["hot"] = max(peak["hot"], peak["now"])
                await asyncio.sleep(0.005)
                with lock:
                    peak["now"] -= 1
                return x

            eng.map(lambda x: x, range(16), afn=twin, dest=lambda x: "hot")
            assert peak["hot"] <= 2
            # Without a dest key the same load runs wide open.
            peak["hot"] = peak["now"] = 0
            eng.map(lambda x: x, range(16), afn=twin)
            assert peak["hot"] > 2
        finally:
            eng.shutdown()


class TestMapSettle:
    def test_pairs_in_order_never_fail_fast(self, engine):
        async def twin(x):
            await asyncio.sleep(0)
            if x == 1:
                raise KeyError("one")
            return x * 10

        pairs = engine.map_settle(lambda x: x, [0, 1, 2], afn=twin)
        assert pairs[0] == (0, None)
        assert pairs[2] == (20, None)
        assert isinstance(pairs[1][1], KeyError)

    def test_an_error_does_not_cancel_siblings(self, engine):
        finished = []

        async def twin(x):
            if x == 0:
                raise RuntimeError("early")
            await asyncio.sleep(0.01)
            finished.append(x)
            return x

        pairs = engine.map_settle(lambda x: x, range(8), afn=twin)
        assert isinstance(pairs[0][1], RuntimeError)
        assert sorted(finished) == list(range(1, 8))


class TestSubmitEach:
    def test_returns_settleable_futures(self, engine):
        async def twin(x):
            await asyncio.sleep(0.001)
            return x * 3

        futures = engine.submit_each(lambda x: x, range(8), afn=twin)
        assert [f.result() for f in futures] == [x * 3 for x in range(8)]

    def test_first_error_cancels_unstarted_siblings(self, engine):
        async def twin(x):
            if x == 0:
                raise RuntimeError("first dies")
            await asyncio.sleep(0.05)
            return x

        futures = engine.submit_each(lambda x: x, range(8), afn=twin)
        with pytest.raises(RuntimeError, match="first dies"):
            futures[0].result()
        for future in futures[1:]:
            with pytest.raises((CancelledError, asyncio.CancelledError)):
                future.result()

    def test_rejected_from_the_loop_thread(self, engine):
        def nested(_):
            return engine.submit_each(lambda x: x, [1])

        async def twin(x):
            # Runs ON the loop thread via a sync fn below.
            return x

        with pytest.raises(RuntimeError, match="loop"):
            engine.map(nested, [None])


class TestSubmitAndNesting:
    def test_submit_runs_on_a_helper_thread(self, engine):
        loop_thread = engine._thread.ident
        ident = engine.submit(threading.get_ident).result()
        assert ident != loop_thread
        assert ident != threading.get_ident()

    def test_nested_map_from_a_helper_blocks_on_the_loop(self, engine):
        async def twin(x):
            await asyncio.sleep(0.001)
            return x * x

        def task(_):
            return engine.map(lambda x: x * x, range(4), afn=twin)

        assert engine.submit(task, None).result() == [0, 1, 4, 9]

    def test_map_from_the_loop_thread_runs_inline(self, engine):
        # An engine task (sync segment running ON the loop) that fans
        # out again cannot await; the nested map must run inline.
        def nested(_):
            assert engine.in_worker
            return engine.map(lambda y: y + 1, range(3))

        assert engine.map(nested, [None]) == [[1, 2, 3]]

    def test_in_worker_is_loop_thread_only(self, engine):
        assert not engine.in_worker
        assert engine.map(lambda _: engine.in_worker, [None]) == [True]
        assert engine.submit(lambda: engine.in_worker).result() is False


class TestStats:
    def test_counters_balance_and_thread_count_stays_small(self, engine):
        async def twin(x):
            await asyncio.sleep(0.001)
            return x

        engine.map(lambda x: x, range(200), afn=twin)
        engine.submit(lambda: None).result()
        snap = engine.stats.snapshot()
        assert snap["tasks_started"] == snap["tasks_finished"] == 201
        assert snap["in_flight"] == 0
        assert snap["in_flight_hwm"] >= 2
        # Loop thread + at most 2 helpers — never a thread per task.
        assert snap["threads_started"] <= 3

    def test_reset_keeps_the_thread_count(self, engine):
        engine.submit(lambda: None).result()
        engine.stats.reset()
        snap = engine.stats.snapshot()
        assert snap["tasks_started"] == 0
        assert snap["threads_started"] >= 1

    def test_queue_wait_is_recorded_when_the_window_is_full(self):
        eng = AsyncIOEngine(max_in_flight=1)
        try:

            async def twin(x):
                await asyncio.sleep(0.002)
                return x

            eng.map(lambda x: x, range(5), afn=twin)
            # 4 tasks waited behind the 1-slot window.
            assert eng.stats.snapshot()["queue_wait_total"] > 0.004
        finally:
            eng.shutdown()


class TestLifecycle:
    def test_shutdown_is_idempotent_and_rejects_new_work(self):
        eng = AsyncIOEngine(max_in_flight=8)
        eng.shutdown()
        eng.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            eng.map(lambda x: x, [1])
        with pytest.raises(RuntimeError, match="shut down"):
            eng.submit(lambda: None)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_in_flight"):
            AsyncIOEngine(max_in_flight=0)
        with pytest.raises(ValueError, match="per_dest"):
            AsyncIOEngine(per_dest=-1)

    def test_context_manager(self):
        with AsyncIOEngine(max_in_flight=8) as eng:
            assert eng.map(lambda x: x, [1, 2]) == [1, 2]


class TestStoreIntegration:
    def test_async_store_gather_uses_few_threads(self):
        # A many-block read on the async scheduler: the simulated
        # provider latencies interleave on the loop, and the engine
        # never grows a thread per block.
        config = StoreConfig(
            data_providers=8,
            block_size=512,
            provider_latency=0.001,
            io_scheduler="async",
            max_in_flight=4096,
        )
        with LocalBlobStore(config=config) as store:
            blob = store.create(block_size=512)
            data = bytes(range(256)) * 128  # 32 KiB -> 64 blocks
            version = store.append(blob, data)
            assert store.read(blob, 0, len(data), version=version) == data
            snap = store.io_engine.stats.snapshot()
            assert snap["threads_started"] <= 8
            assert snap["in_flight"] == 0
            assert snap["in_flight_hwm"] > 8  # wider than any thread pool

    def test_async_store_write_failure_rolls_back(self):
        config = StoreConfig(
            data_providers=4,
            block_size=1024,
            replication=2,
            io_scheduler="async",
        )
        with LocalBlobStore(config=config) as store:
            blob = store.create(block_size=1024)
            store.append(blob, b"a" * 4096)
            baseline = {
                name: provider.block_count
                for name, provider in store.providers.items()
            }
            store.providers["provider-001"].fail()
            with pytest.raises(Exception):
                store.append(blob, b"b" * 4096)
            store.providers["provider-001"].recover()
            # No orphaned replicas from the failed scatter.
            for name, provider in store.providers.items():
                assert provider.block_count == baseline[name]
