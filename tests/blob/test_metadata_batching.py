"""The batched metadata pipeline through the whole store (DESIGN.md §9).

The paper stores tree nodes in a DHT "to favor efficient concurrent
access to metadata" (§III-A.3); these tests pin down what that buys in
this reproduction: a read's descent costs O(tree depth) batched round
trips (counter-verified) instead of O(nodes visited), the node cache
never serves a value the three sanctioned mutation paths have
superseded, and concurrent readers on a published snapshot stay
byte-identical while writers publish through the batched path.
"""

import threading

import pytest

from repro.blob import LeafNode, LocalBlobStore, NodeKey, StoreConfig, collect_garbage
from repro.errors import VersionNotFound

BS = 16


def make_store(**kwargs):
    defaults = dict(data_providers=4, metadata_providers=6, block_size=BS)
    defaults.update(kwargs)
    return LocalBlobStore(config=StoreConfig(**defaults))


def tree_depth(nblocks: int) -> int:
    """Levels of a segment tree covering *nblocks* blocks."""
    depth = 1
    while (1 << (depth - 1)) < nblocks:
        depth += 1
    return depth


class TestRoundTripBound:
    def test_read_round_trips_scale_with_depth_not_nodes(self):
        """The acceptance bound: an N-block read performs O(tree depth)
        batched metadata round trips; the scalar baseline pays one per
        node visited (2N - 1 for a full single-version tree)."""
        nblocks = 32
        store = make_store(metadata_cache_nodes=0)  # count the raw descent
        blob = store.create()
        store.append(blob, b"d" * (nblocks * BS))
        stats = store.metadata.store.stats
        stats.reset()
        assert store.read(blob) == b"d" * (nblocks * BS)
        snap = stats.snapshot()
        assert snap["round_trips"] == tree_depth(nblocks)  # 6 for 32 blocks
        assert snap["keys_fetched"] == 2 * nblocks - 1
        store.close()

    def test_sequential_baseline_pays_per_node(self):
        nblocks = 32
        store = make_store(metadata_batching=False, metadata_cache_nodes=0)
        blob = store.create()
        store.append(blob, b"d" * (nblocks * BS))
        stats = store.metadata.store.stats
        stats.reset()
        assert store.read(blob) == b"d" * (nblocks * BS)
        assert stats.snapshot()["round_trips"] == 2 * nblocks - 1
        store.close()

    def test_partial_range_visits_only_its_paths(self):
        store = make_store(metadata_cache_nodes=0)
        blob = store.create()
        store.append(blob, b"d" * (32 * BS))
        stats = store.metadata.store.stats
        stats.reset()
        assert store.read(blob, offset=5 * BS, size=BS) == b"d" * BS
        snap = stats.snapshot()
        assert snap["round_trips"] <= tree_depth(32)
        assert snap["keys_fetched"] == tree_depth(32)  # one root-to-leaf path
        store.close()

    def test_batched_and_sequential_descents_agree(self):
        """Same bytes through both pipelines, including multi-version
        trees with shared subtrees and a tombstone's redirect chase."""
        batched = make_store()
        sequential = make_store(metadata_batching=False, metadata_cache_nodes=0)
        for store in (batched, sequential):
            blob = store.create("same")
            store.append(blob, b"a" * (7 * BS))
            store.write(blob, 2 * BS, b"b" * (2 * BS))
            store.append(blob, b"c" * BS)
        for version in (1, 2, 3):
            assert batched.read("same", version=version) == sequential.read(
                "same", version=version
            )
            for offset, size in ((3 * BS, 2 * BS), (6 * BS, BS)):
                assert batched.read(
                    "same", offset=offset, size=size, version=version
                ) == sequential.read(
                    "same", offset=offset, size=size, version=version
                )
        batched.close()
        sequential.close()

    def test_batched_descent_fails_over_between_replicas(self):
        store = make_store(metadata_replication=2)
        blob = store.create()
        store.append(blob, b"m" * (16 * BS))
        store.metadata.store.fail_bucket(sorted(store.metadata.store.buckets)[0])
        assert store.read(blob) == b"m" * (16 * BS)
        store.close()


class TestCacheCoherence:
    def test_repeat_reads_hit_the_cache(self):
        store = make_store()
        blob = store.create()
        store.append(blob, b"r" * (16 * BS))
        assert store.read(blob) == b"r" * (16 * BS)
        before = store.metadata.store.stats.snapshot()
        assert store.read(blob) == b"r" * (16 * BS)
        after = store.metadata.store.stats.snapshot()
        assert after["keys_fetched"] == before["keys_fetched"]  # all cached
        assert store.metadata.cache.hit_rate > 0.4
        store.close()

    def test_gc_sweep_invalidates_cached_nodes(self):
        """Cache-invalidation path #2: a swept node must not survive in
        any client cache, or a descent could resurrect collected
        garbage."""
        store = make_store()
        blob = store.create()
        store.append(blob, b"a" * (4 * BS))  # v1
        store.write(blob, 0, b"b" * BS)  # v2 rewrites block 0
        assert store.read(blob, version=1) == b"a" * (4 * BS)  # caches v1
        swept_key = NodeKey(blob, 1, 0, 1)  # v1's block-0 leaf: garbage at v2
        assert store.metadata.get_node(swept_key)  # cached for sure
        collect_garbage(store, blob, retain_from=2)
        with pytest.raises(VersionNotFound):
            store.metadata.get_node(swept_key)
        # Retained snapshot still reads (shared v1 leaves survive).
        assert store.read(blob, version=2) == b"b" * BS + b"a" * (3 * BS)
        store.close()

    def test_write_abort_force_publish_supersedes_cached_real_nodes(self):
        """Cache-invalidation path #1: a client that cached a doomed
        write's partially-published real node must see the tombstone's
        filler after the abort force-publishes it — never the dead
        write's leaf (whose block was rolled back)."""
        from repro.errors import ProviderUnavailable

        store = make_store()
        blob = store.create()
        store.append(blob, b"a" * (2 * BS))  # v1
        real_patch = store.metadata.put_patch
        state = {}

        def land_one_then_fail(nodes):
            for node in nodes:
                if node.key.version == 2 and isinstance(node, LeafNode):
                    real_patch([node])  # the real leaf lands ...
                    state["key"] = node.key
                    # ... and a concurrent client caches it (hint-woven
                    # descents may touch a peer's nodes pre-publication).
                    assert store.metadata.get_node(node.key) == node
                    raise ProviderUnavailable("metadata outage")
            raise ProviderUnavailable("metadata outage")

        store.metadata.put_patch = land_one_then_fail
        with pytest.raises(ProviderUnavailable):
            store.append(blob, b"x" * (2 * BS))  # v2 dies mid-publish
        store.metadata.put_patch = real_patch

        assert store.snapshot(blob, 2).tombstone
        filler = store.metadata.get_node(state["key"])
        assert not (
            isinstance(filler, LeafNode) and not filler.block.is_zero
        ), "cached pre-tombstone real leaf served after force-publish"
        assert store.read(blob, version=2) == b"a" * (2 * BS) + bytes(2 * BS)
        store.close()


class TestSnapshotIsolation:
    def test_concurrent_readers_stay_byte_identical_during_publishes(self):
        """Readers pinned to version v must read identical bytes while
        a writer publishes v+1..v+K through the batched path — node
        immutability plus snapshot versioning, observed end to end."""
        store = make_store(io_workers=4, metadata_replication=2)
        blob = store.create()
        store.append(blob, b"s" * (8 * BS))  # v1: the pinned snapshot
        expected = b"s" * (8 * BS)
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                try:
                    if store.read(blob, version=1) != expected:
                        failures.append("reader saw non-identical bytes")
                        return
                except Exception as exc:  # pragma: no cover - diagnostic
                    failures.append(repr(exc))
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        try:
            for i in range(8):
                store.append(blob, bytes([65 + i]) * BS)
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert failures == []
        assert store.latest_version(blob) == 9
        # And the writer's snapshots read back correctly afterwards.
        assert store.read(blob, version=1) == expected
        assert store.read(blob)[: 8 * BS] == expected
        store.close()
