"""Failed replicated writes must leave no trace (paper §III-D).

"If, for some reason, writing of a block fails, then the whole write
fails."  The seed implementation honoured the *failure* half but not
the cleanup half: replicas already stored by the doomed write stranded
forever on their providers, inflating ``block_count``/``stored_bytes``
and permanently skewing least-loaded placement.  These are the
regression tests for the rollback.
"""

import pytest

from repro.blob import LocalBlobStore, collect_garbage
from repro.errors import InvalidRange, ProviderUnavailable

BS = 16


def snapshot_provider_state(store):
    return {
        name: (p.block_count, p.stored_bytes) for name, p in store.providers.items()
    }


@pytest.mark.parametrize("io_workers", [0, 4])
class TestFailedWriteRollback:
    def test_issue_repro_two_providers_one_fails_no_orphan(self, io_workers):
        # The ISSUE repro: 2 providers, replication=2, one provider dies
        # *without telling the provider manager* (so allocation still
        # targets it), then append.  The put to the dead provider fails;
        # the replica already stored on the live one must be deleted.
        store = LocalBlobStore(
            data_providers=2,
            metadata_providers=2,
            block_size=BS,
            replication=2,
            io_workers=io_workers,
        )
        blob = store.create()
        pre_providers = snapshot_provider_state(store)
        pre_allocator = store.provider_manager.block_counts()

        store.providers["provider-001"].fail()
        with pytest.raises(ProviderUnavailable):
            store.append(blob, b"x" * BS)

        assert snapshot_provider_state(store) == pre_providers
        assert store.provider_manager.block_counts() == pre_allocator
        store.close()

    def test_multi_block_failure_rolls_back_every_stored_replica(self, io_workers):
        store = LocalBlobStore(
            data_providers=4,
            metadata_providers=2,
            block_size=BS,
            replication=2,
            io_workers=io_workers,
        )
        blob = store.create()
        store.append(blob, b"a" * (6 * BS))  # some healthy baseline data
        pre_providers = snapshot_provider_state(store)
        pre_allocator = store.provider_manager.block_counts()
        pre_version = store.latest_version(blob)

        store.providers["provider-002"].fail()
        with pytest.raises(ProviderUnavailable):
            store.append(blob, b"b" * (8 * BS))

        assert snapshot_provider_state(store) == pre_providers
        assert store.provider_manager.block_counts() == pre_allocator
        # The failed write never got a version; readers are unaffected.
        assert store.latest_version(blob) == pre_version
        assert store.read(blob) == b"a" * (6 * BS)
        store.close()

    def test_least_loaded_placement_not_skewed_by_failed_writes(self, io_workers):
        store = LocalBlobStore(
            data_providers=3,
            metadata_providers=2,
            block_size=BS,
            replication=1,
            placement="least_loaded",
            io_workers=io_workers,
        )
        blob = store.create()
        store.providers["provider-000"].fail()
        # Repeated failed writes against the dead provider must not
        # charge it: otherwise recovery would see it as "loaded" and
        # least-loaded would dogpile the survivors forever.
        for _ in range(5):
            try:
                store.append(blob, b"x" * BS)
            except ProviderUnavailable:
                pass
        assert store.provider_manager.block_counts()["provider-000"] == 0
        store.close()

    def test_stranded_replica_keeps_its_charge_until_gc_reclaims_it(self, io_workers):
        # A provider that stores a replica and THEN dies mid-write
        # strands the block (rollback cannot delete from an offline
        # provider).  The stranded replica must keep its allocator
        # charge — the bytes really are there — and the GC sweep must
        # release it exactly once, not a second time.
        if io_workers:
            pytest.skip("deterministic put interleaving needs the inline path")
        store = LocalBlobStore(
            data_providers=2, metadata_providers=2, block_size=BS, replication=2
        )
        blob = store.create()
        store.append(blob, b"\0" * BS)  # v1: healthy baseline
        baseline_alloc = store.provider_manager.block_counts()
        baseline_counts = store.provider_block_counts()

        victim = store.providers["provider-000"]
        real_put = victim.put

        def put_then_die(block_id, payload):
            real_put(block_id, payload)
            victim.fail()

        victim.put = put_then_die
        with pytest.raises(ProviderUnavailable):
            store.append(blob, b"x" * (2 * BS))
        victim.put = real_put

        # One replica stranded on the (offline) victim: it keeps both
        # its physical copy and its allocator charge.
        assert victim.block_count == baseline_counts["provider-000"] + 1
        alloc = store.provider_manager.block_counts()
        assert alloc["provider-000"] == baseline_alloc["provider-000"] + 1
        assert alloc["provider-001"] == baseline_alloc["provider-001"]

        # GC while the victim is still down must neither crash nor
        # touch the stranded charge (the bytes are still there)...
        collect_garbage(store, blob, retain_from=1)
        assert store.provider_manager.block_counts() == alloc

        # ... and the first sweep after recovery reclaims it — once.
        victim.recover()
        collect_garbage(store, blob, retain_from=1)
        assert store.provider_block_counts() == baseline_counts
        assert store.provider_manager.block_counts() == baseline_alloc
        collect_garbage(store, blob, retain_from=1)  # idempotent
        assert store.provider_manager.block_counts() == baseline_alloc
        assert store.read(blob) == b"\0" * BS
        store.close()

    def test_version_manager_rejection_rolls_back_stored_blocks(self, io_workers):
        # Blocks go out in Phase 1; the version manager validates the
        # range in Phase 2.  A rejected write (unaligned append,
        # misaligned offset, hole) must clean up its Phase-1 blocks.
        store = LocalBlobStore(
            data_providers=4, metadata_providers=2, block_size=BS, io_workers=io_workers
        )
        blob = store.create()
        store.write(blob, 0, b"\0" * (BS + 3))  # unaligned size: appends now invalid
        pre_providers = snapshot_provider_state(store)
        pre_allocator = store.provider_manager.block_counts()

        with pytest.raises(InvalidRange):
            store.append(blob, b"x" * BS)
        with pytest.raises(InvalidRange):  # misaligned offset
            store.write(blob, 1, b"x" * BS)
        with pytest.raises(InvalidRange):  # hole past the end
            store.write(blob, 10 * BS, b"x" * BS)

        assert snapshot_provider_state(store) == pre_providers
        assert store.provider_manager.block_counts() == pre_allocator
        assert store.read(blob) == b"\0" * (BS + 3)
        store.close()

    def test_keyboard_interrupt_mid_write_still_rolls_back(self, io_workers):
        store = LocalBlobStore(
            data_providers=2,
            metadata_providers=2,
            block_size=BS,
            replication=2,
            io_workers=io_workers,
        )
        blob = store.create()
        store.append(blob, b"\0" * BS)
        pre_providers = snapshot_provider_state(store)
        pre_allocator = store.provider_manager.block_counts()

        original = store.providers["provider-001"].put

        def interrupted_put(block_id, payload):
            raise KeyboardInterrupt

        store.providers["provider-001"].put = interrupted_put
        with pytest.raises(KeyboardInterrupt):
            store.append(blob, b"x" * (2 * BS))
        store.providers["provider-001"].put = original

        assert snapshot_provider_state(store) == pre_providers
        assert store.provider_manager.block_counts() == pre_allocator
        store.close()

    def test_gc_survives_provider_dying_mid_sweep(self, io_workers):
        if io_workers:
            pytest.skip("single-scenario test; engine adds nothing here")
        store = LocalBlobStore(
            data_providers=2, metadata_providers=2, block_size=BS, replication=1
        )
        blob = store.create()
        store.append(blob, b"\0" * (4 * BS))
        store.write(blob, 0, b"\1" * (4 * BS))  # v2 replaces all v1 blocks

        # retain_from=2 makes v1's blocks garbage, spread round-robin
        # over both providers; one provider dies between the sweep's
        # online check and its delete call.
        victim = store.providers["provider-000"]
        original_delete = victim.delete

        def delete_then_die(block_id):
            victim.fail()  # goes down just as the sweep reaches it
            return original_delete(block_id)

        victim.delete = delete_then_die
        report = collect_garbage(store, blob, retain_from=2)
        victim.delete = original_delete
        # The pass completed (no ProviderUnavailable escaped) and the
        # survivor's garbage was reclaimed.
        assert report.blocks_deleted >= 1
        store.recover_provider("provider-000")
        assert store.read(blob, version=2) == b"\1" * (4 * BS)
        store.close()

    def test_gc_does_not_release_charges_for_already_deleted_blocks(self, io_workers):
        if io_workers:
            pytest.skip("single-scenario test; engine adds nothing here")
        store = LocalBlobStore(
            data_providers=1, metadata_providers=2, block_size=BS, replication=1
        )
        blob = store.create()
        store.append(blob, b"\0" * BS)
        store.write(blob, 0, b"\1" * BS)  # v1's block becomes garbage

        # Simulate a racing deletion (e.g. a concurrent write rollback)
        # landing between the sweep's id snapshot and its delete: the
        # sweep sees the id twice, the second pop finds nothing.
        provider = store.providers["provider-000"]
        real_block_ids = provider.block_ids

        def duplicated_ids():
            ids = list(real_block_ids())
            return iter(ids + ids)

        provider.block_ids = duplicated_ids
        report = collect_garbage(store, blob, retain_from=2)
        provider.block_ids = real_block_ids

        assert report.blocks_deleted == 1
        assert report.bytes_freed == BS
        # The live block's charge survived; only the garbage's was
        # released — and only once.
        assert store.provider_manager.block_counts() == {"provider-000": 1}
        assert store.read(blob) == b"\1" * BS
        store.close()

    def test_successful_write_after_rollback_reuses_capacity(self, io_workers):
        store = LocalBlobStore(
            data_providers=2,
            metadata_providers=2,
            block_size=BS,
            replication=2,
            io_workers=io_workers,
        )
        blob = store.create()
        store.providers["provider-001"].fail()
        with pytest.raises(ProviderUnavailable):
            store.append(blob, b"x" * BS)
        store.providers["provider-001"].recover()

        version = store.append(blob, b"y" * BS)
        assert version == 1
        assert store.read(blob) == b"y" * BS
        counts = store.provider_block_counts()
        assert counts == {"provider-000": 1, "provider-001": 1}
        store.close()
