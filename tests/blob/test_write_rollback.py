"""Failed writes must leave no trace (paper §III-D + DESIGN.md §7).

"If, for some reason, writing of a block fails, then the whole write
fails."  The seed implementation honoured the *failure* half but not
the cleanup half: replicas already stored by the doomed write stranded
forever on their providers, inflating ``block_count``/``stored_bytes``
and permanently skewing least-loaded placement.  These are the
regression tests for the rollback — and, below, for the write-abort
(tombstone) protocol that extends all-or-nothing past version
assignment: a writer dying during metadata publication must neither
wedge the publication watermark nor strand blocks/charges.
"""

import pytest

from repro.blob import (
    LocalBlobStore,
    StoreConfig,
    build_tombstone_patch,
    collect_garbage,
    find_under_replicated,
)
from repro.errors import (
    InvalidRange,
    ProviderUnavailable,
    PublishHookError,
    ReplicationError,
    VersionNotFound,
)

BS = 16

#: Engine modes every rollback/abort invariant must hold under:
#: inline I/O, the thread pool, and the async coroutine scheduler
#: (DESIGN.md §13 — the async backend inherits every §7 guarantee).
IO_MODES = (0, 4, "async")


def engine_kwargs(io_mode):
    """StoreConfig kwargs for one engine mode.

    Modes 0/4 are the historical ``io_workers`` values; ``"async"``
    selects the coroutine scheduler (truthy, so tests that skip the
    non-inline modes for deterministic interleaving skip it too).
    """
    if io_mode == "async":
        return {"io_scheduler": "async", "io_workers": 2, "max_in_flight": 64}
    return {"io_workers": io_mode}


def snapshot_provider_state(store):
    return {
        name: (p.block_count, p.stored_bytes) for name, p in store.providers.items()
    }


@pytest.mark.parametrize("io_workers", IO_MODES)
class TestFailedWriteRollback:
    def test_issue_repro_two_providers_one_fails_no_orphan(self, io_workers):
        # The ISSUE repro: 2 providers, replication=2, one provider dies
        # *without telling the provider manager* (so allocation still
        # targets it), then append.  The put to the dead provider fails;
        # the replica already stored on the live one must be deleted.
        store = LocalBlobStore(config=StoreConfig(
            data_providers=2,
            metadata_providers=2,
            block_size=BS,
            replication=2,
            **engine_kwargs(io_workers),
        ))
        blob = store.create()
        pre_providers = snapshot_provider_state(store)
        pre_allocator = store.provider_manager.block_counts()

        store.providers["provider-001"].fail()
        with pytest.raises(ProviderUnavailable):
            store.append(blob, b"x" * BS)

        assert snapshot_provider_state(store) == pre_providers
        assert store.provider_manager.block_counts() == pre_allocator
        store.close()

    def test_multi_block_failure_rolls_back_every_stored_replica(self, io_workers):
        store = LocalBlobStore(config=StoreConfig(
            data_providers=4,
            metadata_providers=2,
            block_size=BS,
            replication=2,
            **engine_kwargs(io_workers),
        ))
        blob = store.create()
        store.append(blob, b"a" * (6 * BS))  # some healthy baseline data
        pre_providers = snapshot_provider_state(store)
        pre_allocator = store.provider_manager.block_counts()
        pre_version = store.latest_version(blob)

        store.providers["provider-002"].fail()
        with pytest.raises(ProviderUnavailable):
            store.append(blob, b"b" * (8 * BS))

        assert snapshot_provider_state(store) == pre_providers
        assert store.provider_manager.block_counts() == pre_allocator
        # The failed write never got a version; readers are unaffected.
        assert store.latest_version(blob) == pre_version
        assert store.read(blob) == b"a" * (6 * BS)
        store.close()

    def test_least_loaded_placement_not_skewed_by_failed_writes(self, io_workers):
        store = LocalBlobStore(config=StoreConfig(
            data_providers=3,
            metadata_providers=2,
            block_size=BS,
            replication=1,
            placement="least_loaded",
            **engine_kwargs(io_workers),
        ))
        blob = store.create()
        store.providers["provider-000"].fail()
        # Repeated failed writes against the dead provider must not
        # charge it: otherwise recovery would see it as "loaded" and
        # least-loaded would dogpile the survivors forever.
        for _ in range(5):
            try:
                store.append(blob, b"x" * BS)
            except ProviderUnavailable:
                pass
        assert store.provider_manager.block_counts()["provider-000"] == 0
        store.close()

    def test_stranded_replica_keeps_its_charge_until_gc_reclaims_it(self, io_workers):
        # A provider that stores a replica and THEN dies mid-write
        # strands the block (rollback cannot delete from an offline
        # provider).  The stranded replica must keep its allocator
        # charge — the bytes really are there — and the GC sweep must
        # release it exactly once, not a second time.
        if io_workers:
            pytest.skip("deterministic put interleaving needs the inline path")
        store = LocalBlobStore(config=StoreConfig(
            data_providers=2, metadata_providers=2, block_size=BS, replication=2
        ))
        blob = store.create()
        store.append(blob, b"\0" * BS)  # v1: healthy baseline
        baseline_alloc = store.provider_manager.block_counts()
        baseline_counts = store.provider_block_counts()

        victim = store.providers["provider-000"]
        real_put = victim.put

        def put_then_die(block_id, payload):
            real_put(block_id, payload)
            victim.fail()

        victim.put = put_then_die
        with pytest.raises(ProviderUnavailable):
            store.append(blob, b"x" * (2 * BS))
        victim.put = real_put

        # One replica stranded on the (offline) victim: it keeps both
        # its physical copy and its allocator charge.
        assert victim.block_count == baseline_counts["provider-000"] + 1
        alloc = store.provider_manager.block_counts()
        assert alloc["provider-000"] == baseline_alloc["provider-000"] + 1
        assert alloc["provider-001"] == baseline_alloc["provider-001"]

        # GC while the victim is still down must neither crash nor
        # touch the stranded charge (the bytes are still there)...
        collect_garbage(store, blob, retain_from=1)
        assert store.provider_manager.block_counts() == alloc

        # ... and the first sweep after recovery reclaims it — once.
        victim.recover()
        collect_garbage(store, blob, retain_from=1)
        assert store.provider_block_counts() == baseline_counts
        assert store.provider_manager.block_counts() == baseline_alloc
        collect_garbage(store, blob, retain_from=1)  # idempotent
        assert store.provider_manager.block_counts() == baseline_alloc
        assert store.read(blob) == b"\0" * BS
        store.close()

    def test_version_manager_rejection_rolls_back_stored_blocks(self, io_workers):
        # Blocks go out in Phase 1; the version manager validates the
        # range in Phase 2.  A rejected write (unaligned append,
        # misaligned offset, hole) must clean up its Phase-1 blocks.
        store = LocalBlobStore(config=StoreConfig(
            data_providers=4, metadata_providers=2, block_size=BS, **engine_kwargs(io_workers)
        ))
        blob = store.create()
        store.write(blob, 0, b"\0" * (BS + 3))  # unaligned size: appends now invalid
        pre_providers = snapshot_provider_state(store)
        pre_allocator = store.provider_manager.block_counts()

        with pytest.raises(InvalidRange):
            store.append(blob, b"x" * BS)
        with pytest.raises(InvalidRange):  # misaligned offset
            store.write(blob, 1, b"x" * BS)
        with pytest.raises(InvalidRange):  # hole past the end
            store.write(blob, 10 * BS, b"x" * BS)

        assert snapshot_provider_state(store) == pre_providers
        assert store.provider_manager.block_counts() == pre_allocator
        assert store.read(blob) == b"\0" * (BS + 3)
        store.close()

    def test_keyboard_interrupt_mid_write_still_rolls_back(self, io_workers):
        store = LocalBlobStore(config=StoreConfig(
            data_providers=2,
            metadata_providers=2,
            block_size=BS,
            replication=2,
            **engine_kwargs(io_workers),
        ))
        blob = store.create()
        store.append(blob, b"\0" * BS)
        pre_providers = snapshot_provider_state(store)
        pre_allocator = store.provider_manager.block_counts()

        original = store.providers["provider-001"].put

        def interrupted_put(block_id, payload):
            raise KeyboardInterrupt

        store.providers["provider-001"].put = interrupted_put
        with pytest.raises(KeyboardInterrupt):
            store.append(blob, b"x" * (2 * BS))
        store.providers["provider-001"].put = original

        assert snapshot_provider_state(store) == pre_providers
        assert store.provider_manager.block_counts() == pre_allocator
        store.close()

    def test_gc_survives_provider_dying_mid_sweep(self, io_workers):
        if io_workers:
            pytest.skip("single-scenario test; engine adds nothing here")
        store = LocalBlobStore(config=StoreConfig(
            data_providers=2, metadata_providers=2, block_size=BS, replication=1
        ))
        blob = store.create()
        store.append(blob, b"\0" * (4 * BS))
        store.write(blob, 0, b"\1" * (4 * BS))  # v2 replaces all v1 blocks

        # retain_from=2 makes v1's blocks garbage, spread round-robin
        # over both providers; one provider dies between the sweep's
        # online check and its delete call.
        victim = store.providers["provider-000"]
        original_delete = victim.delete

        def delete_then_die(block_id):
            victim.fail()  # goes down just as the sweep reaches it
            return original_delete(block_id)

        victim.delete = delete_then_die
        report = collect_garbage(store, blob, retain_from=2)
        victim.delete = original_delete
        # The pass completed (no ProviderUnavailable escaped) and the
        # survivor's garbage was reclaimed.
        assert report.blocks_deleted >= 1
        store.recover_provider("provider-000")
        assert store.read(blob, version=2) == b"\1" * (4 * BS)
        store.close()

    def test_gc_does_not_release_charges_for_already_deleted_blocks(self, io_workers):
        if io_workers:
            pytest.skip("single-scenario test; engine adds nothing here")
        store = LocalBlobStore(config=StoreConfig(
            data_providers=1, metadata_providers=2, block_size=BS, replication=1
        ))
        blob = store.create()
        store.append(blob, b"\0" * BS)
        store.write(blob, 0, b"\1" * BS)  # v1's block becomes garbage

        # Simulate a racing deletion (e.g. a concurrent write rollback)
        # landing between the sweep's id snapshot and its delete: the
        # sweep sees the id twice, the second pop finds nothing.
        provider = store.providers["provider-000"]
        real_block_ids = provider.block_ids

        def duplicated_ids():
            ids = list(real_block_ids())
            return iter(ids + ids)

        provider.block_ids = duplicated_ids
        report = collect_garbage(store, blob, retain_from=2)
        provider.block_ids = real_block_ids

        assert report.blocks_deleted == 1
        assert report.bytes_freed == BS
        # The live block's charge survived; only the garbage's was
        # released — and only once.
        assert store.provider_manager.block_counts() == {"provider-000": 1}
        assert store.read(blob) == b"\1" * BS
        store.close()

    def test_successful_write_after_rollback_reuses_capacity(self, io_workers):
        store = LocalBlobStore(config=StoreConfig(
            data_providers=2,
            metadata_providers=2,
            block_size=BS,
            replication=2,
            **engine_kwargs(io_workers),
        ))
        blob = store.create()
        store.providers["provider-001"].fail()
        with pytest.raises(ProviderUnavailable):
            store.append(blob, b"x" * BS)
        store.providers["provider-001"].recover()

        version = store.append(blob, b"y" * BS)
        assert version == 1
        assert store.read(blob) == b"y" * BS
        counts = store.provider_block_counts()
        assert counts == {"provider-000": 1, "provider-001": 1}
        store.close()


def fail_publish_for_version(store, version):
    """Make every batched *real-patch* publish of *version* fail — the
    signature of all replicas of the owning bucket being down while a
    writer publishes its patch.  Force puts (the tombstone's filler,
    which travels via ``put_fillers``) still land, as they would on the
    surviving buckets.  Returns an undo callable."""
    real = store.metadata.put_patch

    def failing_put_patch(nodes):
        if any(node.key.version == version for node in nodes):
            raise ProviderUnavailable("all replicas of the owning bucket are down")
        return real(nodes)

    store.metadata.put_patch = failing_put_patch
    return lambda: setattr(store.metadata, "put_patch", real)


@pytest.mark.parametrize("io_workers", IO_MODES)
class TestWriteAbortTombstone:
    """A writer dying after version assignment (§VI-B's admitted
    weakness) aborts into a tombstone instead of wedging the store."""

    def test_publish_failure_aborts_cleanly(self, io_workers):
        store = LocalBlobStore(config=StoreConfig(
            data_providers=4, metadata_providers=2, block_size=BS, **engine_kwargs(io_workers)
        ))
        blob = store.create()
        store.append(blob, b"a" * (4 * BS))  # v1: healthy baseline
        pre_providers = snapshot_provider_state(store)
        pre_allocator = store.provider_manager.block_counts()

        undo = fail_publish_for_version(store, 2)
        with pytest.raises(ProviderUnavailable):
            store.append(blob, b"x" * (2 * BS))  # v2: dies mid-publish
        undo()

        # Blocks rolled back, charges released — like any failed write.
        assert snapshot_provider_state(store) == pre_providers
        assert store.provider_manager.block_counts() == pre_allocator
        # The ticket did NOT stay in flight: it tombstoned and the
        # watermark advanced over it.
        assert store.version_manager.in_flight(blob) == []
        assert store.latest_version(blob) == 2
        info = store.snapshot(blob, 2)
        assert info.tombstone and info.size == 6 * BS
        # The tombstone reads as the prior state, zero-filled over the
        # range the dead append would have created.
        assert store.read(blob, version=1) == b"a" * (4 * BS)
        assert store.read(blob, version=2) == b"a" * (4 * BS) + bytes(2 * BS)
        store.close()

    def test_write_and_gc_succeed_after_abort(self, io_workers):
        store = LocalBlobStore(config=StoreConfig(
            data_providers=4, metadata_providers=2, block_size=BS, **engine_kwargs(io_workers)
        ))
        blob = store.create()
        store.append(blob, b"a" * (4 * BS))
        undo = fail_publish_for_version(store, 2)
        with pytest.raises(ProviderUnavailable):
            store.append(blob, b"x" * (2 * BS))
        undo()

        # A subsequent append lands after the tombstone's zero gap: its
        # offset was fixed by the (kept) tombstone size, §III-D style.
        v3 = store.append(blob, b"y" * (2 * BS))
        assert v3 == 3
        assert store.read(blob) == b"a" * (4 * BS) + bytes(2 * BS) + b"y" * (2 * BS)
        # GC is not blocked by the dead writer; the tombstone
        # participates in the mark phase like any snapshot.
        report = collect_garbage(store, blob, retain_from=1)
        assert store.read(blob) == b"a" * (4 * BS) + bytes(2 * BS) + b"y" * (2 * BS)
        report = collect_garbage(store, blob, retain_from=3)
        assert report.nodes_deleted > 0
        assert store.read(blob, version=3)[: 4 * BS] == b"a" * (4 * BS)
        with pytest.raises(VersionNotFound):
            store.read(blob, version=2)
        store.close()

    def test_interior_overwrite_abort_serves_prior_content(self, io_workers):
        """Redirect leaves: an aborted overwrite's tombstone resolves to
        the woven state without the dead write."""
        store = LocalBlobStore(config=StoreConfig(
            data_providers=4, metadata_providers=2, block_size=BS, **engine_kwargs(io_workers)
        ))
        blob = store.create()
        store.write(blob, 0, b"a" * (4 * BS))  # v1
        undo = fail_publish_for_version(store, 2)
        with pytest.raises(ProviderUnavailable):
            store.write(blob, BS, b"x" * (2 * BS))  # v2 dies rewriting [1, 3)
        undo()

        assert store.read(blob, version=2) == b"a" * (4 * BS)  # unchanged
        v3 = store.append(blob, b"y" * BS)
        assert store.read(blob, version=v3) == b"a" * (4 * BS) + b"y" * BS
        # GC keeping only the tombstone: its redirects must keep v1's
        # shared blocks alive.
        collect_garbage(store, blob, retain_from=2)
        assert store.read(blob, version=2) == b"a" * (4 * BS)
        assert store.read(blob, version=3) == b"a" * (4 * BS) + b"y" * BS
        store.close()

    def test_writer_assigned_before_abort_still_resolves(self, io_workers):
        """The tentpole scenario: writer B takes its ticket (and weaves
        hints referencing dead writer A) *before* A aborts.  B's
        metadata must resolve through A's filler nodes."""
        if io_workers:
            pytest.skip("deterministic publish interleaving needs the inline path")
        store = LocalBlobStore(config=StoreConfig(data_providers=4, metadata_providers=2, block_size=BS))
        blob = store.create()
        store.append(blob, b"a" * (2 * BS))  # v1
        holder = {}
        real = store.metadata.put_patch

        def failing_put_patch(nodes):
            if any(node.key.version == 2 for node in nodes):
                if "ticket" not in holder:
                    # B sneaks in between A's assignment and A's abort.
                    holder["ticket"] = store.version_manager.assign_append(blob, BS)
                raise ProviderUnavailable("bucket down")
            return real(nodes)

        store.metadata.put_patch = failing_put_patch
        with pytest.raises(ProviderUnavailable):
            store.append(blob, b"x" * (2 * BS))  # A: v2, dies
        store.metadata.put_patch = real

        ticket = holder["ticket"]
        assert ticket.version == 3
        assert ticket.offset == 4 * BS  # fixed on A's (now zero-filled) size
        assert ticket.history == ((1, 0, 2), (2, 2, 4))  # wove A's range
        # B finishes its write with the pre-abort ticket, exactly as a
        # concurrent writer would: store blocks, publish, commit.
        from repro.blob.block import BytesPayload

        with store._lock:
            nonce = next(store._nonce)
            placements = store.provider_manager.allocate(1, [BS], replication=1)
        store._store_blocks(blob, nonce, [BytesPayload(b"z" * BS)], placements, [BS])
        store._publish_metadata(ticket, nonce, [BS], placements)
        with store._lock:
            store.version_manager.commit(blob, ticket.version)

        assert store.latest_version(blob) == 3
        assert store.read(blob) == b"a" * (2 * BS) + bytes(2 * BS) + b"z" * BS
        store.close()

    def test_publish_hook_error_does_not_roll_back(self, io_workers):
        """A raising publication hook is a reporting problem, not a
        write failure: the snapshot committed and must stand."""
        store = LocalBlobStore(config=StoreConfig(
            data_providers=4, metadata_providers=2, block_size=BS, **engine_kwargs(io_workers)
        ))
        blob = store.create()

        def bad_hook(blob_id, watermark):
            raise RuntimeError("stale cache")

        store.version_manager.on_publish(bad_hook)
        with pytest.raises(PublishHookError):
            store.append(blob, b"a" * BS)
        assert store.latest_version(blob) == 1
        assert not store.snapshot(blob, 1).tombstone
        assert store.read(blob) == b"a" * BS
        assert store.version_manager.in_flight(blob) == []
        store.close()

    def test_interrupt_in_publish_hook_never_rolls_back_committed_write(
        self, io_workers
    ):
        """A BaseException escaping the hooks after commit (hooks only
        shield Exception) must not route the published snapshot into
        the abort path — its blocks belong to readers now."""
        store = LocalBlobStore(config=StoreConfig(
            data_providers=4, metadata_providers=2, block_size=BS, **engine_kwargs(io_workers)
        ))
        blob = store.create()

        def interrupting_hook(blob_id, watermark):
            raise KeyboardInterrupt

        store.version_manager.on_publish(interrupting_hook)
        with pytest.raises(KeyboardInterrupt):
            store.append(blob, b"a" * (2 * BS))
        assert store.latest_version(blob) == 1
        assert not store.snapshot(blob, 1).tombstone
        assert store.read(blob) == b"a" * (2 * BS)  # blocks intact
        store.close()

    def test_republish_refuses_in_flight_versions(self, io_workers):
        """republish_tombstone against a healthy in-flight write must
        not force-overwrite its metadata with filler."""
        store = LocalBlobStore(config=StoreConfig(
            data_providers=4, metadata_providers=2, block_size=BS, **engine_kwargs(io_workers)
        ))
        blob = store.create()
        store.append(blob, b"a" * BS)
        store.version_manager.assign_append(blob, BS)  # v2 in flight
        with pytest.raises(VersionNotFound):
            store.republish_tombstone(blob, 2)
        store.close()

    def test_republish_through_branch_heals_ancestor_keys(self, io_workers):
        """A tombstone inherited across a branch point is owned by the
        ancestor: republishing via the branch must heal the ancestor's
        keys (which is where readers resolve), not mint unreachable
        nodes under the branch's id."""
        store = LocalBlobStore(config=StoreConfig(
            data_providers=4, metadata_providers=2, block_size=BS, **engine_kwargs(io_workers)
        ))
        blob = store.create()
        store.append(blob, b"a" * (2 * BS))  # v1
        real_patch = store.metadata.put_patch
        real_fillers = store.metadata.put_fillers

        def failing_patch(nodes):
            if any(node.key.version == 2 for node in nodes):
                raise ProviderUnavailable("bucket down")
            return real_patch(nodes)

        def failing_fillers(nodes):  # filler puts fail too: no node lands
            dead = [n.key for n in nodes if n.key.version == 2]
            rest = [n for n in nodes if n.key.version != 2]
            return dead + (real_fillers(rest) if rest else [])

        store.metadata.put_patch = failing_patch
        store.metadata.put_fillers = failing_fillers
        with pytest.raises(ProviderUnavailable):
            store.append(blob, b"x" * (2 * BS))  # v2 tombstones, no filler
        store.metadata.put_patch = real_patch
        store.metadata.put_fillers = real_fillers

        branch = store.branch(blob, version=2)  # branch at the tombstone
        with pytest.raises(VersionNotFound):
            store.read(branch, version=2)
        assert store.republish_tombstone(branch, 2) == []
        expected = b"a" * (2 * BS) + bytes(2 * BS)
        assert store.read(branch, version=2) == expected
        assert store.read(blob, version=2) == expected
        store.close()

    def test_tombstone_needs_no_replication_repair(self, io_workers):
        """Zero leaves store nothing: the repair scan must not flag
        (or crash on) them."""
        store = LocalBlobStore(config=StoreConfig(
            data_providers=4,
            metadata_providers=2,
            block_size=BS,
            replication=2,
            **engine_kwargs(io_workers),
        ))
        blob = store.create()
        store.append(blob, b"a" * (2 * BS))
        undo = fail_publish_for_version(store, 2)
        with pytest.raises(ProviderUnavailable):
            store.append(blob, b"x" * (2 * BS))
        undo()
        assert find_under_replicated(store, blob, version=2) == []
        store.close()


def _patch_keys(blob, version, start, end, size_after, prior_size, history):
    """Canonical node keys version *version* publishes for this write
    (the filler patch occupies exactly the real patch's key set)."""
    nodes = build_tombstone_patch(
        blob_id=blob,
        version=version,
        write_start=start,
        write_end=end,
        size_after=size_after,
        prior_size=prior_size,
        block_size=BS,
        history=history,
    )
    return {node.key for node in nodes}


def make_chaos_store(engine_mode=0):
    """A store plus a victim metadata bucket whose permanent death dooms
    exactly one in-flight write.

    Scenario geometry (all appends): v1 = 4 blocks (healthy), v2 = 2
    blocks (doomed), v3 = 2 blocks (written after the abort).  The
    victim bucket must own at least one of v2's metadata keys (so v2's
    publication fails) but none of the keys v1's readback, v3's
    publication or v3's readback need — those are v1's and v3's whole
    patches plus the part of v2's filler that v3's descent resolves
    through (the subtree under v2's own write range).  With
    ``metadata_replication=1`` each key has exactly one owner, so "the
    victim is down" is precisely "every replica of that bucket is down".
    """
    h1 = ((1, 0, 4),)
    h2 = ((1, 0, 4), (2, 4, 6))
    for n_buckets in (8, 16, 24, 32, 48, 64, 96):
        store = LocalBlobStore(config=StoreConfig(
            data_providers=4,
            metadata_providers=n_buckets,
            block_size=BS,
            **engine_kwargs(engine_mode),
        ))
        blob = store.create("chaos")
        v1_keys = _patch_keys(blob, 1, 0, 4, 4 * BS, 0, ())
        v2_keys = _patch_keys(blob, 2, 4, 6, 6 * BS, 4 * BS, h1)
        v3_keys = _patch_keys(blob, 3, 6, 8, 8 * BS, 6 * BS, h2)
        needed = (
            v1_keys
            | v3_keys
            | {k for k in v2_keys if k.offset >= 4 and k.span <= 2}
        )
        droppable = v2_keys - needed
        owners = store.metadata.store.owners
        victim = next(
            (
                name
                for name in store.metadata.store.buckets
                if any(name in owners(k) for k in droppable)
                and not any(name in owners(k) for k in needed)
            ),
            None,
        )
        if victim is not None:
            return store, blob, victim
        store.close()
    raise AssertionError("no bucket layout isolates the doomed write's keys")


@pytest.mark.parametrize("io_workers", IO_MODES)
class TestChaosMetadataBucketDown:
    """Acceptance scenario: every replica of a metadata bucket dies
    permanently mid-write.  No monkeypatching — a real bucket fails."""

    def test_abort_is_clean_and_store_stays_live(self, io_workers):
        store, blob, victim = make_chaos_store(io_workers)
        store.append(blob, b"a" * (4 * BS))  # v1
        pre_providers = snapshot_provider_state(store)
        pre_allocator = store.provider_manager.block_counts()

        store.metadata.store.fail_bucket(victim)  # permanent
        # Whether the publish dies on the immutability pre-read or the
        # put itself, every replica of the owning bucket is down.
        with pytest.raises((ReplicationError, ProviderUnavailable)):
            store.append(blob, b"x" * (2 * BS))  # v2: publish hits the victim

        # Tombstone published (where possible), blocks rolled back,
        # charges released, nothing in flight, watermark advanced.
        assert snapshot_provider_state(store) == pre_providers
        assert store.provider_manager.block_counts() == pre_allocator
        assert store.version_manager.in_flight(blob) == []
        assert store.latest_version(blob) == 2
        assert store.snapshot(blob, 2).tombstone

        # Surviving snapshots stay readable byte-for-byte...
        assert store.read(blob, version=1) == b"a" * (4 * BS)
        # ... a subsequent write succeeds and resolves through the
        # filler nodes that did land...
        assert store.append(blob, b"y" * (2 * BS)) == 3
        assert store.read(blob) == b"a" * (4 * BS) + bytes(2 * BS) + b"y" * (2 * BS)
        # ... and GC completes with the bucket still down (offline
        # metadata buckets are skipped like offline data providers).
        report = collect_garbage(store, blob, retain_from=3)
        assert report.nodes_deleted > 0
        assert store.read(blob) == b"a" * (4 * BS) + bytes(2 * BS) + b"y" * (2 * BS)
        store.close()

    def test_republish_tombstone_after_bucket_recovery(self, io_workers):
        store, blob, victim = make_chaos_store(io_workers)
        store.append(blob, b"a" * (4 * BS))
        store.metadata.store.fail_bucket(victim)
        with pytest.raises((ReplicationError, ProviderUnavailable)):
            store.append(blob, b"x" * (2 * BS))

        # Filler nodes owned by the dead bucket could not be placed:
        # the tombstone is (partially) unreadable, like anything else
        # the outage owns, and the leftovers are reported.
        with pytest.raises((VersionNotFound, ProviderUnavailable)):
            store.read(blob, version=2)
        assert store.republish_tombstone(blob, 2)  # still down: leftovers

        store.metadata.store.recover_bucket(victim)
        assert store.republish_tombstone(blob, 2) == []
        assert store.read(blob, version=2) == b"a" * (4 * BS) + bytes(2 * BS)
        # With the filler complete, GC can retain the tombstone too.
        collect_garbage(store, blob, retain_from=2)
        assert store.read(blob, version=2) == b"a" * (4 * BS) + bytes(2 * BS)
        with pytest.raises(VersionNotFound):
            store.read(blob, version=1)
        store.close()
