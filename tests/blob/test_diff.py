"""Tests for snapshot differencing (metadata-only diffs)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blob import LocalBlobStore, StoreConfig
from repro.blob.diff import BlockRange, changed_ranges

BS = 16


@pytest.fixture
def store():
    return LocalBlobStore(config=StoreConfig(data_providers=5, metadata_providers=2, block_size=BS))


class TestChangedRanges:
    def test_identical_versions_empty_diff(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * (4 * BS))
        assert changed_ranges(store, blob, 1, 1) == []

    def test_single_block_overwrite(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * (8 * BS))
        store.write(blob, 2 * BS, b"b" * BS)
        assert changed_ranges(store, blob, 1, 2) == [BlockRange(2, 3)]

    def test_multi_block_overwrite_coalesced(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * (8 * BS))
        store.write(blob, 2 * BS, b"b" * (3 * BS))
        assert changed_ranges(store, blob, 1, 2) == [BlockRange(2, 5)]

    def test_disjoint_changes(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * (8 * BS))
        store.write(blob, 0, b"b" * BS)  # v2
        store.write(blob, 6 * BS, b"c" * BS)  # v3
        assert changed_ranges(store, blob, 1, 3) == [
            BlockRange(0, 1),
            BlockRange(6, 7),
        ]

    def test_append_counts_as_change(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * (2 * BS))
        store.append(blob, b"b" * (2 * BS))
        assert changed_ranges(store, blob, 1, 2) == [BlockRange(2, 4)]

    def test_append_across_root_growth(self, store):
        """Diffing snapshots whose trees have different root spans."""
        blob = store.create()
        store.write(blob, 0, b"a" * (4 * BS))  # span 4
        store.append(blob, b"b" * (3 * BS))  # span 8
        assert changed_ranges(store, blob, 1, 2) == [BlockRange(4, 7)]

    def test_diff_is_symmetric(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * (6 * BS))
        store.write(blob, BS, b"b" * (2 * BS))
        assert changed_ranges(store, blob, 1, 2) == changed_ranges(store, blob, 2, 1)

    def test_empty_vs_nonempty(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * (3 * BS))
        assert changed_ranges(store, blob, 0, 1) == [BlockRange(0, 3)]

    def test_rewrite_with_identical_bytes_still_differs(self, store):
        """Diff is metadata-level: a rewrite is a new block identity
        even if the bytes happen to match."""
        blob = store.create()
        store.write(blob, 0, b"same" * 4)
        store.write(blob, 0, b"same" * 4)
        assert changed_ranges(store, blob, 1, 2) == [BlockRange(0, 1)]

    def test_diff_across_branch(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * (4 * BS))
        fork = store.branch(blob, "fork")
        store.write(fork, 3 * BS, b"f" * BS)
        ranges = changed_ranges(store, blob, 1, 2, blob_b=fork)
        assert ranges == [BlockRange(3, 4)]

    def test_to_bytes_clipping(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * (BS + BS // 2))  # trailing partial
        store.write(blob, BS, b"b" * (BS // 2))  # rewrite the tail
        (rng,) = changed_ranges(store, blob, 1, 2)
        offset, length = rng.to_bytes(BS, store.snapshot(blob, 2).size)
        assert offset == BS and length == BS // 2


class TestDiffAgainstBruteForce:
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),  # start block
                st.integers(min_value=1, max_value=4),  # block count
            ),
            min_size=2,
            max_size=6,
        )
    )
    @settings(max_examples=40)
    def test_property_diff_equals_block_id_comparison(self, ops):
        """The tree diff must agree with brute-force descriptor
        comparison on every pair of consecutive versions."""
        store = LocalBlobStore(config=StoreConfig(data_providers=4, metadata_providers=2, block_size=BS))
        blob = store.create()
        size_blocks = 0
        applied = 0
        for start, count in ops:
            start = min(start, size_blocks)  # no holes
            store.write(blob, start * BS, bytes([applied % 251]) * (count * BS))
            size_blocks = max(size_blocks, start + count)
            applied += 1
        latest = store.latest_version(blob)
        for va in range(1, latest):
            vb = va + 1
            expected = set()
            desc_a = {
                d.index: d.block_id
                for d in store._collect_descriptors(
                    store.snapshot(blob, va), 0, store.snapshot(blob, va).size
                )
            }
            desc_b = {
                d.index: d.block_id
                for d in store._collect_descriptors(
                    store.snapshot(blob, vb), 0, store.snapshot(blob, vb).size
                )
            }
            for index in set(desc_a) | set(desc_b):
                if desc_a.get(index) != desc_b.get(index):
                    expected.add(index)
            got = set()
            for rng in changed_ranges(store, blob, va, vb):
                got.update(range(rng.start, rng.end))
            assert got == expected


class TestTombstoneDiff:
    """Diffs over tombstoned versions follow redirects (DESIGN.md §7)."""

    def _abort_version(self, store, version):
        real = store.metadata.put_patch

        def failing(nodes):
            if any(node.key.version == version for node in nodes):
                from repro.errors import ProviderUnavailable

                raise ProviderUnavailable("bucket down")
            return real(nodes)

        store.metadata.put_patch = failing
        return lambda: setattr(store.metadata, "put_patch", real)

    def test_aborted_overwrite_diffs_empty_against_prior(self, store):
        import pytest as _pytest
        from repro.errors import ProviderUnavailable

        blob = store.create()
        store.write(blob, 0, b"a" * (4 * BS))  # v1
        undo = self._abort_version(store, 2)
        with _pytest.raises(ProviderUnavailable):
            store.write(blob, BS, b"x" * (2 * BS))  # v2 dies, tombstones
        undo()
        # The tombstone's content IS v1's: redirects resolve to the
        # same blocks, so nothing changed.
        assert changed_ranges(store, blob, 1, 2) == []

    def test_aborted_append_diffs_only_the_zero_gap(self, store):
        import pytest as _pytest
        from repro.errors import ProviderUnavailable

        blob = store.create()
        store.write(blob, 0, b"a" * (2 * BS))  # v1
        undo = self._abort_version(store, 2)
        with _pytest.raises(ProviderUnavailable):
            store.append(blob, b"x" * (2 * BS))  # v2 dies, zero-fills [2, 4)
        undo()
        assert changed_ranges(store, blob, 1, 2) == [BlockRange(2, 4)]
