"""Thread-level semantics tests (correctness, not performance).

Python threads cannot demonstrate BlobSeer's throughput claims (GIL) —
that is the simulated deployment's job.  What they *can* verify is that
the protocol state machine holds up under interleaving: versions are
unique, publication respects assignment order, snapshots are isolated.
"""

import threading

import pytest

from repro.blob import LocalBlobStore, StoreConfig

BS = 32


@pytest.fixture
def store():
    return LocalBlobStore(config=StoreConfig(data_providers=8, metadata_providers=3, block_size=BS))


class TestThreadedWriters:
    def test_concurrent_appends_all_land_exactly_once(self, store):
        blob = store.create()
        n_threads, per_thread = 8, 5
        errors = []

        def appender(tid):
            try:
                for _ in range(per_thread):
                    store.append(blob, bytes([tid]) * BS)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=appender, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        total = n_threads * per_thread
        assert store.latest_version(blob) == total
        data = store.read(blob)
        assert len(data) == total * BS
        # Each thread's payload appears exactly per_thread times, in
        # whole-block units (no torn blocks).
        blocks = [data[i * BS : (i + 1) * BS] for i in range(total)]
        for tid in range(n_threads):
            assert blocks.count(bytes([tid]) * BS) == per_thread

    def test_concurrent_writers_distinct_regions(self, store):
        blob = store.create()
        store.write(blob, 0, b"\0" * (8 * BS))
        errors = []

        def writer(region):
            try:
                store.write(blob, region * BS, bytes([region + 1]) * BS)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(r,)) for r in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        final = store.read(blob)
        for region in range(8):
            assert final[region * BS : (region + 1) * BS] == bytes([region + 1]) * BS

    def test_readers_concurrent_with_writers_see_committed_prefixes(self, store):
        blob = store.create()
        store.append(blob, b"\1" * BS)
        stop = threading.Event()
        bad = []

        def reader():
            while not stop.is_set():
                version = store.latest_version(blob)
                data = store.read(blob, version=version)
                # Snapshot v of this workload is exactly v blocks long.
                if len(data) != version * BS:
                    bad.append((version, len(data)))

        readers = [threading.Thread(target=reader) for _ in range(3)]
        for r in readers:
            r.start()
        for v in range(2, 30):
            store.append(blob, bytes([v % 250 + 1]) * BS)
        stop.set()
        for r in readers:
            r.join()
        assert not bad

    def test_version_numbers_unique_under_contention(self, store):
        blob = store.create()
        versions = []
        lock = threading.Lock()

        def appender():
            v = store.append(blob, b"z" * BS)
            with lock:
                versions.append(v)

        threads = [threading.Thread(target=appender) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(versions) == list(range(1, 17))
