"""Tests for the immutable block store."""

import pytest

from repro.blob import BytesPayload, DataProviderCore
from repro.errors import ProviderUnavailable, WriteConflict


@pytest.fixture
def provider():
    return DataProviderCore("p0")


class TestStorage:
    def test_put_get(self, provider):
        provider.put(("b", 1, 0), BytesPayload(b"data"))
        assert provider.get(("b", 1, 0)).tobytes() == b"data"
        assert provider.has(("b", 1, 0))
        assert provider.block_count == 1
        assert provider.stored_bytes == 4

    def test_immutability_enforced(self, provider):
        provider.put(("b", 1, 0), BytesPayload(b"data"))
        with pytest.raises(WriteConflict, match="immutable"):
            provider.put(("b", 1, 0), BytesPayload(b"other"))

    def test_missing_block(self, provider):
        with pytest.raises(KeyError):
            provider.get(("b", 9, 9))
        assert not provider.has(("b", 9, 9))

    def test_delete_returns_bytes_freed(self, provider):
        provider.put(("b", 1, 0), BytesPayload(b"12345"))
        assert provider.delete(("b", 1, 0)) == 5
        assert provider.delete(("b", 1, 0)) == 0
        assert provider.stored_bytes == 0

    def test_block_ids_snapshot(self, provider):
        provider.put(("b", 1, 0), BytesPayload(b"x"))
        provider.put(("b", 1, 1), BytesPayload(b"y"))
        ids = list(provider.block_ids())
        assert set(ids) == {("b", 1, 0), ("b", 1, 1)}


class TestFailure:
    def test_offline_refuses_everything(self, provider):
        provider.put(("b", 1, 0), BytesPayload(b"x"))
        provider.fail()
        with pytest.raises(ProviderUnavailable):
            provider.get(("b", 1, 0))
        with pytest.raises(ProviderUnavailable):
            provider.put(("b", 1, 1), BytesPayload(b"y"))
        with pytest.raises(ProviderUnavailable):
            provider.delete(("b", 1, 0))
        assert not provider.has(("b", 1, 0))

    def test_recover_restores_content(self, provider):
        provider.put(("b", 1, 0), BytesPayload(b"x"))
        provider.fail()
        provider.recover()
        assert provider.get(("b", 1, 0)).tobytes() == b"x"
