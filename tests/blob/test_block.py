"""Tests for payloads and block descriptors."""

import pytest

from repro.blob import BlockDescriptor, BytesPayload, SyntheticPayload, concat


class TestBytesPayload:
    def test_size_and_bytes(self):
        p = BytesPayload(b"hello world")
        assert p.size == 11
        assert p.is_real
        assert p.tobytes() == b"hello world"

    def test_slice(self):
        p = BytesPayload(b"hello world")
        assert p.slice(6, 5).tobytes() == b"world"

    def test_slice_bounds(self):
        p = BytesPayload(b"abc")
        with pytest.raises(ValueError):
            p.slice(1, 3)
        with pytest.raises(ValueError):
            p.slice(-1, 1)

    def test_empty(self):
        assert BytesPayload(b"").size == 0


class TestSyntheticPayload:
    def test_size_only(self):
        p = SyntheticPayload(1 << 26, tag=("b", 1, 0))
        assert p.size == 1 << 26
        assert not p.is_real
        assert p.tag == ("b", 1, 0)

    def test_tobytes_refused(self):
        with pytest.raises(TypeError):
            SyntheticPayload(10).tobytes()

    def test_slice_keeps_tag(self):
        p = SyntheticPayload(100, tag="t").slice(10, 50)
        assert p.size == 50 and p.tag == "t"

    def test_slice_bounds(self):
        with pytest.raises(ValueError):
            SyntheticPayload(10).slice(5, 6)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SyntheticPayload(-1)


class TestConcat:
    def test_all_real(self):
        joined = concat([BytesPayload(b"ab"), BytesPayload(b"cd")])
        assert joined.is_real and joined.tobytes() == b"abcd"

    def test_mixed_degrades_to_synthetic(self):
        joined = concat([BytesPayload(b"ab"), SyntheticPayload(5)])
        assert not joined.is_real and joined.size == 7

    def test_empty_list(self):
        assert concat([]).tobytes() == b""


class TestBlockDescriptor:
    def _mk(self, **kw):
        defaults = dict(
            blob_id="b", version=1, index=0, size=64, providers=("p0",), nonce=7, seq=0
        )
        defaults.update(kw)
        return BlockDescriptor(**defaults)

    def test_block_id_uses_nonce_not_version(self):
        d = self._mk(version=9, nonce=7, seq=2, index=5)
        assert d.block_id == ("b", 7, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            self._mk(version=0)
        with pytest.raises(ValueError):
            self._mk(index=-1)
        with pytest.raises(ValueError):
            self._mk(size=0)
        with pytest.raises(ValueError):
            self._mk(providers=())
        with pytest.raises(ValueError):
            self._mk(seq=-1)

    def test_frozen(self):
        d = self._mk()
        with pytest.raises(AttributeError):
            d.size = 1
