"""Tests for replication maintenance (§VI-B fault tolerance)."""

import pytest

from repro.blob import LocalBlobStore, StoreConfig, find_under_replicated, repair_blob
from repro.errors import ReplicationError

BS = 16


@pytest.fixture
def store():
    return LocalBlobStore(config=StoreConfig(
        data_providers=6, metadata_providers=2, block_size=BS, replication=2
    ))


class TestDetection:
    def test_healthy_blob_reports_nothing(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * (4 * BS))
        assert find_under_replicated(store, blob) == []

    def test_failed_provider_detected(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * (4 * BS))
        victim = store.block_locations(blob, 0, BS)[0].providers[0]
        store.fail_provider(victim)
        lacking = find_under_replicated(store, blob)
        assert lacking  # at least the blocks homed on the victim
        assert all(victim in leaf.block.providers for leaf in lacking)

    def test_empty_blob(self, store):
        blob = store.create()
        assert find_under_replicated(store, blob) == []


class TestRepair:
    def test_repair_restores_level_and_data(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * (4 * BS))
        victim = store.block_locations(blob, 0, BS)[0].providers[0]
        store.fail_provider(victim)
        report = repair_blob(store, blob)
        assert report.blocks_repaired >= 1
        assert report.copies_created == report.blocks_repaired
        assert find_under_replicated(store, blob) == []
        # Data readable even with the victim still down.
        assert store.read(blob) == b"a" * (4 * BS)

    def test_repaired_leaf_has_new_replica_set(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * BS)
        victim = store.block_locations(blob, 0, BS)[0].providers[0]
        store.fail_provider(victim)
        repair_blob(store, blob)
        providers = store.block_locations(blob, 0, BS)[0].providers
        assert victim not in providers
        assert len(providers) == 2

    def test_total_loss_is_an_error(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * BS)
        for provider in store.block_locations(blob, 0, BS)[0].providers:
            store.fail_provider(provider)
        with pytest.raises(ReplicationError, match="no live replica"):
            repair_blob(store, blob)

    def test_not_enough_providers_is_an_error(self):
        store = LocalBlobStore(config=StoreConfig(data_providers=2, block_size=BS, replication=2))
        blob = store.create()
        store.write(blob, 0, b"a" * BS)
        store.fail_provider(store.block_locations(blob, 0, BS)[0].providers[0])
        with pytest.raises(ReplicationError, match="not enough live providers"):
            repair_blob(store, blob)

    def test_repair_idempotent(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * (2 * BS))
        store.fail_provider(store.block_locations(blob, 0, BS)[0].providers[0])
        repair_blob(store, blob)
        second = repair_blob(store, blob)
        assert second.blocks_repaired == 0

    def test_old_versions_repairable_too(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * BS)  # v1
        store.write(blob, 0, b"b" * BS)  # v2
        victim = store.block_locations(blob, 0, BS, version=1)[0].providers[0]
        store.fail_provider(victim)
        repair_blob(store, blob, version=1)
        assert store.read(blob, version=1) == b"a" * BS
