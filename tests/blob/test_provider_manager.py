"""Tests for placement policies and the provider manager."""

import numpy as np
import pytest

from repro.blob import ProviderManagerCore, make_policy
from repro.errors import ProviderUnavailable, ReplicationError
from repro.util import manhattan_unbalance


def manager(n=8, policy="round_robin", seed=0):
    pm = ProviderManagerCore(policy=policy, rng=np.random.default_rng(seed))
    for i in range(n):
        pm.register(f"p{i}")
    return pm


class TestRoundRobin:
    def test_cycles_in_name_order(self):
        pm = manager(4)
        placements = pm.allocate(6, [64] * 6)
        assert [p[0] for p in placements] == ["p0", "p1", "p2", "p3", "p0", "p1"]

    def test_cursor_persists_across_allocations(self):
        pm = manager(4)
        pm.allocate(3, [64] * 3)
        placements = pm.allocate(2, [64] * 2)
        assert [p[0] for p in placements] == ["p3", "p0"]

    def test_perfectly_balanced_when_count_divides(self):
        pm = manager(8)
        pm.allocate(64, [1] * 64)
        counts = pm.block_counts()
        assert manhattan_unbalance(list(counts.values())) == 0


class TestOtherPolicies:
    def test_least_loaded_fills_valleys(self):
        pm = manager(3, policy="least_loaded")
        pm.allocate(3, [1, 1, 1])
        pm.allocate(3, [1, 1, 1])
        assert set(pm.block_counts().values()) == {2}

    def test_random_is_seed_deterministic(self):
        a = manager(8, policy="random", seed=42).allocate(20, [1] * 20)
        b = manager(8, policy="random", seed=42).allocate(20, [1] * 20)
        assert a == b

    def test_random_is_unbalanced_vs_round_robin(self):
        rnd = manager(16, policy="random", seed=1)
        rr = manager(16, policy="round_robin")
        rnd.allocate(64, [1] * 64)
        rr.allocate(64, [1] * 64)
        d_rnd = manhattan_unbalance(list(rnd.block_counts().values()))
        d_rr = manhattan_unbalance(list(rr.block_counts().values()))
        assert d_rnd > d_rr

    def test_local_first_uses_client_when_provider(self):
        pm = manager(4, policy="local_first")
        placements = pm.allocate(5, [1] * 5, client="p2")
        assert all(p[0] == "p2" for p in placements)

    def test_local_first_random_when_remote_client(self):
        pm = manager(4, policy="local_first")
        placements = pm.allocate(30, [1] * 30, client="not-a-provider")
        assert len({p[0] for p in placements}) > 1

    def test_make_policy_unknown(self):
        with pytest.raises(ValueError, match="unknown placement policy"):
            make_policy("fancy")


class TestReplication:
    def test_replica_sets_distinct(self):
        pm = manager(6)
        placements = pm.allocate(6, [1] * 6, replication=3)
        for replicas in placements:
            assert len(replicas) == 3
            assert len(set(replicas)) == 3

    def test_replication_exceeding_live_rejected(self):
        pm = manager(2)
        with pytest.raises(ReplicationError):
            pm.allocate(1, [1], replication=3)

    def test_decommissioned_excluded(self):
        pm = manager(3)
        pm.decommission("p1")
        placements = pm.allocate(8, [1] * 8)
        assert all("p1" not in replicas for replicas in placements)
        pm.recover("p1")
        placements = pm.allocate(3, [1] * 3)
        assert any("p1" in replicas for replicas in placements)

    def test_replication_counts_all_copies(self):
        pm = manager(4)
        pm.allocate(4, [10] * 4, replication=2)
        assert sum(pm.block_counts().values()) == 8


class TestBookkeeping:
    def test_register_duplicate_rejected(self):
        pm = manager(2)
        with pytest.raises(ValueError):
            pm.register("p0")

    def test_unknown_provider_rejected(self):
        pm = manager(2)
        with pytest.raises(ProviderUnavailable):
            pm.decommission("nope")

    def test_release_decrements(self):
        pm = manager(2)
        pm.allocate(2, [100, 100])
        pm.release("p0", 100)
        assert pm.block_counts()["p0"] == 0

    def test_allocation_validation(self):
        pm = manager(2)
        with pytest.raises(ValueError):
            pm.allocate(0, [])
        with pytest.raises(ValueError):
            pm.allocate(2, [1])
