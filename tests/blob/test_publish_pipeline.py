"""Group-commit publish pipeline (DESIGN.md §10).

Three layers of coverage:

* the version manager's batch surface itself — per-item error
  isolation, watermark-once-per-batch, hooks firing once with the full
  committed range;
* the store's :class:`~repro.blob.store.PublishPipeline` under real
  concurrent appenders — round trips scale with batches (not writers),
  per-blob ordering holds, one writer's invalid request never poisons
  its batch-mates;
* chaos: a writer crashing *inside* a commit batch (metadata publish
  or overlapped scatter failing after assignment) still tombstones
  cleanly — the watermark advances over it, filler resolves, and no
  other batch member is lost or reordered.
"""

import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.blob import LocalBlobStore, StoreConfig
from repro.blob.version_manager import AssignRequest, VersionManagerCore
from repro.errors import (
    BlobNotFound,
    InvalidRange,
    ProviderError,
    ProviderUnavailable,
    PublishHookError,
    VersionNotFound,
    WriteConflict,
)

BS = 1024


# ---------------------------------------------------------------------------
# The version-manager batch surface (pure core, no threads)
# ---------------------------------------------------------------------------


class TestAssignBatch:
    def test_batch_order_is_assignment_order(self):
        vm = VersionManagerCore()
        vm.create_blob("b", block_size=BS)
        tickets = vm.assign_batch(
            [AssignRequest("b", BS), AssignRequest("b", 2 * BS), AssignRequest("b", BS)]
        )
        assert [t.version for t in tickets] == [1, 2, 3]
        # Appends chain: each offset is the preceding in-flight size.
        assert [t.offset for t in tickets] == [0, BS, 3 * BS]

    def test_invalid_member_is_isolated_and_consumes_no_version(self):
        vm = VersionManagerCore()
        vm.create_blob("b", block_size=BS)
        out = vm.assign_batch(
            [
                AssignRequest("b", BS),
                AssignRequest("b", BS, offset=17),  # misaligned
                AssignRequest("nope", BS),  # unknown blob
                AssignRequest("b", BS),
            ]
        )
        assert out[0].version == 1
        assert isinstance(out[1], InvalidRange)
        assert isinstance(out[2], VersionNotFound) or "nope" in str(out[2])
        # The bad members consumed no version number.
        assert out[3].version == 2

    def test_explicit_offset_members_ride_the_batch(self):
        vm = VersionManagerCore()
        vm.create_blob("b", block_size=BS)
        first, second = vm.assign_batch(
            [AssignRequest("b", 2 * BS), AssignRequest("b", BS, offset=0)]
        )
        assert (first.version, first.offset) == (1, 0)
        assert (second.version, second.offset) == (2, 0)


class TestCommitBatch:
    def _two_assigned(self):
        vm = VersionManagerCore()
        vm.create_blob("b", block_size=BS)
        vm.assign_append("b", BS)
        vm.assign_append("b", BS)
        return vm

    def test_watermark_advances_once_per_batch(self):
        vm = self._two_assigned()
        published = []
        vm.on_publish(lambda blob_id, watermark: published.append(watermark))
        outcomes = vm.commit_batch([("b", 1), ("b", 2)])
        assert [o.watermark for o in outcomes] == [2, 2]
        # ONE hook firing with the final watermark — not one per member.
        assert published == [2]

    def test_per_item_errors_do_not_poison_batch_mates(self):
        vm = self._two_assigned()
        outcomes = vm.commit_batch(
            [("b", 9), ("b", 1), ("b", 1), ("nope", 1), ("b", 2)]
        )
        assert isinstance(outcomes[0].error, VersionNotFound)
        # Members observe the BATCH's final watermark (2: versions 1
        # and 2 both committed in this batch), not their own version.
        assert outcomes[1].watermark == 2 and outcomes[1].error is None
        # Duplicate *within* the batch: the second report conflicts.
        assert isinstance(outcomes[2].error, WriteConflict)
        assert isinstance(outcomes[3].error, BlobNotFound)
        assert outcomes[4].watermark == 2
        assert vm.published_version("b") == 2

    def test_hook_error_reaches_every_committed_member(self):
        vm = self._two_assigned()

        def bad_hook(blob_id, watermark):
            raise RuntimeError("stale cache")

        vm.on_publish(bad_hook)
        outcomes = vm.commit_batch([("b", 1), ("b", 2), ("b", 9)])
        assert isinstance(outcomes[0].hook_error, PublishHookError)
        assert outcomes[0].hook_error is outcomes[1].hook_error
        assert outcomes[2].hook_error is None  # never committed
        # The snapshots ARE published despite the raising hook.
        assert vm.published_version("b") == 2

    def test_multi_blob_batch_advances_each_blob_once(self):
        vm = VersionManagerCore()
        fired = []
        vm.on_publish(lambda blob_id, watermark: fired.append((blob_id, watermark)))
        for blob_id in ("x", "y"):
            vm.create_blob(blob_id, block_size=BS)
            vm.assign_append(blob_id, BS)
            vm.assign_append(blob_id, BS)
        outcomes = vm.commit_batch([("x", 1), ("y", 1), ("x", 2), ("y", 2)])
        assert [o.watermark for o in outcomes] == [2, 2, 2, 2]
        assert sorted(fired) == [("x", 2), ("y", 2)]

    def test_gap_in_batch_holds_the_watermark(self):
        vm = VersionManagerCore()
        vm.create_blob("b", block_size=BS)
        for _ in range(3):
            vm.assign_append("b", BS)
        outcomes = vm.commit_batch([("b", 2), ("b", 3)])
        # Version 1 is still in flight: nothing is revealed yet.
        assert [o.watermark for o in outcomes] == [0, 0]
        assert vm.commit("b", 1) == 3


# ---------------------------------------------------------------------------
# The store pipeline under concurrent appenders
# ---------------------------------------------------------------------------


def _concurrent_appends(store, blob, writers, rounds, payload_of, extra=None):
    """Run appenders concurrently; returns per-thread recorded versions."""
    barrier = threading.Barrier(writers + (1 if extra else 0))
    versions = {t: [] for t in range(writers)}
    errors = []

    def appender(tid):
        try:
            barrier.wait()
            for r in range(rounds):
                versions[tid].append(store.append(blob, payload_of(tid, r)))
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=appender, args=(t,)) for t in range(writers)
    ]
    if extra:
        threads.append(threading.Thread(target=extra, args=(barrier,)))
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return versions


class TestPublishPipeline:
    def test_round_trips_scale_with_batches_not_writers(self):
        writers, rounds = 8, 2
        with LocalBlobStore(config=StoreConfig(
            data_providers=4,
            metadata_providers=2,
            block_size=BS,
            io_workers=4,
            vman_latency=1e-3,
            publish_window=5e-3,
            overlap_publish=True,
        )) as store:
            blob = store.create()
            store.vman_stats.reset()
            _concurrent_appends(
                store, blob, writers, rounds, lambda t, r: bytes([65 + t]) * BS
            )
            stats = store.vman_stats.snapshot()
            total_ops = writers * rounds
            # Per-writer would be exactly 2 * total_ops serialized
            # interactions; batching must at least halve that.
            assert stats["vman_round_trips"] <= total_ops
            assert stats["vman_max_commit_batch"] >= 2
            assert stats["vman_tickets_assigned"] == total_ops
            assert stats["vman_commits_reported"] == total_ops
            assert store.latest_version(blob) == total_ops

    def test_every_version_reads_back_in_assignment_order(self):
        writers, rounds = 6, 3
        with LocalBlobStore(config=StoreConfig(
            data_providers=4,
            metadata_providers=2,
            block_size=BS,
            io_workers=4,
            publish_window=2e-3,
            overlap_publish=True,
        )) as store:
            blob = store.create()
            versions = _concurrent_appends(
                store, blob, writers, rounds,
                lambda t, r: bytes([65 + t]) * ((1 + (t + r) % 2) * BS),
            )
            # Versions are dense, unique, and per-writer monotone
            # (per-blob ordering: a writer's later append has a higher
            # version than its earlier one).
            flat = sorted(v for vs in versions.values() for v in vs)
            assert flat == list(range(1, writers * rounds + 1))
            for vs in versions.values():
                assert vs == sorted(vs)
            # Content equals the concatenation of every writer's
            # payloads in version order: nothing lost, nothing reordered.
            by_version = {
                v: bytes([65 + t]) * ((1 + (t + r) % 2) * BS)
                for t, vs in versions.items()
                for r, v in enumerate(vs)
            }
            expected = b"".join(by_version[v] for v in flat)
            assert store.read(blob) == expected

    def test_invalid_member_fails_alone(self):
        writers, rounds = 4, 2
        with LocalBlobStore(config=StoreConfig(
            data_providers=4,
            metadata_providers=2,
            block_size=BS,
            io_workers=4,
            publish_window=5e-3,
        )) as store:
            blob = store.create()
            bad_error = []

            def bad_writer(barrier):
                barrier.wait()
                try:
                    # Misaligned offset: rejected at assignment, inside
                    # whatever batch it landed in.
                    store.write(blob, 17, b"x" * BS)
                except InvalidRange as exc:
                    bad_error.append(exc)

            _concurrent_appends(
                store, blob, writers, rounds,
                lambda t, r: bytes([65 + t]) * BS, extra=bad_writer,
            )
            assert len(bad_error) == 1
            assert store.latest_version(blob) == writers * rounds
            assert len(store.read(blob)) == writers * rounds * BS

    def test_single_threaded_behavior_unchanged(self):
        with LocalBlobStore(config=StoreConfig(
            data_providers=2, metadata_providers=2, block_size=BS
        )) as store:
            blob = store.create()
            assert store.append(blob, b"a" * BS) == 1
            assert store.append(blob, b"b" * BS) == 2
            stats = store.vman_stats.snapshot()
            assert stats["vman_assign_rounds"] == 2
            assert stats["vman_commit_rounds"] == 2
            assert stats["vman_max_commit_batch"] == 1
            assert store.read(blob) == b"a" * BS + b"b" * BS


# ---------------------------------------------------------------------------
# Chaos: a writer dying inside a commit batch
# ---------------------------------------------------------------------------


def _run_doomed_scenario(writers, rounds, doomed_round, window):
    """Concurrent appenders; one extra writer's metadata publish dies.

    Returns (store-read checks done inside); asserts the §10 abort
    invariants: the dead writer tombstones, the watermark advances
    over it, every survivor's append lands intact and in order.
    """
    store = LocalBlobStore(config=StoreConfig(
        data_providers=4,
        metadata_providers=2,
        block_size=BS,
        io_workers=4,
        publish_window=window,
        overlap_publish=True,
    ))
    try:
        blob = store.create()
        doomed_error = []
        original = store._publish_metadata

        def failing_publish(ticket, nonce, sizes, placements):
            if threading.current_thread().name == "doomed":
                raise ProviderError("injected: metadata provider died")
            return original(ticket, nonce, sizes, placements)

        store._publish_metadata = failing_publish

        def doomed_writer(barrier):
            barrier.wait()
            for r in range(doomed_round):
                store.append(blob, b"z" * BS)  # healthy warm-up appends
            threading.current_thread().name = "doomed"
            try:
                store.append(blob, b"z" * (2 * BS))
            except ProviderError as exc:
                doomed_error.append(exc)

        versions = _concurrent_appends(
            store, blob, writers, rounds,
            lambda t, r: bytes([65 + t]) * BS, extra=doomed_writer,
        )
        assert len(doomed_error) == 1
        total = writers * rounds + doomed_round + 1
        # The watermark advanced over the tombstone: every version is
        # published, none is wedged in flight.
        assert store.latest_version(blob) == total
        assert store.version_manager.in_flight(blob) == []
        tombstones = [
            v for v in range(1, total + 1) if store.snapshot(blob, v).tombstone
        ]
        assert len(tombstones) == 1
        # Survivors: dense versions, per-writer order, correct bytes.
        by_version = {
            v: bytes([65 + t]) * BS
            for t, vs in versions.items()
            for v in vs
        }
        for vs in versions.values():
            assert vs == sorted(vs)
        healthy_doomed = (
            set(range(1, total + 1)) - set(by_version) - set(tombstones)
        )
        for v in healthy_doomed:  # the doomed writer's warm-up appends
            by_version[v] = b"z" * BS
        by_version[tombstones[0]] = bytes(2 * BS)  # filler reads as zeros
        expected = b"".join(by_version[v] for v in range(1, total + 1))
        assert store.read(blob) == expected
        # The store stays fully writable after the abort.
        assert store.append(blob, b"t" * BS) == total + 1
    finally:
        store.close()


class TestCrashInsideCommitBatch:
    def test_metadata_death_mid_batch_tombstones_cleanly(self):
        _run_doomed_scenario(writers=6, rounds=2, doomed_round=1, window=5e-3)

    @given(
        writers=st.integers(min_value=2, max_value=5),
        rounds=st.integers(min_value=1, max_value=2),
        doomed_round=st.integers(min_value=0, max_value=2),
        window=st.sampled_from([0.0, 1e-3, 4e-3]),
    )
    def test_doomed_batches_property(self, writers, rounds, doomed_round, window):
        _run_doomed_scenario(writers, rounds, doomed_round, window)

    def test_abort_drains_in_flight_scatter_before_rollback(self):
        """Metadata dying while the overlapped scatter is still in
        flight must not strand late-landing replicas: the abort settles
        every transfer first, so the rollback sees the full list."""
        with LocalBlobStore(config=StoreConfig(
            data_providers=3,
            metadata_providers=2,
            block_size=BS,
            io_workers=4,
            provider_latency=0.02,  # transfers outlive the metadata failure
            overlap_publish=True,
        )) as store:
            blob = store.create()
            store.append(blob, b"a" * BS)
            before = store.provider_block_counts()

            def instant_failure(ticket, nonce, sizes, placements):
                raise ProviderError("injected: metadata down")

            store._publish_metadata = instant_failure
            with pytest.raises(ProviderError):
                store.append(blob, b"b" * (3 * BS))
            # Every replica the doomed write scattered was rolled back —
            # including the ones that landed after the failure surfaced.
            assert store.provider_block_counts() == before
            assert store.snapshot(blob, 2).tombstone

    def test_overlapped_scatter_failure_tombstones_cleanly(self):
        """A provider dying mid-scatter AFTER assignment (overlap mode)
        must tombstone — and the store must keep serving."""
        with LocalBlobStore(config=StoreConfig(
            data_providers=2,
            metadata_providers=2,
            block_size=BS,
            replication=2,
            io_workers=4,
            overlap_publish=True,
        )) as store:
            blob = store.create()
            store.append(blob, b"a" * BS)
            # Fail the provider WITHOUT decommissioning it: placement
            # still targets it, so the overlapped scatter dies after
            # the version was already assigned.
            victim = sorted(store.providers)[0]
            store.providers[victim].fail()
            with pytest.raises(ProviderUnavailable):
                store.append(blob, b"b" * (2 * BS))
            assert store.latest_version(blob) == 2
            assert store.snapshot(blob, 2).tombstone
            assert store.read(blob) == b"a" * BS + bytes(2 * BS)
            store.providers[victim].recover()
            store.provider_manager.recover(victim)
            assert store.append(blob, b"c" * BS) == 3
            assert store.read(blob) == b"a" * BS + bytes(2 * BS) + b"c" * BS
