"""Metadata-provider failure tolerance through the whole store.

"The metadata is stored in a DHT (formed by the metadata providers),
which is resilient to faults by construction" (§VI-B) — with metadata
replication, reads survive metadata-provider failures end to end.
"""

import pytest

from repro.blob import LocalBlobStore, StoreConfig
from repro.errors import ProviderUnavailable

BS = 16


def make_store(metadata_replication):
    return LocalBlobStore(config=StoreConfig(
        data_providers=4,
        metadata_providers=4,
        block_size=BS,
        metadata_replication=metadata_replication,
    ))


class TestMetadataFailover:
    def test_replicated_metadata_survives_one_bucket(self):
        store = make_store(metadata_replication=2)
        blob = store.create()
        store.write(blob, 0, b"m" * (8 * BS))
        store.metadata.store.fail_bucket("mdp-000")
        assert store.read(blob) == b"m" * (8 * BS)

    def test_replicated_metadata_survives_any_single_bucket(self):
        for victim in range(4):
            store = make_store(metadata_replication=2)
            blob = store.create()
            store.write(blob, 0, b"m" * (8 * BS))
            store.metadata.store.fail_bucket(f"mdp-{victim:03d}")
            assert store.read(blob) == b"m" * (8 * BS)

    def test_unreplicated_metadata_breaks_reads(self):
        """Without DHT replication, losing a bucket loses tree nodes."""
        store = make_store(metadata_replication=1)
        blob = store.create()
        store.write(blob, 0, b"m" * (16 * BS))  # many nodes, all buckets hit
        store.metadata.store.fail_bucket("mdp-000")
        with pytest.raises(ProviderUnavailable):
            store.read(blob)

    def test_writes_continue_during_bucket_outage(self):
        store = make_store(metadata_replication=2)
        blob = store.create()
        store.write(blob, 0, b"a" * (4 * BS))
        store.metadata.store.fail_bucket("mdp-001")
        store.append(blob, b"b" * (2 * BS))  # writes go to live replicas
        assert store.read(blob) == b"a" * (4 * BS) + b"b" * (2 * BS)

    def test_recovered_bucket_serves_again(self):
        store = make_store(metadata_replication=2)
        blob = store.create()
        store.write(blob, 0, b"a" * (4 * BS))
        store.metadata.store.fail_bucket("mdp-002")
        store.metadata.store.recover_bucket("mdp-002")
        assert store.read(blob) == b"a" * (4 * BS)
