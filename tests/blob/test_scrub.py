"""Anti-entropy scrub (DESIGN.md §8): replicas converge on their own.

PR 2 left one manual step in the failure story: after a metadata
bucket outage spanning a write abort, a recovered replica serves stale
real-patch nodes of the dead write until ``republish_tombstone`` runs
by hand.  The scrub subsystem removes it — these tests drive the whole
acceptance scenario (bucket dies mid-write, abort, recovery, one scrub
pass restores digest-verified convergence), the fold-in of block
re-replication, the GC-floor and in-flight guards, the rate limiter,
and the background daemon.
"""

import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.blob import (
    LocalBlobStore,
    MaintenanceDaemon,
    ScrubReport,
    StoreConfig,
    Throttle,
    collect_garbage,
)
from repro.dht.store import MISSING
from repro.errors import ProviderUnavailable, ReplicationError, VersionNotFound
from tests.blob.test_write_rollback import engine_kwargs, make_chaos_store

BS = 16


def make_store(**kwargs):
    defaults = dict(
        data_providers=4, metadata_providers=4, block_size=BS, replication=1
    )
    defaults.update(kwargs)
    return LocalBlobStore(config=StoreConfig(**defaults))


def co_owned_keys(store, bucket_a, bucket_b):
    """Keys whose replica set contains both named buckets."""
    owners = store.metadata.store.owners
    return {
        key
        for key in store.metadata.all_node_keys()
        if bucket_a in owners(key) and bucket_b in owners(key)
    }


class TestCleanStore:
    def test_scrub_of_healthy_store_heals_nothing(self):
        store = make_store(metadata_replication=2, replication=2)
        blob = store.create()
        store.append(blob, b"a" * (4 * BS))
        store.write(blob, 0, b"b" * (2 * BS))
        report = store.scrub()
        assert isinstance(report, ScrubReport)
        assert report.clean
        assert report.blobs_scanned == 1
        assert report.nodes_checked > 0
        assert report.blocks_checked > 0
        assert report.errors == ()
        store.close()

    def test_scrub_is_idempotent_after_healing(self):
        store = make_store(metadata_replication=2)
        blob = store.create()
        store.append(blob, b"a" * (4 * BS))
        # Damage: one replica of every key loses its copy (a bucket that
        # was down during the writes and came back empty-handed).
        victim = next(iter(store.metadata.store.buckets))
        store.metadata.store.buckets[victim]._items.clear()
        first = store.scrub()
        assert first.replicas_healed > 0
        second = store.scrub()
        assert second.clean
        store.close()


class TestMetadataReconciliation:
    def test_lagging_replica_refed_from_healthy_copy(self):
        store = make_store(metadata_providers=6, metadata_replication=2)
        blob = store.create()
        store.append(blob, b"a" * (4 * BS))

        # A bucket down during the write misses every put addressed to it.
        victim = sorted(store.metadata.store.buckets)[0]
        store.metadata.store.fail_bucket(victim)
        store.append(blob, b"b" * (4 * BS))
        store.metadata.store.recover_bucket(victim)

        missing_before = [
            key
            for key in store.metadata.all_node_keys()
            if store.metadata.replica_nodes(key).get(victim) is MISSING
        ]
        report = store.scrub()
        assert report.replicas_healed == len(missing_before)
        assert store.metadata.divergent_keys() == []
        # Digest equality across buckets over every co-owned key set.
        buckets = store.metadata.store.buckets
        for other in buckets:
            if other == victim:
                continue
            shared = co_owned_keys(store, victim, other)
            assert buckets[victim].digest(shared) == buckets[other].digest(shared)
        store.close()

    @pytest.mark.parametrize("io_mode", (0, 4, "async"))
    def test_offline_bucket_is_skipped_not_an_error(self, io_mode):
        store = make_store(
            metadata_providers=4, metadata_replication=2, **engine_kwargs(io_mode)
        )
        blob = store.create()
        store.append(blob, b"a" * (2 * BS))
        victim = sorted(store.metadata.store.buckets)[0]
        store.metadata.store.fail_bucket(victim)
        report = store.scrub()
        assert report.offline_buckets == 1
        # Nothing readable diverged; the dead bucket heals after recovery.
        assert report.errors == ()
        store.close()

    @pytest.mark.parametrize("io_mode", (0, 4, "async"))
    def test_bucket_dying_mid_pass_is_recorded_not_raised(self, io_mode):
        """A bucket failing between the pass's enumeration and its heal
        write must not abort the sweep (the GC's mid-sweep rule)."""
        store = make_store(
            metadata_providers=6, metadata_replication=2, **engine_kwargs(io_mode)
        )
        blob = store.create()
        victim = sorted(store.metadata.store.buckets)[0]
        store.metadata.store.fail_bucket(victim)
        store.append(blob, b"a" * (4 * BS))  # victim lags behind
        store.metadata.store.recover_bucket(victim)

        bucket = store.metadata.store.buckets[victim]
        real_put = bucket.put

        def die_on_first_heal(key, value):
            bucket.online = False  # fails between enumeration and heal
            return real_put(key, value)

        bucket.put = die_on_first_heal
        report = store.scrub()
        bucket.put = real_put
        assert report.errors  # the lost heals are recorded ...
        assert all("heal of" in err for err in report.errors)
        # ... and the pass after recovery finishes the job.
        store.metadata.store.recover_bucket(victim)
        store.scrub()
        assert store.metadata.divergent_keys() == []
        store.close()

    def test_in_flight_version_is_left_alone(self):
        store = make_store(metadata_replication=2)
        blob = store.create()
        store.append(blob, b"a" * BS)
        ticket = store.version_manager.assign_append(blob, BS)  # v2 in flight
        report = store.scrub()
        assert report.skipped_in_flight == 0  # nothing published under v2 yet
        # Publish half the patch by hand: the scrub must not "heal"
        # (i.e. interfere with) a racing writer's partial publish.
        store._publish_metadata(
            ticket, nonce=999, sizes=[BS], placements=[("provider-000",)]
        )
        report = store.scrub()
        assert report.skipped_in_flight > 0
        assert report.filler_republished == 0
        store.close()


class TestTombstoneHealing:
    def stale_node_scenario(self, **store_kwargs):
        """A replica receives a real-patch node of a doomed write, dies
        before the abort, and recovers serving it — the exact stale-node
        gap the ROADMAP left open (metadata_replication >= 2)."""
        store = make_store(
            metadata_providers=8, metadata_replication=2, data_providers=4,
            **store_kwargs,
        )
        blob = store.create()
        store.append(blob, b"a" * (4 * BS))  # v1

        real = store.metadata.put_patch
        state = {}

        def put_then_kill_first_owner(nodes):
            # Per-node publish so the injection keeps its old shape: the
            # first v2 node lands on every replica, then its primary
            # owner dies, then the rest of the patch fails.
            for node in nodes:
                if node.key.version != 2:
                    real([node])
                    continue
                if "victim" not in state:
                    real([node])  # lands on every replica
                    state["victim"] = store.metadata.store.owners(node.key)[0]
                    state["key"] = node.key
                    store.metadata.store.fail_bucket(state["victim"])
                    continue
                raise ProviderUnavailable("metadata outage")

        store.metadata.put_patch = put_then_kill_first_owner
        with pytest.raises(ProviderUnavailable):
            store.append(blob, b"x" * (2 * BS))  # v2 dies mid-publish
        store.metadata.put_patch = real
        return store, blob, state["victim"], state["key"]

    def test_recovered_replica_serves_stale_node_until_scrubbed(self):
        # Cache disabled: this test demonstrates the raw DHT-layer
        # stale-node hazard, which a warm client cache (correct filler
        # cached by the pre-recovery read) would mask.
        store, blob, victim, key = self.stale_node_scenario(metadata_cache_nodes=0)
        assert store.snapshot(blob, 2).tombstone

        # While the victim is down, reads resolve through the filler on
        # the surviving replica: correct already.
        expected = b"a" * (4 * BS) + bytes(2 * BS)
        assert store.read(blob, version=2) == expected

        # The victim recovers: ring order consults it first, and it
        # still holds the dead write's real leaf — whose block was
        # rolled back.  Stale-node reads are now possible.
        store.metadata.store.recover_bucket(victim)
        assert store.metadata.replica_nodes(key)[victim] != store.metadata.get_node(key) or (
            store.metadata.divergent_keys() != []
        )
        with pytest.raises(ProviderUnavailable):
            store.read(blob, version=2)

        # One scrub pass — no republish_tombstone — and the store
        # converges: digests equal on every co-owned key set, reads
        # can never hit the stale node again.
        report = store.scrub()
        assert report.filler_republished > 0
        assert store.metadata.divergent_keys() == []
        buckets = store.metadata.store.buckets
        for other in buckets:
            if other == victim:
                continue
            shared = co_owned_keys(store, victim, other)
            assert buckets[victim].digest(shared) == buckets[other].digest(shared)
        assert store.read(blob, version=2) == expected
        assert store.scrub().clean  # idempotent: nothing left to heal
        store.close()

    def test_scrub_heal_invalidates_cached_stale_nodes(self):
        """Cache-invalidation path #3 (DESIGN.md §9): a descent that
        cached a recovered replica's stale real-patch node must refetch
        after the scrub heals it — without the invalidation, the client
        would keep resolving the tombstoned version through the dead
        write's leaf forever."""
        store, blob, victim, key = self.stale_node_scenario()  # cache ON
        assert store.metadata.cache is not None
        store.metadata.store.recover_bucket(victim)

        # Ring order consults the recovered replica first: the descent
        # fetches (and caches) the dead write's real leaf, whose block
        # was rolled back — the read fails, stale node now cached.
        with pytest.raises(ProviderUnavailable):
            store.read(blob, version=2)

        report = store.scrub()
        assert report.filler_republished > 0
        # The heal invalidated the cached stale node: the next descent
        # refetches and resolves through the filler, with zero stale
        # reads ever served.
        assert store.read(blob, version=2) == b"a" * (4 * BS) + bytes(2 * BS)
        assert store.metadata.cache.invalidations > 0
        store.close()

    def test_scrub_respects_gc_floor(self):
        """A bucket that slept through a GC sweep holds swept nodes;
        the scrub must neither resurrect them onto healthy replicas nor
        resurrect readability below the floor."""
        store = make_store(metadata_providers=4, metadata_replication=2)
        blob = store.create()
        store.append(blob, b"a" * (2 * BS))
        store.write(blob, 0, b"b" * (2 * BS))
        victim = sorted(store.metadata.store.buckets)[0]
        store.metadata.store.fail_bucket(victim)
        collect_garbage(store, blob, retain_from=2)  # sweeps v1 where it can
        store.metadata.store.recover_bucket(victim)

        report = store.scrub()
        assert report.skipped_gc_floor >= 0  # below-floor keys not healed
        assert report.filler_republished == 0
        with pytest.raises(VersionNotFound):
            store.read(blob, version=1)
        assert store.read(blob, version=2) == b"b" * (2 * BS)
        store.close()


class TestBlockRepairFoldIn:
    def test_under_replicated_blocks_healed_in_same_pass(self):
        store = make_store(data_providers=5, replication=2, metadata_replication=2)
        blob = store.create()
        store.append(blob, b"a" * (4 * BS))
        store.append(blob, b"b" * (2 * BS))
        store.fail_provider("provider-000")

        report = store.scrub()
        assert report.blocks_repaired > 0
        assert report.copies_created >= report.blocks_repaired
        assert report.errors == ()
        # Every retained version reads even with the provider still dead.
        assert store.read(blob, version=1) == b"a" * (4 * BS)
        assert store.read(blob, version=2) == b"a" * (4 * BS) + b"b" * (2 * BS)
        # And every block is back at target on *live* providers.
        assert store.scrub().clean
        store.close()

    def test_lost_block_is_reported_not_raised(self):
        store = make_store(data_providers=2, replication=1)
        blob = store.create()
        store.append(blob, b"a" * BS)
        # Drop the only replica: unrecoverable without a re-write.
        victim = next(
            name for name, p in store.providers.items() if p.block_count
        )
        store.fail_provider(victim)
        report = store.scrub()
        assert report.errors  # recorded ...
        assert report.blocks_repaired == 0  # ... but the pass completed
        store.close()

    def test_shared_subtrees_checked_once_across_versions(self):
        store = make_store(data_providers=4, replication=1)
        blob = store.create()
        store.append(blob, b"a" * (8 * BS))
        for _ in range(4):
            store.write(blob, 0, b"b" * BS)  # v2..v5 share 7 of 8 leaves
        report = store.scrub()
        # 8 distinct blocks + 4 rewrites — not 5 versions x 8 leaves.
        assert report.blocks_checked == 12
        store.close()


class TestThrottle:
    def test_throttle_paces_ticks(self):
        throttle = Throttle(ops_per_sec=200)
        start = time.monotonic()
        for _ in range(21):
            throttle.tick()
        elapsed = time.monotonic() - start
        assert elapsed >= 0.1  # 21 ticks at 200/s spans >= 100 ms

    def test_throttle_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            Throttle(0)

    def test_zero_rate_is_rejected_not_silently_unpaced(self):
        # A falsy-but-present rate must hit Throttle's validation, not
        # accidentally run the pass at full speed.
        store = make_store()
        with pytest.raises(ValueError):
            store.scrub(ops_per_sec=0)
        with pytest.raises(ValueError):
            store.start_maintenance(ops_per_sec=0)
        store.close()

    def test_throttled_scrub_still_heals(self):
        store = make_store(metadata_replication=2)
        blob = store.create()
        store.append(blob, b"a" * (2 * BS))
        victim = next(iter(store.metadata.store.buckets))
        store.metadata.store.buckets[victim]._items.clear()
        report = store.scrub(ops_per_sec=10_000)
        assert report.replicas_healed > 0
        assert store.metadata.divergent_keys() == []
        store.close()


class TestMaintenanceDaemon:
    def wait_for(self, predicate, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.01)
        return False

    @pytest.mark.parametrize("io_mode", (0, 4, "async"))
    def test_chaos_bucket_dies_mid_write_daemon_heals_after_recovery(self, io_mode):
        """The acceptance scenario, end to end, with a REAL bucket
        failure (no monkeypatching) and the background daemon doing the
        healing — no manual republish_tombstone anywhere."""
        store, blob, victim = make_chaos_store(io_mode)
        store.append(blob, b"a" * (4 * BS))  # v1
        store.metadata.store.fail_bucket(victim)
        with pytest.raises((ReplicationError, ProviderUnavailable)):
            store.append(blob, b"x" * (2 * BS))  # v2 aborts mid-publish
        assert store.snapshot(blob, 2).tombstone

        daemon = store.start_maintenance(interval=0.02)
        assert daemon.running
        # While the bucket is down the tombstone stays partially
        # unreadable — the daemon must keep cycling, not crash.
        assert self.wait_for(lambda: daemon.passes >= 2)
        with pytest.raises((VersionNotFound, ProviderUnavailable)):
            store.read(blob, version=2)

        store.metadata.store.recover_bucket(victim)
        expected = b"a" * (4 * BS) + bytes(2 * BS)

        def healed():
            try:
                return store.read(blob, version=2) == expected
            except (VersionNotFound, ProviderUnavailable):
                return False  # daemon has not completed a pass yet

        assert self.wait_for(healed)
        assert store.metadata.divergent_keys() == []
        assert store.read(blob, version=2) == expected
        # A later write keeps working and the next pass stays clean.
        assert store.append(blob, b"y" * (2 * BS)) == 3
        assert self.wait_for(
            lambda: daemon.last_report is not None and daemon.last_report.clean
        )
        store.stop_maintenance()
        assert not daemon.running
        store.close()

    def test_close_stops_daemon(self):
        store = make_store()
        daemon = store.start_maintenance(interval=0.01)
        assert daemon.running
        store.close()
        assert not daemon.running

    def test_start_maintenance_is_idempotent(self):
        store = make_store()
        daemon = store.start_maintenance(interval=0.01)
        assert store.start_maintenance(interval=0.01) is daemon
        store.close()

    def test_start_maintenance_restarts_on_changed_settings(self):
        store = make_store()
        first = store.start_maintenance(interval=60.0)
        second = store.start_maintenance(interval=0.01, ops_per_sec=10_000)
        assert second is not first
        assert not first.running
        assert second.running
        assert second.interval == 0.01
        store.close()

    def test_stop_interrupts_throttled_pass_promptly(self):
        # At 20 ops/s a store with dozens of nodes would take seconds
        # per pass; stop() must cut through the throttle sleeps instead
        # of waiting the pass out.
        store = make_store(metadata_replication=2)
        blob = store.create()
        for i in range(6):
            store.append(blob, bytes([65 + i]) * (2 * BS))
        daemon = store.start_maintenance(interval=0.01, ops_per_sec=20)
        assert self.wait_for(lambda: daemon.running)
        time.sleep(0.1)  # let the pass get into its throttled loops
        start = time.monotonic()
        daemon.stop()
        assert time.monotonic() - start < 2.0
        assert not daemon.running
        store.close()

    def test_daemon_records_pass_failures_and_keeps_running(self):
        store = make_store()
        daemon = MaintenanceDaemon(store, interval=0.01)
        original = store.version_manager.blob_ids

        def exploding_blob_ids():
            raise RuntimeError("boom")

        store.version_manager.blob_ids = exploding_blob_ids
        assert daemon.run_once() is None
        assert isinstance(daemon.last_error, RuntimeError)
        store.version_manager.blob_ids = original
        assert daemon.run_once() is not None
        assert daemon.last_error is None
        store.close()


class TestPropertyScrubbedStoreReadsBack:
    # Example count comes from the hypothesis profile: the tier-1 job
    # runs the default, the CI chaos job runs the larger `chaos` one.
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 3), st.integers(1, 4)), min_size=1, max_size=8
        ),
        damage=st.data(),
    )
    def test_every_version_reads_byte_identical_after_scrub(self, ops, damage):
        """Random writes, then random replica damage (lagging metadata
        buckets, a dead data provider), then ONE scrub pass: every
        retained version must read back byte-identical to the model and
        the replicas must be digest-converged."""
        store = LocalBlobStore(config=StoreConfig(
            data_providers=4,
            metadata_providers=6,
            block_size=BS,
            replication=2,
            metadata_replication=2,
        ))
        blob = store.create()
        content = b""
        expected = {}
        for seq, (kind, nblocks) in enumerate(ops):
            data = bytes([65 + seq % 26]) * (nblocks * BS)
            if kind == 0 or not content:
                version = store.append(blob, data)
                content += data
            else:
                max_block = len(content) // BS
                offset = (seq * 7 % (max_block + 1)) * BS
                version = store.write(blob, offset, data)
                grown = max(len(content), offset + len(data))
                buf = bytearray(content.ljust(grown, b"\0"))
                buf[offset : offset + len(data)] = data
                content = bytes(buf)
            expected[version] = content

        # Damage 1: some replicas "lose" a random subset of their keys.
        keys = sorted(store.metadata.all_node_keys(), key=repr)
        for key in keys:
            if damage.draw(st.booleans()):
                owners = store.metadata.store.owners(key)
                bucket = store.metadata.store.buckets[
                    damage.draw(st.sampled_from(owners))
                ]
                bucket._items.pop(key, None)
        # Damage 2: one data provider dies (replication=2 keeps a copy).
        store.fail_provider("provider-001")

        store.scrub()
        assert store.metadata.divergent_keys() == []
        for version, want in expected.items():
            assert store.read(blob, version=version) == want
        store.close()
