"""Tests for version garbage collection (mark and sweep)."""

import pytest

from repro.blob import LocalBlobStore, StoreConfig, collect_garbage
from repro.errors import BlobError, VersionNotFound

BS = 16


@pytest.fixture
def store():
    return LocalBlobStore(config=StoreConfig(data_providers=4, metadata_providers=2, block_size=BS))


def total_blocks(store):
    return sum(p.block_count for p in store.providers.values())


class TestCollect:
    def test_collects_unreachable_blocks(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * (4 * BS))  # v1: 4 blocks
        store.write(blob, 0, b"b" * (4 * BS))  # v2: rewrites all 4
        assert total_blocks(store) == 8
        report = collect_garbage(store, blob, retain_from=2)
        assert report.blocks_deleted == 4
        assert report.bytes_freed == 4 * BS
        assert total_blocks(store) == 4
        assert store.read(blob, version=2) == b"b" * (4 * BS)

    def test_shared_blocks_survive(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * (4 * BS))  # v1
        store.write(blob, 0, b"b" * BS)  # v2 rewrites only block 0
        report = collect_garbage(store, blob, retain_from=2)
        # v1's block 0 is dead; blocks 1-3 are shared into v2 and live.
        assert report.blocks_deleted == 1
        assert store.read(blob, version=2) == b"b" * BS + b"a" * (3 * BS)

    def test_old_version_unreadable_after_gc(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * BS)
        store.write(blob, 0, b"b" * BS)
        collect_garbage(store, blob, retain_from=2)
        with pytest.raises(VersionNotFound):
            store.read(blob, version=1)

    def test_retained_range_fully_readable(self, store):
        blob = store.create()
        contents = {}
        for v in range(1, 6):
            store.append(blob, bytes([v]) * BS)
            contents[v] = store.read(blob, version=v)
        collect_garbage(store, blob, retain_from=3)
        for v in (3, 4, 5):
            assert store.read(blob, version=v) == contents[v]
        for v in (1, 2):
            with pytest.raises(VersionNotFound):
                store.read(blob, version=v)

    def test_append_only_blob_frees_no_blocks(self, store):
        """Appends never orphan data blocks — only stale tree roots."""
        blob = store.create()
        for v in range(1, 5):
            store.append(blob, bytes([v]) * BS)
        report = collect_garbage(store, blob, retain_from=4)
        assert report.blocks_deleted == 0
        assert report.nodes_deleted > 0  # old roots/inner nodes die

    def test_metadata_nodes_swept(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * (2 * BS))
        store.write(blob, 0, b"b" * (2 * BS))
        before = sum(store.metadata.load_by_provider().values())
        report = collect_garbage(store, blob, retain_from=2)
        after = sum(store.metadata.load_by_provider().values())
        assert report.nodes_deleted > 0
        assert after < before

    def test_multi_blob_isolation(self, store):
        a, b = store.create(), store.create()
        store.write(a, 0, b"a" * BS)
        store.write(a, 0, b"A" * BS)
        store.write(b, 0, b"b" * BS)
        collect_garbage(store, a, retain_from=2)
        assert store.read(b) == b"b" * BS  # untouched
        assert store.read(a) == b"A" * BS


class TestGuards:
    def test_gc_with_inflight_write_rejected(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * BS)
        store.version_manager.assign_append(blob, BS)  # in flight
        with pytest.raises(BlobError, match="in flight"):
            collect_garbage(store, blob, retain_from=1)

    def test_retain_beyond_watermark_rejected(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * BS)
        with pytest.raises(BlobError):
            collect_garbage(store, blob, retain_from=2)

    def test_retain_zero_rejected(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * BS)
        with pytest.raises(ValueError):
            collect_garbage(store, blob, retain_from=0)

    def test_gc_idempotent(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * BS)
        store.write(blob, 0, b"b" * BS)
        collect_garbage(store, blob, retain_from=2)
        report = collect_garbage(store, blob, retain_from=2)
        assert report.blocks_deleted == 0 and report.nodes_deleted == 0

    def test_writes_continue_after_gc(self, store):
        """Future writes must weave correctly over GC'd history."""
        blob = store.create()
        store.write(blob, 0, b"a" * (4 * BS))
        store.write(blob, 0, b"b" * BS)
        collect_garbage(store, blob, retain_from=2)
        store.write(blob, 2 * BS, b"c" * BS)
        assert store.read(blob) == b"b" * BS + b"a" * BS + b"c" * BS + b"a" * BS

    def test_writes_and_appends_weave_over_deep_collected_history(self, store):
        """Regression for the ``history_upto`` GC-floor gap: after a
        pass collects most of a long history, new writers' hints still
        resolve — shared subtrees of retained snapshots keep every
        referenced node alive — and reads stay byte-for-byte."""
        blob = store.create()
        expect = bytearray()
        for v in range(1, 7):  # six appends, then two interior rewrites
            store.append(blob, bytes([v]) * BS)
            expect += bytes([v]) * BS
        store.write(blob, BS, b"X" * BS)
        expect[BS : 2 * BS] = b"X" * BS
        collect_garbage(store, blob, retain_from=7)
        store.write(blob, 3 * BS, b"Y" * BS)
        expect[3 * BS : 4 * BS] = b"Y" * BS
        store.append(blob, b"Z" * BS)
        expect += b"Z" * BS
        assert store.read(blob) == bytes(expect)
        # The hint endpoint itself enforces the floor (weaving against
        # a collected version would reference swept nodes).
        with pytest.raises(VersionNotFound):
            store.version_manager.history_upto(blob, 6)


class TestOfflineMetadataBuckets:
    def test_gc_skips_offline_metadata_bucket(self):
        """An offline bucket must not abort the pass after a partial
        deletion — its garbage keeps until a pass after recovery, like
        the data-provider sweep."""
        store = LocalBlobStore(config=StoreConfig(
            data_providers=4,
            metadata_providers=4,
            block_size=BS,
            metadata_replication=2,
        ))
        blob = store.create()
        store.write(blob, 0, b"a" * (4 * BS))
        store.write(blob, 0, b"b" * (4 * BS))  # v1 becomes garbage
        store.metadata.store.fail_bucket("mdp-001")

        report = collect_garbage(store, blob, retain_from=2)  # must not raise
        assert report.nodes_deleted > 0
        assert store.read(blob, version=2) == b"b" * (4 * BS)

        # The recovered bucket's stale copies go on the next pass.
        store.metadata.store.recover_bucket("mdp-001")
        collect_garbage(store, blob, retain_from=2)
        assert not [
            key
            for key in store.metadata.store.buckets["mdp-001"].keys()
            if getattr(key, "version", None) == 1
        ]
        assert store.read(blob, version=2) == b"b" * (4 * BS)

    def test_gc_survives_metadata_bucket_dying_mid_sweep(self):
        store = LocalBlobStore(config=StoreConfig(
            data_providers=4,
            metadata_providers=2,
            block_size=BS,
            metadata_replication=2,
        ))
        blob = store.create()
        store.write(blob, 0, b"a" * (4 * BS))
        store.write(blob, 0, b"b" * (4 * BS))

        victim = store.metadata.store.buckets["mdp-000"]
        original_delete = victim.delete

        def die_on_delete(key):
            victim.online = False  # goes down just as the sweep reaches it
            return original_delete(key)

        victim.delete = die_on_delete
        report = collect_garbage(store, blob, retain_from=2)  # completes
        victim.delete = original_delete
        victim.online = True
        assert report.nodes_deleted > 0
        assert store.read(blob, version=2) == b"b" * (4 * BS)
