"""Tests for version garbage collection (mark and sweep)."""

import pytest

from repro.blob import LocalBlobStore, collect_garbage
from repro.errors import BlobError, VersionNotFound

BS = 16


@pytest.fixture
def store():
    return LocalBlobStore(data_providers=4, metadata_providers=2, block_size=BS)


def total_blocks(store):
    return sum(p.block_count for p in store.providers.values())


class TestCollect:
    def test_collects_unreachable_blocks(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * (4 * BS))  # v1: 4 blocks
        store.write(blob, 0, b"b" * (4 * BS))  # v2: rewrites all 4
        assert total_blocks(store) == 8
        report = collect_garbage(store, blob, retain_from=2)
        assert report.blocks_deleted == 4
        assert report.bytes_freed == 4 * BS
        assert total_blocks(store) == 4
        assert store.read(blob, version=2) == b"b" * (4 * BS)

    def test_shared_blocks_survive(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * (4 * BS))  # v1
        store.write(blob, 0, b"b" * BS)  # v2 rewrites only block 0
        report = collect_garbage(store, blob, retain_from=2)
        # v1's block 0 is dead; blocks 1-3 are shared into v2 and live.
        assert report.blocks_deleted == 1
        assert store.read(blob, version=2) == b"b" * BS + b"a" * (3 * BS)

    def test_old_version_unreadable_after_gc(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * BS)
        store.write(blob, 0, b"b" * BS)
        collect_garbage(store, blob, retain_from=2)
        with pytest.raises(VersionNotFound):
            store.read(blob, version=1)

    def test_retained_range_fully_readable(self, store):
        blob = store.create()
        contents = {}
        for v in range(1, 6):
            store.append(blob, bytes([v]) * BS)
            contents[v] = store.read(blob, version=v)
        collect_garbage(store, blob, retain_from=3)
        for v in (3, 4, 5):
            assert store.read(blob, version=v) == contents[v]
        for v in (1, 2):
            with pytest.raises(VersionNotFound):
                store.read(blob, version=v)

    def test_append_only_blob_frees_no_blocks(self, store):
        """Appends never orphan data blocks — only stale tree roots."""
        blob = store.create()
        for v in range(1, 5):
            store.append(blob, bytes([v]) * BS)
        report = collect_garbage(store, blob, retain_from=4)
        assert report.blocks_deleted == 0
        assert report.nodes_deleted > 0  # old roots/inner nodes die

    def test_metadata_nodes_swept(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * (2 * BS))
        store.write(blob, 0, b"b" * (2 * BS))
        before = sum(store.metadata.load_by_provider().values())
        report = collect_garbage(store, blob, retain_from=2)
        after = sum(store.metadata.load_by_provider().values())
        assert report.nodes_deleted > 0
        assert after < before

    def test_multi_blob_isolation(self, store):
        a, b = store.create(), store.create()
        store.write(a, 0, b"a" * BS)
        store.write(a, 0, b"A" * BS)
        store.write(b, 0, b"b" * BS)
        collect_garbage(store, a, retain_from=2)
        assert store.read(b) == b"b" * BS  # untouched
        assert store.read(a) == b"A" * BS


class TestGuards:
    def test_gc_with_inflight_write_rejected(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * BS)
        store.version_manager.assign_append(blob, BS)  # in flight
        with pytest.raises(BlobError, match="in flight"):
            collect_garbage(store, blob, retain_from=1)

    def test_retain_beyond_watermark_rejected(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * BS)
        with pytest.raises(BlobError):
            collect_garbage(store, blob, retain_from=2)

    def test_retain_zero_rejected(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * BS)
        with pytest.raises(ValueError):
            collect_garbage(store, blob, retain_from=0)

    def test_gc_idempotent(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * BS)
        store.write(blob, 0, b"b" * BS)
        collect_garbage(store, blob, retain_from=2)
        report = collect_garbage(store, blob, retain_from=2)
        assert report.blocks_deleted == 0 and report.nodes_deleted == 0

    def test_writes_continue_after_gc(self, store):
        """Future writes must weave correctly over GC'd history."""
        blob = store.create()
        store.write(blob, 0, b"a" * (4 * BS))
        store.write(blob, 0, b"b" * BS)
        collect_garbage(store, blob, retain_from=2)
        store.write(blob, 2 * BS, b"c" * BS)
        assert store.read(blob) == b"b" * BS + b"a" * BS + b"c" * BS + b"a" * BS
