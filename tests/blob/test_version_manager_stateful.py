"""Stateful property testing of the version-manager state machine.

Hypothesis drives random interleavings of assign/commit/abort against a
simple reference model, checking the §III-A invariants after every
step:

* version numbers are dense and strictly increasing;
* the publication watermark equals the longest committed prefix
  (linearizability's reveal-in-order rule);
* append offsets always equal the preceding snapshot's size, even when
  that snapshot is still uncommitted;
* history hints contain exactly the lower versions' write ranges.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.blob import VersionManagerCore

BS = 16


class VersionManagerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.vm = VersionManagerCore()
        self.vm.create_blob("b", block_size=BS)
        self.model_records = {0: (0, 0, 0)}  # version -> (offset, length, size_after)
        self.model_committed = {0}
        self.published_events = []
        self.vm.on_publish(lambda blob, v: self.published_events.append(v))

    # -- helpers ------------------------------------------------------------

    @property
    def last_version(self):
        return max(self.model_records)

    @property
    def current_size(self):
        return self.model_records[self.last_version][2]

    def uncommitted(self):
        return sorted(set(self.model_records) - self.model_committed)

    # -- rules -------------------------------------------------------------

    @rule(blocks=st.integers(min_value=1, max_value=4))
    def assign_append(self, blocks):
        if self.current_size % BS != 0:
            return  # unaligned size: append is refused (tested elsewhere)
        length = blocks * BS
        ticket = self.vm.assign_append("b", length)
        assert ticket.version == self.last_version + 1
        assert ticket.offset == self.current_size
        self.model_records[ticket.version] = (
            ticket.offset,
            length,
            self.current_size + length,
        )

    @rule(
        start=st.integers(min_value=0, max_value=6),
        blocks=st.integers(min_value=1, max_value=4),
    )
    def assign_overwrite(self, start, blocks):
        offset = start * BS
        if offset > self.current_size:
            return  # would be a hole
        length = blocks * BS
        ticket = self.vm.assign_write("b", offset, length)
        assert ticket.version == self.last_version + 1
        self.model_records[ticket.version] = (
            offset,
            length,
            max(self.current_size, offset + length),
        )

    @rule(pick=st.randoms(use_true_random=False))
    def commit_random_uncommitted(self, pick):
        pending = self.uncommitted()
        if not pending:
            return
        version = pick.choice(pending)
        self.vm.commit("b", version)
        self.model_committed.add(version)

    @precondition(lambda self: self.uncommitted())
    @rule()
    def abort_last_if_possible(self):
        pending = self.uncommitted()
        last = self.last_version
        if pending and pending[-1] == last and last == max(self.model_records):
            assert self.vm.abort("b", last) is None  # retraction
            del self.model_records[last]

    @rule(pick=st.randoms(use_true_random=False))
    def abort_random_uncommitted(self, pick):
        """Any uncommitted version may abort: the last retracts, an
        interior one tombstones (commits as a no-op in the model)."""
        pending = self.uncommitted()
        if not pending:
            return
        version = pick.choice(pending)
        spec = self.vm.abort("b", version)
        if spec is None:
            del self.model_records[version]
        else:
            assert version < self.last_version  # only interiors tombstone
            assert spec.size_after == self.model_records[version][2]
            self.model_committed.add(version)  # no-op commit in the model

    # -- invariants --------------------------------------------------------------

    @invariant()
    def versions_dense(self):
        assert sorted(self.model_records) == list(range(self.last_version + 1))
        assert self.vm.blob("b").last_assigned == self.last_version

    @invariant()
    def watermark_is_longest_committed_prefix(self):
        expected = 0
        while expected + 1 in self.model_committed:
            expected += 1
        assert self.vm.published_version("b") == expected

    @invariant()
    def published_snapshots_readable_others_not(self):
        from repro.errors import VersionNotReady

        watermark = self.vm.published_version("b")
        for version in self.model_records:
            if version <= watermark:
                info = self.vm.snapshot_info("b", version)
                assert info.size == self.model_records[version][2]
            else:
                try:
                    self.vm.snapshot_info("b", version)
                    assert False, "unpublished snapshot was readable"
                except VersionNotReady:
                    pass

    @invariant()
    def history_hints_match_model(self):
        last = self.last_version
        if last == 0:
            return
        hints = self.vm.history_upto("b", last)
        expected = [
            (v, off // BS, -(-(off + ln) // BS))
            for v, (off, ln, _sz) in sorted(self.model_records.items())
            if v >= 1 and v <= last
        ]
        assert list(hints) == expected

    @invariant()
    def publish_events_monotone(self):
        assert self.published_events == sorted(set(self.published_events))


TestVersionManagerStateful = VersionManagerMachine.TestCase
TestVersionManagerStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
