"""Tests for BLOB branching (§II-A: fork a dataset, evolve independently)."""

import pytest

from repro.blob import LocalBlobStore, StoreConfig, collect_garbage
from repro.errors import BlobError, VersionNotFound, VersionNotReady

BS = 16


@pytest.fixture
def store():
    return LocalBlobStore(config=StoreConfig(data_providers=5, metadata_providers=2, block_size=BS))


def setup_source(store):
    src = store.create("src")
    store.write(src, 0, b"a" * (4 * BS))  # v1
    store.write(src, 0, b"b" * BS)  # v2
    return src


class TestBranchBasics:
    def test_branch_shares_history(self, store):
        src = setup_source(store)
        fork = store.branch(src, "fork")
        assert store.latest_version(fork) == 2
        assert store.read(fork) == store.read(src)
        assert store.read(fork, version=1) == b"a" * (4 * BS)

    def test_branch_is_metadata_only(self, store):
        src = setup_source(store)
        blocks_before = sum(p.block_count for p in store.providers.values())
        store.branch(src, "fork")
        blocks_after = sum(p.block_count for p in store.providers.values())
        assert blocks_after == blocks_before  # zero copies

    def test_branch_at_older_version(self, store):
        src = setup_source(store)
        fork = store.branch(src, "old-fork", version=1)
        assert store.latest_version(fork) == 1
        assert store.read(fork) == b"a" * (4 * BS)

    def test_autonamed_branch(self, store):
        src = setup_source(store)
        fork = store.branch(src)
        assert fork != src and store.read(fork) == store.read(src)


class TestIndependentEvolution:
    def test_writes_diverge(self, store):
        src = setup_source(store)
        fork = store.branch(src, "fork")
        store.write(fork, 0, b"F" * BS)
        store.write(src, BS, b"S" * BS)
        assert store.read(fork) == b"F" * BS + b"a" * (3 * BS)
        assert store.read(src) == b"b" * BS + b"S" * BS + b"a" * (2 * BS)

    def test_appends_diverge(self, store):
        src = setup_source(store)
        fork = store.branch(src, "fork")
        store.append(fork, b"x" * BS)
        assert store.snapshot(fork).size == 5 * BS
        assert store.snapshot(src).size == 4 * BS

    def test_branch_of_branch(self, store):
        src = setup_source(store)
        fork = store.branch(src, "fork")
        store.append(fork, b"x" * BS)
        grand = store.branch(fork, "grand")
        store.write(grand, 0, b"G" * BS)
        assert store.read(grand) == b"G" * BS + b"a" * (3 * BS) + b"x" * BS
        # Ancestors untouched.
        assert store.read(src) == b"b" * BS + b"a" * (3 * BS)
        assert store.read(fork) == b"b" * BS + b"a" * (3 * BS) + b"x" * BS

    def test_shared_block_count_stays_shared(self, store):
        """A branch write adds exactly its own blocks."""
        src = setup_source(store)
        before = sum(p.block_count for p in store.providers.values())
        fork = store.branch(src, "fork")
        store.write(fork, 0, b"F" * BS)
        after = sum(p.block_count for p in store.providers.values())
        assert after == before + 1


class TestBranchValidation:
    def test_existing_id_rejected(self, store):
        src = setup_source(store)
        with pytest.raises(BlobError):
            store.branch(src, src)

    def test_unpublished_version_rejected(self, store):
        src = setup_source(store)
        store.version_manager.assign_append(src, BS)  # v3 in flight
        with pytest.raises(VersionNotReady):
            store.branch(src, "fork", version=3)

    def test_missing_version_rejected(self, store):
        src = setup_source(store)
        with pytest.raises(VersionNotFound):
            store.branch(src, "fork", version=9)

    def test_gcd_version_rejected(self, store):
        src = setup_source(store)
        collect_garbage(store, src, retain_from=2)
        with pytest.raises(VersionNotFound):
            store.branch(src, "fork", version=1)


class TestBranchGcInterplay:
    def test_parent_gc_keeps_branch_readable(self, store):
        """Collecting the parent must never break a branch that shares
        its subtrees and blocks."""
        src = setup_source(store)
        fork = store.branch(src, "fork", version=1)  # pins v1 data
        store.write(src, 0, b"c" * (4 * BS))  # src v3 rewrites all
        collect_garbage(store, src, retain_from=3)
        # Parent's old snapshots are gone...
        with pytest.raises(VersionNotFound):
            store.read(src, version=1)
        # ...but the branch still reads the shared v1 bytes.
        assert store.read(fork) == b"a" * (4 * BS)

    def test_branch_gc_keeps_parent_intact(self, store):
        src = setup_source(store)
        fork = store.branch(src, "fork")
        store.write(fork, 0, b"F" * BS)  # fork v3
        collect_garbage(store, fork, retain_from=3)
        assert store.read(src) == b"b" * BS + b"a" * (3 * BS)
        assert store.read(src, version=1) == b"a" * (4 * BS)

    def test_parent_gc_with_inflight_branch_write_refused(self, store):
        src = setup_source(store)
        fork = store.branch(src, "fork")
        store.version_manager.assign_append(fork, BS)  # in flight on fork
        with pytest.raises(BlobError, match="descendant branch"):
            collect_garbage(store, src, retain_from=2)
