"""Tests for the version manager state machine."""

import pytest

from repro.blob import VersionManagerCore
from repro.errors import (
    BlobError,
    BlobNotFound,
    InvalidRange,
    VersionNotFound,
    VersionNotReady,
    WriteConflict,
)

BS = 64  # tiny block size keeps the arithmetic readable


@pytest.fixture
def vm():
    core = VersionManagerCore()
    core.create_blob("b", block_size=BS)
    return core


class TestBlobLifecycle:
    def test_create_registers_version_zero(self, vm):
        info = vm.snapshot_info("b", 0)
        assert info.version == 0 and info.size == 0
        assert vm.published_version("b") == 0

    def test_duplicate_create_rejected(self, vm):
        with pytest.raises(BlobError):
            vm.create_blob("b", block_size=BS)

    def test_unknown_blob(self, vm):
        with pytest.raises(BlobNotFound):
            vm.assign_write("ghost", 0, BS)

    def test_create_validation(self):
        vm = VersionManagerCore()
        with pytest.raises(ValueError):
            vm.create_blob("x", block_size=0)
        with pytest.raises(ValueError):
            vm.create_blob("x", block_size=BS, replication=0)

    def test_blob_ids(self, vm):
        vm.create_blob("a", block_size=BS)
        assert vm.blob_ids() == ["a", "b"]
        assert vm.has_blob("a") and not vm.has_blob("zz")


class TestAssignment:
    def test_first_write(self, vm):
        t = vm.assign_write("b", 0, 4 * BS)
        assert t.version == 1
        assert (t.start_block, t.end_block) == (0, 4)
        assert t.size_after == 4 * BS
        assert t.root_span == 4
        assert t.history == ()

    def test_history_hints_accumulate(self, vm):
        vm.assign_write("b", 0, 4 * BS)
        vm.assign_write("b", 0, 2 * BS)
        t3 = vm.assign_append("b", BS)
        assert t3.version == 3
        assert t3.history == ((1, 0, 4), (2, 0, 2))

    def test_append_offset_fixed_from_uncommitted_predecessor(self, vm):
        """§III-D: the append offset is the size of the *preceding*
        snapshot even though that write is still in flight."""
        t1 = vm.assign_append("b", 4 * BS)  # not committed!
        t2 = vm.assign_append("b", BS)
        assert t1.version == 1 and t2.version == 2
        assert t2.offset == 4 * BS
        assert t2.size_after == 5 * BS

    def test_overwrite_does_not_grow(self, vm):
        vm.assign_write("b", 0, 4 * BS)
        t = vm.assign_write("b", BS, BS)
        assert t.size_after == 4 * BS
        assert (t.start_block, t.end_block) == (1, 2)

    def test_trailing_partial_write_allowed(self, vm):
        t = vm.assign_write("b", 0, 100)  # 1 full + partial into block 1
        assert t.size_after == 100
        assert t.end_block == 2

    def test_extend_with_partial_allowed(self, vm):
        vm.assign_write("b", 0, 2 * BS)
        t = vm.assign_write("b", 2 * BS, BS + 10)
        assert t.size_after == 3 * BS + 10


class TestAlignmentRules:
    def test_unaligned_offset_rejected(self, vm):
        with pytest.raises(InvalidRange):
            vm.assign_write("b", 10, BS)

    def test_hole_rejected(self, vm):
        with pytest.raises(InvalidRange):
            vm.assign_write("b", BS, BS)  # size is 0: offset 64 leaves a hole

    def test_interior_partial_rejected(self, vm):
        vm.assign_write("b", 0, 4 * BS)
        with pytest.raises(InvalidRange):
            vm.assign_write("b", 0, 10)  # would truncate block 0 mid-blob

    def test_zero_length_rejected(self, vm):
        with pytest.raises(InvalidRange):
            vm.assign_write("b", 0, 0)
        with pytest.raises(InvalidRange):
            vm.assign_append("b", 0)

    def test_negative_offset_rejected(self, vm):
        with pytest.raises(InvalidRange):
            vm.assign_write("b", -BS, BS)

    def test_append_to_unaligned_size_rejected(self, vm):
        vm.assign_write("b", 0, 100)
        with pytest.raises(InvalidRange):
            vm.assign_append("b", BS)

    def test_partial_rewrite_to_exact_end_allowed(self, vm):
        vm.assign_write("b", 0, 100)
        t = vm.assign_write("b", BS, 36)  # rewrites trailing partial exactly
        assert t.size_after == 100


class TestCommitAndPublication:
    def test_in_order_commits_publish_incrementally(self, vm):
        vm.assign_append("b", BS)
        vm.assign_append("b", BS)
        assert vm.commit("b", 1) == 1
        assert vm.commit("b", 2) == 2

    def test_out_of_order_commit_delays_publication(self, vm):
        """§III-A.4: revealing order must respect assignment order."""
        vm.assign_append("b", BS)
        vm.assign_append("b", BS)
        vm.assign_append("b", BS)
        assert vm.commit("b", 3) == 0
        assert vm.commit("b", 2) == 0
        assert vm.published_version("b") == 0
        assert vm.commit("b", 1) == 3  # watermark jumps over the batch

    def test_unpublished_snapshot_not_readable(self, vm):
        vm.assign_append("b", BS)
        vm.assign_append("b", BS)
        vm.commit("b", 2)
        with pytest.raises(VersionNotReady):
            vm.snapshot_info("b", 2)
        with pytest.raises(VersionNotReady):
            vm.snapshot_info("b", 1)

    def test_latest_tracks_watermark_not_assignment(self, vm):
        vm.assign_append("b", BS)
        vm.commit("b", 1)
        vm.assign_append("b", BS)  # in flight
        latest = vm.latest("b")
        assert latest.version == 1 and latest.size == BS

    def test_double_commit_rejected(self, vm):
        vm.assign_append("b", BS)
        vm.commit("b", 1)
        with pytest.raises(WriteConflict):
            vm.commit("b", 1)

    def test_commit_unassigned_rejected(self, vm):
        with pytest.raises(VersionNotFound):
            vm.commit("b", 5)

    def test_publish_hook_fires_with_watermark(self, vm):
        events = []
        vm.on_publish(lambda blob, v: events.append((blob, v)))
        vm.assign_append("b", BS)
        vm.assign_append("b", BS)
        vm.commit("b", 2)
        vm.commit("b", 1)
        assert events == [("b", 2)]  # single jump, one notification

    def test_in_flight_listing(self, vm):
        vm.assign_append("b", BS)
        vm.assign_append("b", BS)
        vm.commit("b", 2)
        assert vm.in_flight("b") == [1]


class TestAbort:
    def test_abort_last_uncommitted_retracts(self, vm):
        vm.assign_append("b", BS)
        assert vm.abort("b", 1) is None  # retraction, no filler needed
        assert vm.blob("b").last_assigned == 0
        t = vm.assign_append("b", BS)
        assert t.version == 1  # number reused; nothing referenced it

    def test_abort_interior_tombstones(self, vm):
        """§VI-B closure: a dead interior writer no longer wedges the
        watermark — its version commits as a no-op tombstone."""
        vm.assign_append("b", BS)  # v1: the dead writer
        vm.assign_append("b", BS)  # v2: already wove references to v1
        spec = vm.abort("b", 1)
        assert spec is not None
        assert (spec.version, spec.start_block, spec.end_block) == (1, 0, 1)
        assert spec.prior_size == 0 and spec.size_after == BS
        assert spec.history == ()
        # Tombstone committed as no-op: published, not in flight.
        assert vm.published_version("b") == 1
        assert vm.in_flight("b") == [2]
        assert vm.commit("b", 2) == 2  # the survivor publishes normally

    def test_abort_committed_rejected(self, vm):
        vm.assign_append("b", BS)
        vm.commit("b", 1)
        with pytest.raises(WriteConflict):
            vm.abort("b", 1)

    def test_abort_unassigned_rejected(self, vm):
        with pytest.raises(VersionNotFound):
            vm.abort("b", 3)
        with pytest.raises(VersionNotFound):
            vm.abort("b", 0)

    def test_double_abort_rejected(self, vm):
        vm.assign_append("b", BS)
        vm.assign_append("b", BS)
        vm.abort("b", 1)
        with pytest.raises(WriteConflict):
            vm.abort("b", 1)  # already committed (as a tombstone)

    def test_commit_of_tombstone_rejected(self, vm):
        vm.assign_append("b", BS)
        vm.assign_append("b", BS)
        vm.abort("b", 1)
        with pytest.raises(WriteConflict):
            vm.commit("b", 1)

    def test_force_tombstone_on_last_version(self, vm):
        """A writer whose metadata partially reached the DHT must not
        let its version number be reused — force the tombstone."""
        vm.assign_append("b", BS)
        spec = vm.abort("b", 1, force_tombstone=True)
        assert spec is not None and spec.version == 1
        assert vm.published_version("b") == 1
        t = vm.assign_append("b", BS)
        assert t.version == 2  # number NOT reused
        assert t.offset == BS  # the tombstone's (zero-filled) size stands

    def test_tombstone_keeps_append_offsets_valid(self, vm):
        """Later appends fixed their offsets on the dead write's size;
        the tombstone must keep that size (zero-filled), not shrink."""
        vm.assign_append("b", 4 * BS)  # v1: will die
        t2 = vm.assign_append("b", BS)  # v2: offset fixed at 4*BS
        assert t2.offset == 4 * BS
        vm.abort("b", 1)
        assert vm.snapshot_info("b", 1).size == 4 * BS
        vm.commit("b", 2)
        assert vm.snapshot_info("b", 2).size == 5 * BS

    def test_snapshot_info_flags_tombstones(self, vm):
        vm.assign_append("b", BS)
        vm.assign_append("b", BS)
        vm.abort("b", 1)
        vm.commit("b", 2)
        assert vm.snapshot_info("b", 1).tombstone is True
        assert vm.snapshot_info("b", 2).tombstone is False
        assert vm.latest("b").tombstone is False

    def test_tombstone_stays_in_history_hints(self, vm):
        """Writers assigned after the abort must still weave references
        to the tombstone — its filler nodes are what resolves them."""
        vm.assign_append("b", BS)  # v1
        vm.assign_append("b", BS)  # v2: dies
        vm.assign_append("b", BS)  # v3: references v2 per the hint rule
        vm.abort("b", 2)
        t4 = vm.assign_append("b", BS)
        assert t4.history == ((1, 0, 1), (2, 1, 2), (3, 2, 3))

    def test_watermark_jumps_over_tombstone_batch(self, vm):
        vm.assign_append("b", BS)  # v1
        vm.assign_append("b", BS)  # v2
        vm.assign_append("b", BS)  # v3
        vm.commit("b", 3)
        vm.commit("b", 1)
        assert vm.published_version("b") == 1
        vm.abort("b", 2)  # the straggler was dead: watermark jumps to 3
        assert vm.published_version("b") == 3

    def test_tombstone_spec_query(self, vm):
        vm.assign_append("b", 2 * BS)
        vm.assign_append("b", BS)
        spec = vm.abort("b", 1)
        assert vm.tombstone_spec("b", 1) == spec
        # Only the aborting writer itself (pending=True) may take the
        # spec of a version still in flight — it publishes filler
        # BEFORE finalising; anyone else would be clobbering a healthy
        # writer's metadata.
        with pytest.raises(VersionNotFound):
            vm.tombstone_spec("b", 2)
        pending = vm.tombstone_spec("b", 2, pending=True)
        assert pending.version == 2 and pending.prior_size == 2 * BS
        vm.commit("b", 2)
        with pytest.raises(VersionNotFound):
            vm.tombstone_spec("b", 2, pending=True)  # committed normally
        with pytest.raises(VersionNotFound):
            vm.tombstone_spec("b", 9)  # never assigned

    def test_tombstone_spec_respects_gc_floor(self, vm):
        """Republishing a collected tombstone would resurrect tree
        nodes the GC sweep already deleted."""
        vm.assign_append("b", BS)  # v1: dies
        vm.assign_append("b", BS)  # v2
        vm.abort("b", 1)
        vm.commit("b", 2)
        vm.set_gc_floor("b", 2)
        with pytest.raises(VersionNotFound):
            vm.tombstone_spec("b", 1)

    def test_gc_not_blocked_by_tombstones(self, vm):
        vm.assign_append("b", BS)
        vm.assign_append("b", BS)
        vm.abort("b", 1)
        assert vm.in_flight("b") == [2]
        vm.commit("b", 2)
        assert vm.in_flight("b") == []  # GC's quiescence check passes


class TestPublishHooks:
    def test_all_hooks_run_despite_failures(self, vm):
        """A raising hook must not starve later hooks (satellite:
        publication must be observed consistently)."""
        from repro.errors import PublishHookError

        seen = []

        def bad_hook(blob, v):
            seen.append(("bad", v))
            raise RuntimeError("stale cache")

        vm.on_publish(bad_hook)
        vm.on_publish(lambda blob, v: seen.append(("good", v)))
        vm.assign_append("b", BS)
        with pytest.raises(PublishHookError) as excinfo:
            vm.commit("b", 1)
        assert seen == [("bad", 1), ("good", 1)]
        assert len(excinfo.value.errors) == 1
        assert excinfo.value.watermark == 1
        # The commit itself stood: the snapshot is published.
        assert vm.published_version("b") == 1
        assert vm.snapshot_info("b", 1).size == BS

    def test_hook_errors_deferred_on_abort_too(self, vm):
        from repro.errors import PublishHookError

        vm.on_publish(lambda blob, v: (_ for _ in ()).throw(RuntimeError("boom")))
        vm.assign_append("b", BS)
        vm.assign_append("b", BS)
        with pytest.raises(PublishHookError):
            vm.abort("b", 1)
        # The tombstone was fully recorded before the error surfaced.
        assert vm.published_version("b") == 1
        assert vm.blob("b").tombstoned == {1}


class TestQueries:
    def test_snapshot_info_geometry(self, vm):
        vm.assign_append("b", 5 * BS)
        vm.commit("b", 1)
        info = vm.snapshot_info("b", 1)
        assert info.size == 5 * BS
        assert info.size_blocks == 5
        assert info.root_span == 8

    def test_missing_version(self, vm):
        with pytest.raises(VersionNotFound):
            vm.snapshot_info("b", 7)
        with pytest.raises(VersionNotFound):
            vm.snapshot_info("b", -1)

    def test_history_upto(self, vm):
        vm.assign_append("b", BS)
        vm.assign_append("b", 2 * BS)
        assert vm.history_upto("b", 2) == ((1, 0, 1), (2, 1, 3))
        assert vm.history_upto("b", 1) == ((1, 0, 1),)
        with pytest.raises(VersionNotFound):
            vm.history_upto("b", 9)

    def test_history_upto_respects_gc_floor(self, vm):
        """Hints for a collected version would weave references into
        tree nodes the sweep already deleted."""
        vm.assign_append("b", BS)
        vm.assign_append("b", BS)
        vm.commit("b", 1)
        vm.commit("b", 2)
        vm.set_gc_floor("b", 2)
        with pytest.raises(VersionNotFound):
            vm.history_upto("b", 1)
        # At or above the floor the full hint list (including collected
        # versions' records) is still served: shared subtrees of marked
        # snapshots survive the sweep, so those references resolve.
        assert vm.history_upto("b", 2) == ((1, 0, 1), (2, 1, 2))

    def test_gc_floor(self, vm):
        vm.assign_append("b", BS)
        vm.assign_append("b", BS)
        vm.commit("b", 1)
        vm.commit("b", 2)
        vm.set_gc_floor("b", 2)
        with pytest.raises(VersionNotFound):
            vm.snapshot_info("b", 1)
        assert vm.snapshot_info("b", 2).version == 2
        with pytest.raises(BlobError):
            vm.set_gc_floor("b", 1)  # not monotone
        with pytest.raises(BlobError):
            vm.set_gc_floor("b", 3)  # beyond watermark
