"""Tests for the version manager state machine."""

import pytest

from repro.blob import VersionManagerCore
from repro.errors import (
    BlobError,
    BlobNotFound,
    InvalidRange,
    VersionNotFound,
    VersionNotReady,
    WriteConflict,
)

BS = 64  # tiny block size keeps the arithmetic readable


@pytest.fixture
def vm():
    core = VersionManagerCore()
    core.create_blob("b", block_size=BS)
    return core


class TestBlobLifecycle:
    def test_create_registers_version_zero(self, vm):
        info = vm.snapshot_info("b", 0)
        assert info.version == 0 and info.size == 0
        assert vm.published_version("b") == 0

    def test_duplicate_create_rejected(self, vm):
        with pytest.raises(BlobError):
            vm.create_blob("b", block_size=BS)

    def test_unknown_blob(self, vm):
        with pytest.raises(BlobNotFound):
            vm.assign_write("ghost", 0, BS)

    def test_create_validation(self):
        vm = VersionManagerCore()
        with pytest.raises(ValueError):
            vm.create_blob("x", block_size=0)
        with pytest.raises(ValueError):
            vm.create_blob("x", block_size=BS, replication=0)

    def test_blob_ids(self, vm):
        vm.create_blob("a", block_size=BS)
        assert vm.blob_ids() == ["a", "b"]
        assert vm.has_blob("a") and not vm.has_blob("zz")


class TestAssignment:
    def test_first_write(self, vm):
        t = vm.assign_write("b", 0, 4 * BS)
        assert t.version == 1
        assert (t.start_block, t.end_block) == (0, 4)
        assert t.size_after == 4 * BS
        assert t.root_span == 4
        assert t.history == ()

    def test_history_hints_accumulate(self, vm):
        vm.assign_write("b", 0, 4 * BS)
        vm.assign_write("b", 0, 2 * BS)
        t3 = vm.assign_append("b", BS)
        assert t3.version == 3
        assert t3.history == ((1, 0, 4), (2, 0, 2))

    def test_append_offset_fixed_from_uncommitted_predecessor(self, vm):
        """§III-D: the append offset is the size of the *preceding*
        snapshot even though that write is still in flight."""
        t1 = vm.assign_append("b", 4 * BS)  # not committed!
        t2 = vm.assign_append("b", BS)
        assert t1.version == 1 and t2.version == 2
        assert t2.offset == 4 * BS
        assert t2.size_after == 5 * BS

    def test_overwrite_does_not_grow(self, vm):
        vm.assign_write("b", 0, 4 * BS)
        t = vm.assign_write("b", BS, BS)
        assert t.size_after == 4 * BS
        assert (t.start_block, t.end_block) == (1, 2)

    def test_trailing_partial_write_allowed(self, vm):
        t = vm.assign_write("b", 0, 100)  # 1 full + partial into block 1
        assert t.size_after == 100
        assert t.end_block == 2

    def test_extend_with_partial_allowed(self, vm):
        vm.assign_write("b", 0, 2 * BS)
        t = vm.assign_write("b", 2 * BS, BS + 10)
        assert t.size_after == 3 * BS + 10


class TestAlignmentRules:
    def test_unaligned_offset_rejected(self, vm):
        with pytest.raises(InvalidRange):
            vm.assign_write("b", 10, BS)

    def test_hole_rejected(self, vm):
        with pytest.raises(InvalidRange):
            vm.assign_write("b", BS, BS)  # size is 0: offset 64 leaves a hole

    def test_interior_partial_rejected(self, vm):
        vm.assign_write("b", 0, 4 * BS)
        with pytest.raises(InvalidRange):
            vm.assign_write("b", 0, 10)  # would truncate block 0 mid-blob

    def test_zero_length_rejected(self, vm):
        with pytest.raises(InvalidRange):
            vm.assign_write("b", 0, 0)
        with pytest.raises(InvalidRange):
            vm.assign_append("b", 0)

    def test_negative_offset_rejected(self, vm):
        with pytest.raises(InvalidRange):
            vm.assign_write("b", -BS, BS)

    def test_append_to_unaligned_size_rejected(self, vm):
        vm.assign_write("b", 0, 100)
        with pytest.raises(InvalidRange):
            vm.assign_append("b", BS)

    def test_partial_rewrite_to_exact_end_allowed(self, vm):
        vm.assign_write("b", 0, 100)
        t = vm.assign_write("b", BS, 36)  # rewrites trailing partial exactly
        assert t.size_after == 100


class TestCommitAndPublication:
    def test_in_order_commits_publish_incrementally(self, vm):
        vm.assign_append("b", BS)
        vm.assign_append("b", BS)
        assert vm.commit("b", 1) == 1
        assert vm.commit("b", 2) == 2

    def test_out_of_order_commit_delays_publication(self, vm):
        """§III-A.4: revealing order must respect assignment order."""
        vm.assign_append("b", BS)
        vm.assign_append("b", BS)
        vm.assign_append("b", BS)
        assert vm.commit("b", 3) == 0
        assert vm.commit("b", 2) == 0
        assert vm.published_version("b") == 0
        assert vm.commit("b", 1) == 3  # watermark jumps over the batch

    def test_unpublished_snapshot_not_readable(self, vm):
        vm.assign_append("b", BS)
        vm.assign_append("b", BS)
        vm.commit("b", 2)
        with pytest.raises(VersionNotReady):
            vm.snapshot_info("b", 2)
        with pytest.raises(VersionNotReady):
            vm.snapshot_info("b", 1)

    def test_latest_tracks_watermark_not_assignment(self, vm):
        vm.assign_append("b", BS)
        vm.commit("b", 1)
        vm.assign_append("b", BS)  # in flight
        latest = vm.latest("b")
        assert latest.version == 1 and latest.size == BS

    def test_double_commit_rejected(self, vm):
        vm.assign_append("b", BS)
        vm.commit("b", 1)
        with pytest.raises(WriteConflict):
            vm.commit("b", 1)

    def test_commit_unassigned_rejected(self, vm):
        with pytest.raises(VersionNotFound):
            vm.commit("b", 5)

    def test_publish_hook_fires_with_watermark(self, vm):
        events = []
        vm.on_publish(lambda blob, v: events.append((blob, v)))
        vm.assign_append("b", BS)
        vm.assign_append("b", BS)
        vm.commit("b", 2)
        vm.commit("b", 1)
        assert events == [("b", 2)]  # single jump, one notification

    def test_in_flight_listing(self, vm):
        vm.assign_append("b", BS)
        vm.assign_append("b", BS)
        vm.commit("b", 2)
        assert vm.in_flight("b") == [1]


class TestAbort:
    def test_abort_last_uncommitted(self, vm):
        vm.assign_append("b", BS)
        vm.abort("b", 1)
        assert vm.blob("b").last_assigned == 0
        t = vm.assign_append("b", BS)
        assert t.version == 1  # number reused; nothing referenced it

    def test_abort_interior_rejected(self, vm):
        vm.assign_append("b", BS)
        vm.assign_append("b", BS)
        with pytest.raises(WriteConflict):
            vm.abort("b", 1)

    def test_abort_committed_rejected(self, vm):
        vm.assign_append("b", BS)
        vm.commit("b", 1)
        with pytest.raises(WriteConflict):
            vm.abort("b", 1)


class TestQueries:
    def test_snapshot_info_geometry(self, vm):
        vm.assign_append("b", 5 * BS)
        vm.commit("b", 1)
        info = vm.snapshot_info("b", 1)
        assert info.size == 5 * BS
        assert info.size_blocks == 5
        assert info.root_span == 8

    def test_missing_version(self, vm):
        with pytest.raises(VersionNotFound):
            vm.snapshot_info("b", 7)
        with pytest.raises(VersionNotFound):
            vm.snapshot_info("b", -1)

    def test_history_upto(self, vm):
        vm.assign_append("b", BS)
        vm.assign_append("b", 2 * BS)
        assert vm.history_upto("b", 2) == ((1, 0, 1), (2, 1, 3))
        assert vm.history_upto("b", 1) == ((1, 0, 1),)
        with pytest.raises(VersionNotFound):
            vm.history_upto("b", 9)

    def test_gc_floor(self, vm):
        vm.assign_append("b", BS)
        vm.assign_append("b", BS)
        vm.commit("b", 1)
        vm.commit("b", 2)
        vm.set_gc_floor("b", 2)
        with pytest.raises(VersionNotFound):
            vm.snapshot_info("b", 1)
        assert vm.snapshot_info("b", 2).version == 2
        with pytest.raises(BlobError):
            vm.set_gc_floor("b", 1)  # not monotone
        with pytest.raises(BlobError):
            vm.set_gc_floor("b", 3)  # beyond watermark
