"""The parallel I/O engine and its store integration.

Covers the :class:`~repro.blob.io_engine.ParallelIOEngine` contract
(ordering, caller participation, fail-fast), the read-failover fix
(``ProviderUnavailable`` mid-fetch falls through to the next replica),
and a concurrent stress scenario: threads appending and reading while a
provider fails and recovers under them.
"""

import threading
import time
from concurrent.futures import CancelledError

import pytest

from repro.blob import LocalBlobStore, StoreConfig
from repro.blob.io_engine import ParallelIOEngine
from repro.errors import ProviderUnavailable, ReplicationError

BS = 16


class TestParallelIOEngine:
    def test_map_preserves_input_order(self):
        with ParallelIOEngine(4) as engine:
            assert engine.map(lambda x: x * x, range(50)) == [x * x for x in range(50)]

    def test_map_single_item_runs_inline(self):
        with ParallelIOEngine(2) as engine:
            thread_names = engine.map(lambda _: threading.current_thread().name, [0])
        assert thread_names == [threading.current_thread().name]

    def test_caller_participates_in_the_work(self):
        # Even a 1-thread pool finishes a fan-out of many items because
        # the calling thread drains the queue alongside the pool.
        def slow_name(_):
            time.sleep(0.005)
            return threading.current_thread().name

        with ParallelIOEngine(1) as engine:
            workers = set(engine.map(slow_name, range(8)))
        assert threading.current_thread().name in workers
        assert len(workers) == 2  # caller + the one pool thread

    def test_first_error_propagates_and_stops_the_fanout(self):
        ran = []
        lock = threading.Lock()

        def job(i):
            if i == 3:
                raise ValueError("boom")
            with lock:
                ran.append(i)
            return i

        with ParallelIOEngine(2) as engine:
            with pytest.raises(ValueError, match="boom"):
                engine.map(job, range(200))
        # Fail-fast: the overwhelming majority of the queue was skipped.
        assert len(ran) < 200

    def test_submit_returns_a_future(self):
        with ParallelIOEngine(2) as engine:
            assert engine.submit(sum, (1, 2, 3)).result() == 6

    def test_map_not_stalled_by_unrelated_long_pool_task(self):
        # A sleeping background task (read-ahead) occupying the whole
        # pool must not stall a map() whose work the caller already
        # finished: unstarted drain helpers get cancelled, not awaited.
        release = threading.Event()
        with ParallelIOEngine(1) as engine:
            blocker = engine.submit(release.wait, 10)
            start = time.perf_counter()
            result = engine.map(lambda x: x + 1, range(16))
            elapsed = time.perf_counter() - start
            release.set()
            blocker.result(timeout=10)
        assert result == list(range(1, 17))
        assert elapsed < 5  # nowhere near the blocker's 10 s wait

    def test_nested_map_from_a_pool_thread_runs_inline(self):
        # A submitted task fanning out again (read-ahead fetching a
        # multi-block range) must not deadlock a saturated pool.
        with ParallelIOEngine(1) as engine:

            def task():
                return engine.map(lambda x: x + 1, [1, 2, 3])

            assert engine.submit(task).result(timeout=10) == [2, 3, 4]

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            ParallelIOEngine(0)

    def test_submit_each_cancels_unstarted_work_after_first_error(self):
        # The publish-overlap primitive: once one transfer fails, the
        # queued-but-unstarted siblings must be cancelled — "the whole
        # write fails" means not paying for the rest of a doomed
        # scatter.  With a 1-thread pool the tasks run strictly in
        # order, so exactly the first (failing) task executes.
        executed = []

        def job(i):
            executed.append(i)
            time.sleep(0.01)  # let every sibling reach the queue
            raise ProviderUnavailable("scatter target died")

        with ParallelIOEngine(1) as engine:
            futures = engine.submit_each(job, range(8))
            with pytest.raises(ProviderUnavailable):
                futures[0].result()
            for future in futures[1:]:
                with pytest.raises(CancelledError):
                    future.result()
        assert executed == [0]

    def test_submit_each_runs_everything_on_success(self):
        with ParallelIOEngine(2) as engine:
            futures = engine.submit_each(lambda i: i * 2, range(8))
            assert [f.result() for f in futures] == [i * 2 for i in range(8)]

    def test_submit_each_stats_balance(self):
        with ParallelIOEngine(2) as engine:
            for future in engine.submit_each(lambda i: i, range(6)):
                future.result()
            snap = engine.stats.snapshot()
        assert snap["tasks_started"] == snap["tasks_finished"] == 6
        assert snap["in_flight"] == 0
        assert snap["threads_started"] <= 2


@pytest.mark.parametrize("io_workers", [0, 4])
class TestStoreParallelPaths:
    def test_read_write_roundtrip_matches_inline_semantics(self, io_workers):
        store = LocalBlobStore(config=StoreConfig(
            data_providers=8, metadata_providers=3, block_size=BS, io_workers=io_workers
        ))
        blob = store.create()
        data = bytes(i % 251 for i in range(10 * BS + 7))
        store.append(blob, data)
        assert store.read(blob) == data
        assert store.read(blob, offset=BS + 3, size=3 * BS) == data[BS + 3 : 4 * BS + 3]
        store.close()

    def test_fetch_failover_on_provider_unavailable_mid_read(self, io_workers):
        store = LocalBlobStore(config=StoreConfig(
            data_providers=4,
            metadata_providers=2,
            block_size=BS,
            replication=2,
            io_workers=io_workers,
        ))
        blob = store.create()
        store.append(blob, b"q" * (4 * BS))
        primary = store.block_locations(blob, 0, BS)[0].providers[0]
        # The regression: a provider that passes the ``online`` check
        # but raises ProviderUnavailable from get() (it died between
        # check and fetch) must fail over, not abort the read.
        provider = store.providers[primary]

        def get_raising(block_id):
            raise ProviderUnavailable(f"{primary} died mid-fetch")

        provider.get = get_raising
        assert store.read(blob) == b"q" * (4 * BS)
        store.close()

    def test_read_fails_only_when_every_replica_is_gone(self, io_workers):
        store = LocalBlobStore(config=StoreConfig(
            data_providers=2,
            metadata_providers=2,
            block_size=BS,
            replication=2,
            io_workers=io_workers,
        ))
        blob = store.create()
        store.append(blob, b"z" * BS)
        for name in store.block_locations(blob, 0, BS)[0].providers:
            store.fail_provider(name)
        with pytest.raises(ProviderUnavailable):
            store.read(blob)
        store.close()


class TestConcurrentStress:
    def test_appends_and_reads_while_a_provider_fails_and_recovers(self):
        store = LocalBlobStore(config=StoreConfig(
            data_providers=8,
            metadata_providers=3,
            block_size=BS,
            replication=2,
            io_workers=4,
        ))
        blob = store.create()
        store.append(blob, bytes([255]) * BS)  # v1: one block baseline
        n_appenders, appends_each = 4, 8
        stop = threading.Event()
        errors = []

        def appender(tid):
            done = 0
            payload = bytes([tid + 1]) * BS
            while done < appends_each:
                try:
                    store.append(blob, payload)
                    done += 1
                except (ProviderUnavailable, ReplicationError):
                    continue  # failed write rolled back; try again
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        def reader():
            while not stop.is_set():
                try:
                    version = store.latest_version(blob)
                    data = store.read(blob, version=version)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return
                if len(data) != version * BS:
                    errors.append(
                        AssertionError(f"v{version} returned {len(data)}B")
                    )
                    return
                # Every block is one append's uniform payload.
                for i in range(version):
                    block = data[i * BS : (i + 1) * BS]
                    if block != bytes([block[0]]) * BS:
                        errors.append(AssertionError(f"torn block at {i}"))
                        return

        def chaos():
            victims = ["provider-003", "provider-006"]
            i = 0
            while not stop.is_set():
                victim = victims[i % len(victims)]
                store.fail_provider(victim)
                stop.wait(0.002)
                store.recover_provider(victim)
                stop.wait(0.001)
                i += 1

        threads = [
            threading.Thread(target=appender, args=(t,)) for t in range(n_appenders)
        ] + [threading.Thread(target=reader) for _ in range(2)] + [
            threading.Thread(target=chaos)
        ]
        for t in threads:
            t.start()
        for t in threads[:n_appenders]:
            t.join()
        stop.set()
        for t in threads[n_appenders:]:
            t.join()

        assert not errors
        total_blocks = 1 + n_appenders * appends_each
        assert store.latest_version(blob) == total_blocks
        data = store.read(blob)
        assert len(data) == total_blocks * BS
        # No orphans: providers hold exactly replication copies of each
        # published block, nothing more (failed writes rolled back).
        assert sum(store.provider_block_counts().values()) == 2 * total_blocks
        store.close()
