"""Model-based property tests: LocalBlobStore vs. a trivial reference.

The reference model keeps, per version, the complete byte string of the
snapshot.  The real store must agree with it on every read of every
version after any legal sequence of writes/appends — this exercises the
whole pipeline: alignment rules, placement, two-phase writes, metadata
weaving with subtree sharing, descent, extremal-block trimming.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blob import LocalBlobStore, StoreConfig
from repro.errors import InvalidRange

BS = 16  # small blocks -> deep trees with little data


class ModelBlob:
    """Reference: version -> full contents."""

    def __init__(self):
        self.versions = [b""]

    @property
    def size(self):
        return len(self.versions[-1])

    def write(self, offset, data):
        current = self.versions[-1]
        new = current[:offset] + data + current[offset + len(data):]
        self.versions.append(new)

    def append(self, data):
        self.versions.append(self.versions[-1] + data)


def op_strategy(draw, model):
    """Draw one legal operation given the model's current size."""
    size = model.size
    choices = ["append_blocks"]
    if size % BS == 0 and size > 0:
        choices.append("append_partial")
    if size > 0:
        choices.extend(["overwrite", "extend"])
    kind = draw(st.sampled_from(choices))
    fill = draw(st.integers(min_value=0, max_value=255))
    if kind == "append_blocks":
        if size % BS != 0:
            # trailing partial: extend via write at aligned offset
            offset = (size // BS) * BS
            tail_len = size - offset
            n = draw(st.integers(min_value=1, max_value=3))
            data = bytes([fill]) * (tail_len + n * BS)
            return ("write", offset, data)
        n = draw(st.integers(min_value=1, max_value=3))
        return ("append", None, bytes([fill]) * (n * BS))
    if kind == "append_partial":
        n = draw(st.integers(min_value=1, max_value=BS - 1))
        return ("append", None, bytes([fill]) * n)
    if kind == "overwrite":
        max_block = size // BS  # only whole-block interior overwrites
        if max_block == 0:
            offset = 0
            data = bytes([fill]) * size
            return ("write", offset, data)
        start = draw(st.integers(min_value=0, max_value=max_block - 1))
        count = draw(st.integers(min_value=1, max_value=max_block - start))
        return ("write", start * BS, bytes([fill]) * (count * BS))
    # extend: write starting inside, running past the end
    start_block = draw(st.integers(min_value=0, max_value=size // BS))
    offset = start_block * BS
    extra = draw(st.integers(min_value=1, max_value=2 * BS))
    length = (size - offset) + extra
    return ("write", offset, bytes([fill]) * length)


@st.composite
def op_sequences(draw):
    """A legal operation sequence (validity depends on running size)."""
    model = ModelBlob()
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=8))):
        op = op_strategy(draw, model)
        kind, offset, data = op
        if kind == "append":
            model.append(data)
        else:
            model.write(offset, data)
        ops.append(op)
    return ops


class TestStoreAgainstModel:
    @given(ops=op_sequences())
    @settings(max_examples=60)
    def test_every_version_matches_model(self, ops):
        store = LocalBlobStore(config=StoreConfig(data_providers=5, metadata_providers=2, block_size=BS))
        model = ModelBlob()
        blob = store.create()
        for kind, offset, data in ops:
            if kind == "append":
                store.append(blob, data)
                model.append(data)
            else:
                store.write(blob, offset, data)
                model.write(offset, data)
        assert store.latest_version(blob) == len(model.versions) - 1
        for version, expected in enumerate(model.versions):
            assert store.snapshot(blob, version).size == len(expected)
            assert store.read(blob, version=version) == expected

    @given(ops=op_sequences(), data=st.data())
    @settings(max_examples=60)
    def test_random_subrange_reads_match_model(self, ops, data):
        store = LocalBlobStore(config=StoreConfig(data_providers=5, metadata_providers=2, block_size=BS))
        model = ModelBlob()
        blob = store.create()
        for kind, offset, payload in ops:
            if kind == "append":
                store.append(blob, payload)
                model.append(payload)
            else:
                store.write(blob, offset, payload)
                model.write(offset, payload)
        for version, expected in enumerate(model.versions):
            if not expected:
                continue
            offset = data.draw(
                st.integers(min_value=0, max_value=len(expected) - 1), label="offset"
            )
            size = data.draw(
                st.integers(min_value=0, max_value=len(expected) - offset), label="size"
            )
            assert store.read(blob, offset=offset, size=size, version=version) == (
                expected[offset : offset + size]
            )

    @given(ops=op_sequences())
    @settings(max_examples=30)
    def test_metadata_is_shared_not_copied(self, ops):
        """Patch cost per write is O(blocks_written + log(total_blocks)),
        never a full tree copy."""
        store = LocalBlobStore(config=StoreConfig(data_providers=5, metadata_providers=2, block_size=BS))
        blob = store.create()
        total_nodes_before = sum(store.metadata.load_by_provider().values())
        for kind, offset, payload in ops:
            blocks_written = -(-len(payload) // BS)
            if kind == "append":
                store.append(blob, payload)
            else:
                store.write(blob, offset, payload)
            info = store.snapshot(blob)
            depth = max(1, info.root_span.bit_length())
            total_nodes_after = sum(store.metadata.load_by_provider().values())
            new_nodes = total_nodes_after - total_nodes_before
            total_nodes_before = total_nodes_after
            assert new_nodes <= blocks_written + 2 * depth + 2

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=20)
    def test_reads_of_any_published_prefix_are_stable(self, n_appends):
        """Repeatedly appending never perturbs earlier snapshots."""
        store = LocalBlobStore(config=StoreConfig(data_providers=4, metadata_providers=2, block_size=BS))
        blob = store.create()
        snapshots = {}
        for i in range(1, n_appends + 1):
            store.append(blob, bytes([i]) * BS)
            snapshots[i] = store.read(blob, version=i)
        for i, expected in snapshots.items():
            assert store.read(blob, version=i) == expected


class TestInvalidOpsDontCorrupt:
    def test_failed_write_leaves_store_consistent(self):
        store = LocalBlobStore(config=StoreConfig(data_providers=4, metadata_providers=2, block_size=BS))
        blob = store.create()
        store.write(blob, 0, b"a" * BS)
        with pytest.raises(InvalidRange):
            store.write(blob, 7, b"b" * BS)  # unaligned
        with pytest.raises(InvalidRange):
            store.write(blob, 2 * BS, b"b" * BS)  # hole
        assert store.latest_version(blob) == 1
        assert store.read(blob) == b"a" * BS
        # And the store still accepts valid writes afterwards.
        store.append(blob, b"c" * BS)
        assert store.read(blob) == b"a" * BS + b"c" * BS
