"""Executable reproduction of paper Figure 1 (metadata tree evolution).

The paper's Figure 1 shows three stages of one BLOB's metadata:

  (a) append of four blocks to an empty BLOB;
  (b) overwrite of two blocks (the figure caption says the first two;
      the body text says the second and third — we assert both variants
      behave correctly);
  (c) append of one more block, growing the root.

These tests pin down the exact node set after each stage, including
which subtrees are shared with earlier versions.
"""


from repro.blob import (
    BlockDescriptor,
    InnerNode,
    LeafNode,
    NodeKey,
    build_patch,
)


def leaf_maker(version, nonce, start_block):
    def make(index):
        return BlockDescriptor(
            blob_id="fig1",
            version=version,
            index=index,
            size=64,
            providers=("p",),
            nonce=nonce,
            seq=index - start_block,
        )

    return make


def keys(patch):
    return {n.key for n in patch}


class TestFigure1A:
    """(a) Append four blocks to an empty BLOB: a complete 3-level tree."""

    def test_node_set(self):
        patch = build_patch("fig1", 1, 0, 4, 4, history=[], leaf_descriptor=leaf_maker(1, 1, 0))
        assert keys(patch) == {
            NodeKey("fig1", 1, 0, 4),
            NodeKey("fig1", 1, 0, 2),
            NodeKey("fig1", 1, 2, 2),
            NodeKey("fig1", 1, 0, 1),
            NodeKey("fig1", 1, 1, 1),
            NodeKey("fig1", 1, 2, 1),
            NodeKey("fig1", 1, 3, 1),
        }

    def test_all_references_internal(self):
        patch = build_patch("fig1", 1, 0, 4, 4, history=[], leaf_descriptor=leaf_maker(1, 1, 0))
        for node in patch:
            if isinstance(node, InnerNode):
                assert node.left_version == 1
                assert node.right_version in (1, None)


class TestFigure1B:
    """(b) Overwrite: only the touched half is rebuilt, the rest shared."""

    HISTORY = [(1, 0, 4)]

    def test_overwrite_first_two_blocks(self):
        """Figure caption variant: blocks 0-1 rewritten."""
        patch = build_patch(
            "fig1", 2, 0, 2, 4, history=self.HISTORY, leaf_descriptor=leaf_maker(2, 2, 0)
        )
        by_key = {n.key: n for n in patch}
        assert keys(patch) == {
            NodeKey("fig1", 2, 0, 4),
            NodeKey("fig1", 2, 0, 2),
            NodeKey("fig1", 2, 0, 1),
            NodeKey("fig1", 2, 1, 1),
        }
        root = by_key[NodeKey("fig1", 2, 0, 4)]
        # Right subtree of v2 *is* v1's right subtree (shared node).
        assert root.right_key == NodeKey("fig1", 1, 2, 2)

    def test_overwrite_second_and_third_blocks(self):
        """Body-text variant: blocks 1-2 rewritten — spans both halves."""
        patch = build_patch(
            "fig1", 2, 1, 3, 4, history=self.HISTORY, leaf_descriptor=leaf_maker(2, 2, 1)
        )
        by_key = {n.key: n for n in patch}
        assert keys(patch) == {
            NodeKey("fig1", 2, 0, 4),
            NodeKey("fig1", 2, 0, 2),
            NodeKey("fig1", 2, 2, 2),
            NodeKey("fig1", 2, 1, 1),
            NodeKey("fig1", 2, 2, 1),
        }
        left = by_key[NodeKey("fig1", 2, 0, 2)]
        right = by_key[NodeKey("fig1", 2, 2, 2)]
        # Untouched leaves 0 and 3 are shared with version 1.
        assert left.left_key == NodeKey("fig1", 1, 0, 1)
        assert right.right_key == NodeKey("fig1", 1, 3, 1)


class TestFigure1C:
    """(c) Append one block: the root doubles, the old tree hangs intact."""

    def test_append_after_overwrite(self):
        history = [(1, 0, 4), (2, 0, 2)]
        patch = build_patch(
            "fig1", 3, 4, 5, 5, history=history, leaf_descriptor=leaf_maker(3, 3, 4)
        )
        by_key = {n.key: n for n in patch}
        assert keys(patch) == {
            NodeKey("fig1", 3, 0, 8),
            NodeKey("fig1", 3, 4, 4),
            NodeKey("fig1", 3, 4, 2),
            NodeKey("fig1", 3, 4, 1),
        }
        root = by_key[NodeKey("fig1", 3, 0, 8)]
        # Left half of the doubled root is v2's entire tree, shared.
        assert root.left_key == NodeKey("fig1", 2, 0, 4)
        # Right path narrows down to the single new leaf; beyond-EOF
        # subtrees are absent.
        r4 = by_key[NodeKey("fig1", 3, 4, 4)]
        assert r4.right_version is None
        r2 = by_key[NodeKey("fig1", 3, 4, 2)]
        assert r2.right_version is None
        assert isinstance(by_key[NodeKey("fig1", 3, 4, 1)], LeafNode)

    def test_total_metadata_cost_is_logarithmic(self):
        """The whole point of sharing: stage (c) stores 4 nodes, not a
        9-node tree for the 5-block snapshot."""
        history = [(1, 0, 4), (2, 0, 2)]
        patch = build_patch(
            "fig1", 3, 4, 5, 5, history=history, leaf_descriptor=leaf_maker(3, 3, 4)
        )
        assert len(patch) == 4
