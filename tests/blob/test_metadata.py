"""Tests for the metadata service (tree nodes in the DHT)."""

import pytest

from repro.blob import BlockDescriptor, LeafNode, MetadataService, NodeKey
from repro.dht import DhtStore
from repro.errors import ReplicationError, VersionNotFound, WriteConflict


def leaf(index=0, version=1, provider="p"):
    return LeafNode(
        key=NodeKey("b", version, index, 1),
        block=BlockDescriptor(
            blob_id="b",
            version=version,
            index=index,
            size=64,
            providers=(provider,),
            nonce=version,
            seq=0,
        ),
    )


@pytest.fixture
def service():
    return MetadataService(DhtStore([f"mdp-{i}" for i in range(4)], replication=2))


class TestNodeStorage:
    def test_roundtrip(self, service):
        node = leaf()
        service.put_node(node)
        assert service.get_node(node.key) == node
        assert service.has_node(node.key)

    def test_missing_node(self, service):
        with pytest.raises(VersionNotFound):
            service.get_node(NodeKey("b", 5, 0, 1))
        assert not service.has_node(NodeKey("b", 5, 0, 1))

    def test_idempotent_identical_reput(self, service):
        node = leaf()
        service.put_node(node)
        service.put_node(node)  # retry of the same write is fine
        assert service.get_node(node.key) == node

    def test_conflicting_reput_rejected(self, service):
        service.put_node(leaf(provider="p1"))
        with pytest.raises(WriteConflict, match="immutable"):
            service.put_node(leaf(provider="p2"))

    def test_put_patch_order(self, service):
        nodes = [leaf(index=i) for i in range(4)]
        service.put_patch(nodes)
        for node in nodes:
            assert service.has_node(node.key)

    def test_delete_idempotent(self, service):
        node = leaf()
        service.put_node(node)
        service.delete_node(node.key)
        service.delete_node(node.key)
        assert not service.has_node(node.key)

    def test_load_by_provider_counts_replicas(self, service):
        for i in range(10):
            service.put_node(leaf(index=i))
        load = service.load_by_provider()
        assert sum(load.values()) == 20  # replication 2
        assert set(load) == {f"mdp-{i}" for i in range(4)}


@pytest.fixture
def cached_service():
    return MetadataService(
        DhtStore([f"mdp-{i}" for i in range(4)], replication=2), cache_nodes=64
    )


class TestBatchFacade:
    def test_get_nodes_matches_scalar(self, service):
        nodes = [leaf(index=i) for i in range(8)]
        service.put_patch(nodes)
        got = service.get_nodes([node.key for node in nodes])
        assert got == {node.key: node for node in nodes}

    def test_get_nodes_missing_key_raises_version_not_found(self, service):
        service.put_node(leaf(index=0))
        with pytest.raises(VersionNotFound):
            service.get_nodes([leaf(index=0).key, NodeKey("b", 9, 0, 1)])

    def test_put_patch_is_one_round_trip_per_publish(self, service):
        nodes = [leaf(index=i) for i in range(8)]
        before = service.store.stats.snapshot()["round_trips"]
        service.put_patch(nodes)
        assert service.store.stats.snapshot()["round_trips"] - before == 1

    def test_put_patch_conflict_raises_and_keeps_stored_value(self, service):
        service.put_patch([leaf(provider="p1")])
        with pytest.raises(WriteConflict, match="immutable"):
            service.put_patch([leaf(provider="p2"), leaf(index=1)])
        assert service.get_node(leaf().key) == leaf(provider="p1")

    def test_put_patch_identical_retry_is_idempotent(self, service):
        nodes = [leaf(index=i) for i in range(4)]
        service.put_patch(nodes)
        service.put_patch(nodes)  # no WriteConflict, no duplicate state
        assert sum(service.load_by_provider().values()) == 8

    def test_put_patch_with_every_replica_down_raises(self, service):
        node = leaf()
        for name in service.store.owners(node.key):
            service.store.fail_bucket(name)
        with pytest.raises(ReplicationError):
            service.put_patch([node])

    def test_put_fillers_reports_unstored_keys(self, service):
        reachable, dead = leaf(index=0), leaf(index=1)
        for name in service.store.owners(dead.key):
            service.store.fail_bucket(name)
        unstored = service.put_fillers([reachable, dead])
        assert unstored == [dead.key]
        assert service.get_node(reachable.key) == reachable


class TestNodeCache:
    def test_read_through_and_hit_counters(self, cached_service):
        node = leaf()
        cached_service.put_node(node)
        before = cached_service.store.stats.snapshot()["round_trips"]
        assert cached_service.get_node(node.key) == node  # miss -> DHT
        assert cached_service.get_node(node.key) == node  # hit -> local
        assert cached_service.store.stats.snapshot()["round_trips"] - before == 1
        assert cached_service.cache.hits == 1
        assert cached_service.cache.misses == 1

    def test_publish_does_not_populate_cache(self, cached_service):
        """Write-through caching would let a client 'read' metadata the
        DHT never served it — failure injection must stay observable."""
        node = leaf()
        cached_service.put_node(node)
        assert len(cached_service.cache) == 0

    def test_force_put_invalidates(self, cached_service):
        cached_service.put_node(leaf(provider="p1"))
        cached_service.get_node(leaf().key)  # cached
        cached_service.put_node(leaf(provider="p2"), force=True)
        assert cached_service.get_node(leaf().key) == leaf(provider="p2")

    def test_delete_invalidates(self, cached_service):
        node = leaf()
        cached_service.put_node(node)
        cached_service.get_node(node.key)  # cached
        cached_service.delete_node(node.key)
        with pytest.raises(VersionNotFound):
            cached_service.get_node(node.key)
        assert not cached_service.has_node(node.key)

    def test_heal_replica_invalidates(self, cached_service):
        cached_service.put_node(leaf(provider="p1"))
        cached_service.get_node(leaf().key)  # cached
        healed = leaf(provider="p2")
        for name in cached_service.store.owners(healed.key):
            cached_service.heal_replica(name, healed)
        assert cached_service.get_node(healed.key) == healed

    def test_lru_eviction_bounds_size(self):
        service = MetadataService(DhtStore(["a", "b"]), cache_nodes=4)
        nodes = [leaf(index=i) for i in range(8)]
        service.put_patch(nodes)
        for node in nodes:
            service.get_node(node.key)
        assert len(service.cache) == 4

    def test_get_nodes_mixes_hits_and_misses(self, cached_service):
        nodes = [leaf(index=i) for i in range(6)]
        cached_service.put_patch(nodes)
        keys = [node.key for node in nodes]
        cached_service.get_nodes(keys[:3])  # warm half
        before = cached_service.store.stats.snapshot()["keys_fetched"]
        got = cached_service.get_nodes(keys)
        assert got == {node.key: node for node in nodes}
        # Only the cold half travelled.
        assert cached_service.store.stats.snapshot()["keys_fetched"] - before == 3

    def test_fetch_racing_an_invalidation_is_not_cached(self, cached_service):
        """A DHT fetch that overlaps a sanctioned mutation must not
        install the superseded node after the mutation's invalidation
        already ran — otherwise one unlucky read pins the stale value
        forever (no further invalidation is coming)."""
        stale, healed = leaf(provider="p1"), leaf(provider="p2")
        cached_service.put_node(stale)
        real_get = cached_service.store.get

        def get_then_heal(key):
            node = real_get(key)  # the fetch observes the pre-heal value
            for name in cached_service.store.owners(key):
                cached_service.heal_replica(name, healed)  # heal + invalidate
            return node

        cached_service.store.get = get_then_heal
        assert cached_service.get_node(stale.key) == stale  # raced read
        cached_service.store.get = real_get
        # The raced fetch must NOT have been cached: the next lookup
        # refetches and sees the healed node.
        assert cached_service.get_node(stale.key) == healed

    def test_batched_fetch_racing_an_invalidation_is_not_cached(
        self, cached_service
    ):
        stale, healed = leaf(provider="p1"), leaf(provider="p2")
        cached_service.put_node(stale)
        real_multi_get = cached_service.store.multi_get

        def multi_get_then_heal(keys):
            nodes = real_multi_get(keys)
            for name in cached_service.store.owners(stale.key):
                cached_service.heal_replica(name, healed)
            return nodes

        cached_service.store.multi_get = multi_get_then_heal
        assert cached_service.get_nodes([stale.key]) == {stale.key: stale}
        cached_service.store.multi_get = real_multi_get
        assert cached_service.get_node(stale.key) == healed

    def test_unrelated_invalidation_does_not_reject_insert(self):
        """Per-key freshness: a maintenance sweep invalidating *other*
        keys (a GC pass does thousands) must not discard a concurrent
        reader's in-flight insert, or the cache never populates while
        the scrub daemon runs."""
        from repro.blob import NodeCache

        cache = NodeCache(capacity=8)
        node, other = leaf(index=0), leaf(index=1)
        token = cache.begin()
        cache.invalidate(other.key)  # unrelated key
        assert cache.put_if_fresh(node.key, node, token)
        assert cache.get(node.key) == node
        # ... while the raced key itself is still rejected.
        token = cache.begin()
        cache.invalidate(node.key)
        assert not cache.put_if_fresh(node.key, node, token)
        assert cache.get(node.key) is None

    def test_stats_surface(self, cached_service):
        cached_service.put_node(leaf())
        cached_service.get_node(leaf().key)
        stats = cached_service.stats()
        assert stats["round_trips"] > 0
        assert stats["cache_misses"] == 1
        assert 0.0 <= stats["cache_hit_rate"] <= 1.0
