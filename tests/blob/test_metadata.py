"""Tests for the metadata service (tree nodes in the DHT)."""

import pytest

from repro.blob import BlockDescriptor, LeafNode, MetadataService, NodeKey
from repro.dht import DhtStore
from repro.errors import VersionNotFound, WriteConflict


def leaf(index=0, version=1, provider="p"):
    return LeafNode(
        key=NodeKey("b", version, index, 1),
        block=BlockDescriptor(
            blob_id="b",
            version=version,
            index=index,
            size=64,
            providers=(provider,),
            nonce=version,
            seq=0,
        ),
    )


@pytest.fixture
def service():
    return MetadataService(DhtStore([f"mdp-{i}" for i in range(4)], replication=2))


class TestNodeStorage:
    def test_roundtrip(self, service):
        node = leaf()
        service.put_node(node)
        assert service.get_node(node.key) == node
        assert service.has_node(node.key)

    def test_missing_node(self, service):
        with pytest.raises(VersionNotFound):
            service.get_node(NodeKey("b", 5, 0, 1))
        assert not service.has_node(NodeKey("b", 5, 0, 1))

    def test_idempotent_identical_reput(self, service):
        node = leaf()
        service.put_node(node)
        service.put_node(node)  # retry of the same write is fine
        assert service.get_node(node.key) == node

    def test_conflicting_reput_rejected(self, service):
        service.put_node(leaf(provider="p1"))
        with pytest.raises(WriteConflict, match="immutable"):
            service.put_node(leaf(provider="p2"))

    def test_put_patch_order(self, service):
        nodes = [leaf(index=i) for i in range(4)]
        service.put_patch(nodes)
        for node in nodes:
            assert service.has_node(node.key)

    def test_delete_idempotent(self, service):
        node = leaf()
        service.put_node(node)
        service.delete_node(node.key)
        service.delete_node(node.key)
        assert not service.has_node(node.key)

    def test_load_by_provider_counts_replicas(self, service):
        for i in range(10):
            service.put_node(leaf(index=i))
        load = service.load_by_provider()
        assert sum(load.values()) == 20  # replication 2
        assert set(load) == {f"mdp-{i}" for i in range(4)}
