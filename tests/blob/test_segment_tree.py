"""Tests for the versioned segment tree: keys, weaving, descent."""

import pytest

from repro.blob import (
    BlockDescriptor,
    DescentPlan,
    InnerNode,
    LeafNode,
    NodeKey,
    build_patch,
    collect_blocks,
    latest_intersecting,
    root_span,
)
from repro.errors import BlobError, InvalidRange


def desc(index, version=1, nonce=1):
    return BlockDescriptor(
        blob_id="b",
        version=version,
        index=index,
        size=64,
        providers=("p",),
        nonce=nonce,
        seq=index,
    )


class TestNodeKey:
    def test_valid(self):
        k = NodeKey("b", 1, 4, 4)
        assert k.end == 8 and k.covers(5) and not k.covers(8)

    def test_span_power_of_two(self):
        with pytest.raises(ValueError):
            NodeKey("b", 1, 0, 3)
        with pytest.raises(ValueError):
            NodeKey("b", 1, 0, 0)

    def test_offset_alignment(self):
        with pytest.raises(ValueError):
            NodeKey("b", 1, 2, 4)

    def test_version_at_least_one(self):
        with pytest.raises(ValueError):
            NodeKey("b", 0, 0, 1)


class TestNodeShapes:
    def test_leaf_span_must_be_one(self):
        with pytest.raises(ValueError):
            LeafNode(key=NodeKey("b", 1, 0, 2), block=desc(0))

    def test_leaf_offset_matches_block_index(self):
        with pytest.raises(ValueError):
            LeafNode(key=NodeKey("b", 1, 0, 1), block=desc(3))

    def test_inner_children_keys(self):
        node = InnerNode(key=NodeKey("b", 3, 0, 4), left_version=2, right_version=3)
        assert node.left_key == NodeKey("b", 2, 0, 2)
        assert node.right_key == NodeKey("b", 3, 2, 2)
        assert len(node.children()) == 2

    def test_inner_absent_right(self):
        node = InnerNode(key=NodeKey("b", 1, 0, 4), left_version=1, right_version=None)
        assert node.right_key is None
        assert [k.offset for k in node.children()] == [0]

    def test_right_without_left_rejected(self):
        with pytest.raises(ValueError):
            InnerNode(key=NodeKey("b", 1, 0, 2), left_version=None, right_version=1)


class TestRootSpan:
    @pytest.mark.parametrize(
        "blocks,span", [(0, 1), (1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (246, 256)]
    )
    def test_values(self, blocks, span):
        assert root_span(blocks) == span

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            root_span(-1)


class TestLatestIntersecting:
    HISTORY = [(1, 0, 4), (2, 0, 2), (3, 4, 5)]

    def test_picks_highest_intersecting(self):
        assert latest_intersecting(self.HISTORY, 0, 2, at_most=3) == 2
        assert latest_intersecting(self.HISTORY, 2, 4, at_most=3) == 1
        assert latest_intersecting(self.HISTORY, 4, 5, at_most=3) == 3

    def test_at_most_excludes_future(self):
        assert latest_intersecting(self.HISTORY, 0, 2, at_most=1) == 1

    def test_none_when_uncovered(self):
        assert latest_intersecting(self.HISTORY, 8, 16, at_most=3) is None


class TestBuildPatch:
    def test_initial_write_four_blocks(self):
        patch = build_patch("b", 1, 0, 4, 4, history=[], leaf_descriptor=desc)
        by_key = {n.key: n for n in patch}
        assert len(patch) == 7  # 4 leaves + 2 inner + root
        root = by_key[NodeKey("b", 1, 0, 4)]
        assert isinstance(root, InnerNode)
        assert root.left_version == 1 and root.right_version == 1
        for i in range(4):
            leaf = by_key[NodeKey("b", 1, i, 1)]
            assert isinstance(leaf, LeafNode) and leaf.block.index == i

    def test_children_emitted_before_parents(self):
        patch = build_patch("b", 1, 0, 4, 4, history=[], leaf_descriptor=desc)
        seen = set()
        for node in patch:
            if isinstance(node, InnerNode):
                for child in node.children():
                    assert child in seen
            seen.add(node.key)
        assert patch[-1].key.span == 4  # root last

    def test_partial_overwrite_shares_subtree(self):
        patch = build_patch(
            "b", 2, 0, 2, 4,
            history=[(1, 0, 4)],
            leaf_descriptor=lambda i: desc(i, version=2, nonce=2),
        )
        by_key = {n.key: n for n in patch}
        root = by_key[NodeKey("b", 2, 0, 4)]
        assert root.left_version == 2
        assert root.right_version == 1  # untouched half references v1
        assert NodeKey("b", 2, 2, 2) not in by_key  # nothing rebuilt there
        assert len(patch) == 4  # 2 leaves + 1 inner + root

    def test_append_grows_root(self):
        patch = build_patch(
            "b", 2, 4, 5, 5,
            history=[(1, 0, 4)],
            leaf_descriptor=lambda i: desc(i, version=2, nonce=2),
        )
        by_key = {n.key: n for n in patch}
        root = by_key[NodeKey("b", 2, 0, 8)]
        assert root.left_version == 1  # old root shared wholesale
        assert root.right_version == 2
        right = by_key[NodeKey("b", 2, 4, 4)]
        assert right.left_version == 2 and right.right_version is None
        deeper = by_key[NodeKey("b", 2, 4, 2)]
        assert deeper.left_version == 2 and deeper.right_version is None
        assert isinstance(by_key[NodeKey("b", 2, 4, 1)], LeafNode)

    def test_empty_write_rejected(self):
        with pytest.raises(InvalidRange):
            build_patch("b", 1, 2, 2, 4, history=[], leaf_descriptor=desc)

    def test_write_beyond_size_rejected(self):
        with pytest.raises(InvalidRange):
            build_patch("b", 1, 0, 5, 4, history=[], leaf_descriptor=desc)

    def test_concurrent_writer_prediction(self):
        """v3 references v2's metadata purely from history hints, even
        though v2's nodes may not be stored yet (§III-D)."""
        patch = build_patch(
            "b", 3, 2, 4, 4,
            history=[(1, 0, 4), (2, 0, 2)],
            leaf_descriptor=lambda i: desc(i, version=3, nonce=3),
        )
        by_key = {n.key: n for n in patch}
        root = by_key[NodeKey("b", 3, 0, 4)]
        assert root.left_version == 2  # predicted from hints alone
        assert root.right_version == 3


class FakeMetadata:
    def __init__(self):
        self.nodes = {}
        self.fetches = 0

    def put(self, patch):
        for node in patch:
            self.nodes[node.key] = node

    def get(self, key):
        self.fetches += 1
        return self.nodes[key]


class TestDescent:
    def _store_versions(self):
        md = FakeMetadata()
        md.put(build_patch("b", 1, 0, 4, 4, history=[], leaf_descriptor=desc))
        md.put(
            build_patch(
                "b", 2, 1, 3, 4,
                history=[(1, 0, 4)],
                leaf_descriptor=lambda i: desc(i, version=2, nonce=2),
            )
        )
        return md

    def test_collect_full_range_latest(self):
        md = self._store_versions()
        blocks = collect_blocks(md.get, NodeKey("b", 2, 0, 4), 0, 4)
        assert [b.index for b in blocks] == [0, 1, 2, 3]
        assert [b.version for b in blocks] == [1, 2, 2, 1]

    def test_collect_old_version_untouched(self):
        md = self._store_versions()
        blocks = collect_blocks(md.get, NodeKey("b", 1, 0, 4), 0, 4)
        assert [b.version for b in blocks] == [1, 1, 1, 1]

    def test_collect_subrange_prunes_fetches(self):
        md = self._store_versions()
        before = md.fetches
        blocks = collect_blocks(md.get, NodeKey("b", 2, 0, 4), 3, 4)
        assert [b.index for b in blocks] == [3]
        # root + right inner + one leaf = 3 fetches, not the whole tree
        assert md.fetches - before == 3

    def test_empty_range(self):
        md = self._store_versions()
        assert collect_blocks(md.get, NodeKey("b", 2, 0, 4), 2, 2) == []

    def test_plan_rejects_out_of_root(self):
        with pytest.raises(InvalidRange):
            DescentPlan(NodeKey("b", 1, 0, 4), 0, 5)

    def test_plan_rejects_bad_range(self):
        with pytest.raises(InvalidRange):
            DescentPlan(NodeKey("b", 1, 0, 4), 3, 2)

    def test_plan_feed_unrequested_rejected(self):
        md = self._store_versions()
        plan = DescentPlan(NodeKey("b", 1, 0, 4), 0, 4)
        key = NodeKey("b", 1, 0, 1)
        with pytest.raises(BlobError):
            plan.feed(key, md.get(key))

    def test_plan_feed_mismatched_node_rejected(self):
        md = self._store_versions()
        plan = DescentPlan(NodeKey("b", 1, 0, 4), 0, 4)
        (root_key,) = plan.take_frontier()
        with pytest.raises(BlobError):
            plan.feed(root_key, md.get(NodeKey("b", 2, 0, 4)))

    def test_plan_blocks_before_done_rejected(self):
        plan = DescentPlan(NodeKey("b", 1, 0, 4), 0, 4)
        with pytest.raises(BlobError):
            plan.blocks()

    def test_frontier_is_levelwise(self):
        """A full-range descent fetches one tree level per frontier."""
        md = self._store_versions()
        plan = DescentPlan(NodeKey("b", 1, 0, 4), 0, 4)
        level_sizes = []
        while not plan.done:
            frontier = plan.take_frontier()
            level_sizes.append(len(frontier))
            for key in frontier:
                plan.feed(key, md.get(key))
        assert level_sizes == [1, 2, 4]


class TestTombstonePatch:
    """Filler patches for aborted versions (DESIGN.md §7)."""

    BS = 16

    def build(self, version, start, end, size_after, prior_size, history):
        from repro.blob import build_tombstone_patch

        return build_tombstone_patch(
            blob_id="b",
            version=version,
            write_start=start,
            write_end=end,
            size_after=size_after,
            prior_size=prior_size,
            block_size=self.BS,
            history=history,
        )

    def test_created_range_becomes_zero_leaves(self):
        # v1 died appending 4 blocks into an empty BLOB.
        nodes = self.build(1, 0, 4, 4 * self.BS, 0, ())
        leaves = [n for n in nodes if isinstance(n, LeafNode)]
        assert len(leaves) == 4
        for leaf in leaves:
            assert leaf.block.is_zero and leaf.block.size == self.BS
            assert leaf.block.block_id is None and leaf.block.providers == ()

    def test_overwritten_range_becomes_redirects(self):
        from repro.blob import RedirectLeaf

        # v2 died rewriting blocks [1, 3) of a 4-block BLOB written by v1.
        nodes = self.build(2, 1, 3, 4 * self.BS, 4 * self.BS, ((1, 0, 4),))
        redirects = {n.key.offset: n for n in nodes if isinstance(n, RedirectLeaf)}
        assert sorted(redirects) == [1, 2]
        assert all(r.target_version == 1 for r in redirects.values())
        assert redirects[1].target_key == NodeKey("b", 1, 1, 1)
        # Ranges outside the dead write are woven references, as usual.
        root = next(n for n in nodes if n.key.span == 4)
        assert isinstance(root, InnerNode)

    def test_extended_partial_block_zero_fills_whole_block(self):
        # v1 left a 4-byte trailing partial in block 1 (size 20); the
        # dead v2 extended that block.  Block-granularity sharing cannot
        # express "old 4 bytes + zeros", so the tombstone defines the
        # whole block as zeros.
        nodes = self.build(2, 1, 2, 2 * self.BS, 20, ((1, 0, 2),))
        leaf = next(n for n in nodes if n.key == NodeKey("b", 2, 1, 1))
        assert isinstance(leaf, LeafNode) and leaf.block.is_zero
        assert leaf.block.size == self.BS

    def test_exact_partial_rewrite_redirects(self):
        from repro.blob import RedirectLeaf

        # Dead v2 rewrote the trailing partial exactly (sizes match):
        # the prior leaf serves the tombstone's content byte-for-byte.
        nodes = self.build(2, 1, 2, 20, 20, ((1, 0, 2),))
        leaf = next(n for n in nodes if n.key == NodeKey("b", 2, 1, 1))
        assert isinstance(leaf, RedirectLeaf) and leaf.target_version == 1

    def test_filler_occupies_exactly_the_real_patch_keys(self):
        """Later writers reference the dead version's canonical nodes;
        the filler must shadow the real patch key-for-key."""
        history = ((1, 0, 4),)
        real = build_patch(
            blob_id="b",
            version=2,
            write_start=2,
            write_end=6,
            size_after_blocks=6,
            history=history,
            leaf_descriptor=lambda i: desc(i, version=2, nonce=9),
        )
        filler = self.build(2, 2, 6, 6 * self.BS, 4 * self.BS, history)
        assert {n.key for n in filler} == {n.key for n in real}

    def test_redirect_validation(self):
        from repro.blob import RedirectLeaf

        with pytest.raises(ValueError):
            RedirectLeaf(key=NodeKey("b", 2, 0, 2), target_version=1)  # span != 1
        with pytest.raises(ValueError):
            RedirectLeaf(key=NodeKey("b", 2, 0, 1), target_version=2)  # not older
        with pytest.raises(ValueError):
            RedirectLeaf(key=NodeKey("b", 2, 0, 1), target_version=0)

    def test_descent_follows_redirect_chains(self):
        """A redirect into an older tombstone's redirect terminates at
        the oldest real leaf."""
        from repro.blob import RedirectLeaf, ZeroBlockDescriptor

        store = {}

        def put(node):
            store[node.key] = node

        put(LeafNode(key=NodeKey("b", 1, 0, 1), block=desc(0)))
        put(RedirectLeaf(key=NodeKey("b", 2, 0, 1), target_version=1))
        put(RedirectLeaf(key=NodeKey("b", 3, 0, 1), target_version=2))
        blocks = collect_blocks(lambda k: store[k], NodeKey("b", 3, 0, 1), 0, 1)
        assert blocks == [desc(0)]
        # Zero leaves terminate a chain too.
        put(
            LeafNode(
                key=NodeKey("b", 4, 1, 1),
                block=ZeroBlockDescriptor(blob_id="b", version=4, index=1, size=8),
            )
        )
        put(RedirectLeaf(key=NodeKey("b", 5, 1, 1), target_version=4))
        [zero] = collect_blocks(lambda k: store[k], NodeKey("b", 5, 1, 1), 1, 2)
        assert zero.is_zero and zero.size == 8

    def test_zero_descriptor_validation(self):
        from repro.blob import ZeroBlockDescriptor

        with pytest.raises(ValueError):
            ZeroBlockDescriptor(blob_id="b", version=0, index=0, size=8)
        with pytest.raises(ValueError):
            ZeroBlockDescriptor(blob_id="b", version=1, index=-1, size=8)
        with pytest.raises(ValueError):
            ZeroBlockDescriptor(blob_id="b", version=1, index=0, size=0)
        with pytest.raises(ValueError):
            ZeroBlockDescriptor(blob_id="b", version=1, index=0, size=8, providers=("p",))
